"""Shared lane planner: pack independent runs into batched launches.

Two callers need the same packing decisions:

* :class:`repro.experiments.sweep.SweepRunner` plans a *known* grid of
  points ahead of time;
* :class:`repro.service.scheduler.BatchScheduler` packs whatever requests
  happen to be queued when a service tick fires (online micro-batching).

Both reduce to one problem — given a list of runs, decide which share a
:class:`~repro.engine.batched.BatchedEngine` launch — so the grouping
rules live here once:

* runs sharing a **batch key** differ only in their seed and can stack
  into same-shape lanes (chunked at ``max_lanes``; a seed repeated within
  a key demotes only the repeats to solo runs, because the batched engine
  requires distinct ``(config, seed)`` lanes);
* with ``pad_lanes``, runs sharing a **pad key** (same movement-model
  parameters, step budget, engine and backend — what
  :class:`~repro.engine.batched.BatchedEngine` requires lanes to agree
  on) additionally fuse into *padded* heterogeneous batches, packed
  largest-population-first until the padded-slot fraction would exceed
  the waste ceiling (explicit, or derived from the cost model's
  dispatch-overhead estimate via :func:`derived_pad_waste`).

The planner is deliberately index-based: callers describe each run as a
:class:`LaneRequest` and get back :class:`PlannedBatch` groups of request
indices, so sweep points and service jobs map through the same code
without the planner knowing either type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .cuda.costmodel import dispatch_overhead_fraction
from .errors import ExperimentError

__all__ = [
    "BATCHABLE_ENGINES",
    "MIN_PAD_WASTE",
    "MAX_PAD_WASTE_CEILING",
    "derived_pad_waste",
    "LaneRequest",
    "PlannedBatch",
    "plan_lanes",
    "validate_plan_parameters",
]

#: Engines whose runs can share a batched launch. The sequential engine is
#: scalar by construction and the tiled engine carries per-run tile state.
BATCHABLE_ENGINES = ("vectorized",)

#: Clamp bounds on the derived padded-slot ceiling: never pack so tightly
#: that padding is effectively forbidden (floor) and never accept a batch
#: that is mostly dead slots (ceiling).
MIN_PAD_WASTE = 0.05
MAX_PAD_WASTE_CEILING = 0.5


def derived_pad_waste(config, max_lanes: int) -> float:
    """Default ``max_pad_waste`` from the cost model's dispatch overhead.

    Fusing ``L`` lanes into one padded batch removes ``(L - 1) / L`` of
    the per-lane kernel-dispatch overhead, but drags the padded dead slots
    through every whole-array stage. With ``f`` the modelled
    dispatch-overhead fraction of one step at this scenario's scale
    (:func:`repro.cuda.costmodel.dispatch_overhead_fraction`), dead work
    breaks even with the saved dispatch at a padded-slot fraction of
    ``(L - 1) / L * f / (1 - f)`` — beyond that the padding costs more
    than the amortisation saves. Tiny dispatch-dominated scenarios
    therefore get a loose bound (clamped at 0.5) and paper-scale
    compute-dominated ones a tight bound (clamped at 0.05).
    """
    f = dispatch_overhead_fraction(
        config.total_agents, config.model_name, (config.height, config.width)
    )
    f = min(f, 0.99)
    lanes = max(2, int(max_lanes))
    bound = (lanes - 1) / lanes * f / (1.0 - f)
    return min(MAX_PAD_WASTE_CEILING, max(MIN_PAD_WASTE, bound))


def validate_plan_parameters(
    max_lanes: int, max_pad_waste: Optional[float]
) -> None:
    """Shared argument validation for planner consumers."""
    if max_lanes < 1:
        raise ExperimentError(f"max_lanes must be >= 1, got {max_lanes}")
    if max_pad_waste is not None and not (0.0 <= max_pad_waste < 1.0):
        raise ExperimentError(
            f"max_pad_waste must be in [0, 1), got {max_pad_waste}"
        )


@dataclass(frozen=True)
class LaneRequest:
    """One run to be planned, described opaquely.

    ``index`` is the caller's handle (position in its own request list);
    the planner only ever returns indices. ``batch_key`` and ``pad_key``
    are opaque hashables with the semantics above. ``agents`` is the real
    agent count (padding accounting) and ``config`` the run's resolved
    :class:`~repro.config.SimulationConfig` — only consulted to derive a
    waste bound, so callers planning without ``pad_lanes`` may omit both.
    ``priority`` (higher first) makes padded packing anchor urgent lanes
    before fill lanes: a high-priority run is never the one squeezed out
    of a batch by the waste bound. ``scenario`` is an optional named-
    scenario label carried along for observability (progress lines, plan
    dumps); the planner itself keys only on ``batch_key``/``pad_key``,
    which already embed it.
    """

    index: int
    seed: int
    engine: str
    batch_key: Tuple
    pad_key: Tuple
    agents: int = 0
    config: object = None
    priority: int = 0
    scenario: Optional[str] = None


@dataclass(frozen=True)
class PlannedBatch:
    """One planned launch: lane order as caller request indices.

    ``batched`` — more than one lane, run through the batched engine.
    ``mixed`` — lanes span different batch keys (heterogeneous configs),
    so the executor must pass a per-lane config list for padding.
    """

    indices: Tuple[int, ...]
    batched: bool
    mixed: bool = False

    @property
    def n_lanes(self) -> int:
        return len(self.indices)


def plan_lanes(
    requests: Sequence[LaneRequest],
    max_lanes: int,
    pad_lanes: bool = False,
    max_pad_waste: Optional[float] = None,
    batchable_engines: Tuple[str, ...] = BATCHABLE_ENGINES,
) -> List[PlannedBatch]:
    """Group requests into batched / padded / solo launches.

    Returns one :class:`PlannedBatch` per launch; every request index
    appears in exactly one batch. Batch order is deterministic: batch-key
    groups in first-occurrence order (chunks, then demoted duplicates),
    followed by padded pools in first-occurrence order.
    """
    validate_plan_parameters(max_lanes, max_pad_waste)

    groups: Dict[Tuple, List[LaneRequest]] = {}
    order: List[Tuple] = []
    for req in requests:
        if req.batch_key not in groups:
            groups[req.batch_key] = []
            order.append(req.batch_key)
        groups[req.batch_key].append(req)

    batches: List[PlannedBatch] = []
    pools: Dict[Tuple, List[LaneRequest]] = {}
    pool_order: List[Tuple] = []

    def solo(req: LaneRequest) -> PlannedBatch:
        return PlannedBatch(indices=(req.index,), batched=False)

    for key in order:
        members = groups[key]
        eligible = members[0].engine in batchable_engines and max_lanes > 1
        if not eligible:
            batches.extend(solo(m) for m in members)
            continue
        # First occurrence of each seed is batchable; repeats are not.
        seen: set = set()
        firsts: List[LaneRequest] = []
        dups: List[LaneRequest] = []
        for member in members:
            if member.seed in seen:
                dups.append(member)
            else:
                seen.add(member.seed)
                firsts.append(member)
        if pad_lanes:
            pad_key = members[0].pad_key
            if pad_key not in pools:
                pools[pad_key] = []
                pool_order.append(pad_key)
            pools[pad_key].extend(firsts)
        elif len(firsts) >= 2:
            for start in range(0, len(firsts), max_lanes):
                chunk = firsts[start : start + max_lanes]
                batches.append(
                    PlannedBatch(
                        indices=tuple(r.index for r in chunk),
                        batched=len(chunk) > 1,
                    )
                )
        else:
            dups = firsts + dups
        batches.extend(solo(m) for m in dups)

    for pad_key in pool_order:
        batches.extend(
            _pack_padded(pools[pad_key], max_lanes, max_pad_waste)
        )
    return batches


def _pack_padded(
    members: List[LaneRequest],
    max_lanes: int,
    max_pad_waste: Optional[float],
) -> List[PlannedBatch]:
    """Pack one pad-key pool into padded batches under the waste bound.

    Lanes sort priority-first, then largest-population-first (stable by
    request order), so high-priority lanes anchor the earliest chunks
    and each greedy chunk pads against its own first lane; the chunk
    closes when it is full or admitting the next lane would push the
    padded agent-slot fraction past the waste ceiling. An explicit
    ``max_pad_waste`` wins; otherwise the ceiling derives from the cost
    model's dispatch-overhead estimate at the pool's largest scenario
    (:func:`derived_pad_waste`).
    """
    sized = sorted(members, key=lambda r: (-r.priority, -r.agents, r.index))

    waste_bound = max_pad_waste
    if waste_bound is None:
        largest = max(sized, key=lambda r: r.agents)
        if largest.config is None:
            raise ExperimentError(
                "deriving a pad-waste bound needs the largest lane's config; "
                "pass max_pad_waste explicitly or set LaneRequest.config"
            )
        waste_bound = derived_pad_waste(largest.config, max_lanes)

    batches: List[PlannedBatch] = []

    def emit(chunk: List[LaneRequest]) -> None:
        if not chunk:
            return
        homogeneous = all(r.batch_key == chunk[0].batch_key for r in chunk)
        batches.append(
            PlannedBatch(
                indices=tuple(r.index for r in chunk),
                batched=len(chunk) > 1,
                mixed=not homogeneous,
            )
        )

    chunk: List[LaneRequest] = []
    filled = 0
    slot = 0  # pad target: the chunk's largest lane (priority ordering
    # means that is not necessarily the chunk's *first* lane)
    for req in sized:
        if chunk:
            new_slot = max(slot, req.agents)
            waste = 1.0 - (filled + req.agents) / ((len(chunk) + 1) * new_slot)
            if len(chunk) >= max_lanes or waste > waste_bound:
                emit(chunk)
                chunk = []
                filled = 0
                slot = 0
        chunk.append(req)
        filled += req.agents
        slot = max(slot, req.agents)
    emit(chunk)
    return batches
