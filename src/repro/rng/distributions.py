"""Distribution transforms built on raw uniform words.

These helpers are deliberately small and allocation-light; the simulation's
hot paths call them every step. All of them are pure functions of their
inputs so they behave identically in the scalar and vectorized engines.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "box_muller",
    "clip_lem_draw",
    "categorical_from_cumsum",
    "categorical",
]


def box_muller(u1: np.ndarray, u2: np.ndarray) -> np.ndarray:
    """Standard normal via the Box-Muller transform.

    Used for statistics and workload generation. The simulation's LEM
    selection uses :meth:`repro.rng.philox.PhiloxKeyedRNG.normal12` instead,
    because Box-Muller's ``log``/``cos`` are not guaranteed bit-identical
    between scalar and SIMD code paths.
    """
    u1 = np.asarray(u1, dtype=np.float64)
    u2 = np.asarray(u2, dtype=np.float64)
    return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)


def clip_lem_draw(z, mu: float, sigma: float, c_max, xp=np) -> np.ndarray:
    """The paper's LEM draw post-processing.

    ``x = mu + sigma * z`` with "negative numbers converted to zeroes and
    the numbers more than the highest C_i rounded off to the highest C_i".
    ``c_max`` may be a scalar or per-lane array. ``xp`` is the array
    namespace (host NumPy by default).
    """
    # x is freshly built by the operator arithmetic above, so the clip can
    # land in place — one less allocating dispatch on the LEM hot path.
    x = mu + sigma * xp.asarray(z, dtype=np.float64)
    return xp.clip(x, 0.0, c_max, out=x)


def categorical_from_cumsum(cumsum: np.ndarray, u: np.ndarray, xp=np) -> np.ndarray:
    """Sample indices from per-lane cumulative weights.

    Parameters
    ----------
    cumsum:
        ``(n, k)`` cumulative weights along axis 1 (strictly the output of
        a left-to-right ``cumsum`` so the FP evaluation order matches the
        scalar engine's accumulation loop).
    u:
        ``(n,)`` uniforms in (0, 1).

    Returns
    -------
    ``(n,)`` int64 chosen column indices. Lanes whose total weight is zero
    return -1 (no candidate).

    The chosen index is the first ``j`` with ``cumsum[:, j] >= u * total``
    *and* ``cumsum[:, j] > 0``, which for positive weights reproduces the
    usual inverse-CDF rule. The comparison is ``>=`` (not ``>``) so that a
    hit is guaranteed even when ``u * total`` rounds up to ``total``
    exactly. The ``> 0`` guard covers subnormal totals where ``u * total``
    underflows to exactly 0.0 — without it a leading zero-weight slot
    (cumsum 0.0) would win; with it the first positive-cumsum slot does,
    which is always a positive-weight slot because cumsum is
    non-decreasing.
    """
    cumsum = xp.asarray(cumsum, dtype=np.float64)
    if cumsum.ndim != 2:
        raise ValueError(f"cumsum must be 2-D, got shape {cumsum.shape}")
    total = cumsum[:, -1]
    thresholds = xp.asarray(u, dtype=np.float64) * total
    hit = (cumsum >= thresholds[:, None]) & (cumsum > 0.0)
    idx = hit.argmax(axis=1).astype(np.int64)
    idx[total <= 0.0] = -1
    return idx


def categorical(weights: np.ndarray, u: np.ndarray, xp=np) -> np.ndarray:
    """Sample indices from per-lane non-negative weights (rows of ``weights``)."""
    w = xp.asarray(weights, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError(f"weights must be 2-D, got shape {w.shape}")
    return categorical_from_cumsum(xp.cumsum(w, axis=1), u, xp=xp)
