"""Counter-based random number generation (the CURAND substitute).

Public surface:

* :class:`PhiloxKeyedRNG` — keyed, order-independent random streams,
* :class:`Stream` — the registry of stream purposes,
* :func:`philox4x32` — the raw Philox4x32 bijection,
* distribution transforms in :mod:`repro.rng.distributions`.
"""

from .batched import BatchedPhiloxRNG, FlatLaneRNG, RaggedLaneRNG
from .distributions import (
    box_muller,
    categorical,
    categorical_from_cumsum,
    clip_lem_draw,
)
from .philox import PHILOX_ROUNDS, PhiloxKeyedRNG, philox4x32, philox4x32_scalar
from .streams import Stream

__all__ = [
    "PhiloxKeyedRNG",
    "BatchedPhiloxRNG",
    "FlatLaneRNG",
    "RaggedLaneRNG",
    "Stream",
    "philox4x32",
    "philox4x32_scalar",
    "PHILOX_ROUNDS",
    "box_muller",
    "categorical",
    "categorical_from_cumsum",
    "clip_lem_draw",
]
