"""Batched keyed randomness: one Philox key per replication lane.

:class:`BatchedPhiloxRNG` drives ``B`` independent replications through a
single vectorized Philox evaluation. Replication ``b`` draws with exactly
the key :class:`~repro.rng.philox.PhiloxKeyedRNG` would derive from
``seeds[b]``, and the Philox bijection is element-wise over lanes, so every
word a batched draw produces is bit-identical to the corresponding solo
draw — the invariant the batched engine's equivalence tests pin down.

Two addressing modes cover the engine's needs:

* *replication-major grids* — ``words(stream, step, lane)`` with ``lane``
  of shape ``(B, m)`` (or ``(m,)``, broadcast to every replication): one
  draw per (replication, lane) pair, e.g. per-agent tour-construction
  draws;
* *scattered draws* — ``words_at(stream, step, rep, lane)`` with parallel
  ``rep``/``lane`` index vectors: draws for irregular sets such as the
  contested cells of the movement stage, which differ per replication.

:meth:`BatchedPhiloxRNG.flat` exposes a :class:`PhiloxKeyedRNG`-compatible
view over flattened replication-major lanes so the movement models' vector
``select`` kernels run unmodified on batched scan matrices.
:meth:`BatchedPhiloxRNG.ragged` generalises that view to *heterogeneous*
replications whose member sets differ in size (padded batching): the
replication of each flattened element is pinned by an explicit index
vector instead of a fixed ``i // m`` stride.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..backend import resolve_backend
from .philox import (
    PHILOX_ROUNDS,
    _philox_rounds,
    _take_u32,
    _u32_to_unit_open,
    irwin_hall_normal12,
)

__all__ = ["BatchedPhiloxRNG", "FlatLaneRNG", "RaggedLaneRNG"]


class BatchedPhiloxRNG:
    """Per-replication keyed random streams sharing one Philox evaluation.

    ``backend`` selects the array namespace (host NumPy by default); the
    per-lane words are bit-identical on every backend because Philox is
    pure integer arithmetic.
    """

    def __init__(self, seeds: Sequence[int], backend=None) -> None:
        seeds = [int(s) for s in seeds]
        if not seeds:
            raise ValueError("need at least one replication seed")
        for s in seeds:
            if not (0 <= s < 2**64):
                raise ValueError(f"seed must fit in 64 bits, got {s}")
        self.seeds = tuple(seeds)
        self.n_reps = len(seeds)
        self.backend = resolve_backend(backend)
        self.xp = self.backend.xp
        self._key_lo = self.xp.asarray(
            np.array([s & 0xFFFFFFFF for s in seeds], dtype=np.uint32)
        )
        self._key_hi_base = self.xp.asarray(
            np.array([(s >> 32) & 0xFFFFFFFF for s in seeds], dtype=np.uint32)
        )
        # Reusable counter/output word buffers (see philox._take_u32);
        # shared by the flat/ragged views, whose draws are sequential.
        self._scratch: dict = {}

    # ------------------------------------------------------------------
    # Replication-major grids: lane shape (B, m) -> words (4, B, m)
    # ------------------------------------------------------------------
    def words(
        self, stream: int, step: int, lane, slot: int = 0, scratch: bool = False
    ) -> np.ndarray:
        """Raw output words, shape ``(4, B, m)``.

        ``lane`` is ``(B, m)`` (one lane vector per replication) or ``(m,)``
        (the same lane vector for every replication — the common case, since
        agent indexing is seed-independent). ``scratch=True`` lands the
        counter and output words in per-instance reusable buffers (the
        result is overwritten by the next scratch draw) — only for callers
        that consume the words immediately; the values are identical.
        """
        xp = self.xp
        lanes = xp.asarray(lane, dtype=np.uint64)
        if lanes.ndim == 0:
            lanes = lanes.reshape(1)
        if lanes.ndim == 1:
            lanes = xp.broadcast_to(lanes, (self.n_reps, lanes.shape[0]))
        if lanes.ndim != 2 or lanes.shape[0] != self.n_reps:
            raise ValueError(
                f"lane must have shape (m,) or ({self.n_reps}, m), got {lanes.shape}"
            )
        m = lanes.shape[1]
        rep = xp.repeat(xp.arange(self.n_reps, dtype=np.intp), m)
        out = self._words_flat(stream, step, rep, lanes.ravel(), slot, scratch)
        return out.reshape(4, self.n_reps, m)

    def uniform(self, stream: int, step: int, lane, slot: int = 0) -> np.ndarray:
        """Uniforms in (0, 1), shape ``(B, m)`` (word 0)."""
        return _u32_to_unit_open(self.words(stream, step, lane, slot, scratch=True)[0])

    def uniform4(self, stream: int, step: int, lane, slot: int = 0) -> np.ndarray:
        """Four uniforms in (0, 1) per draw; shape ``(4, B, m)``."""
        return _u32_to_unit_open(self.words(stream, step, lane, slot, scratch=True))

    def normal12(self, stream: int, step: int, lane, slot_base: int = 0) -> np.ndarray:
        """Irwin-Hall standard normal, shape ``(B, m)``.

        Routes through the same accumulation as
        :meth:`~repro.rng.philox.PhiloxKeyedRNG.normal12`, so each element
        is bit-identical to the solo draw under the same seed.
        """
        return irwin_hall_normal12(self.uniform4, stream, step, lane, slot_base)

    # ------------------------------------------------------------------
    # Scattered draws: parallel (rep, lane) index vectors
    # ------------------------------------------------------------------
    def words_at(
        self, stream: int, step: int, rep, lane, slot: int = 0, scratch: bool = False
    ) -> np.ndarray:
        """Raw words for scattered ``(rep, lane)`` pairs; shape ``(4, n)``."""
        rep = self.xp.asarray(rep, dtype=np.intp).ravel()
        lanes = self.xp.asarray(lane, dtype=np.uint64).ravel()
        if rep.shape != lanes.shape:
            raise ValueError(
                f"rep and lane must align, got {rep.shape} vs {lanes.shape}"
            )
        return self._words_flat(stream, step, rep, lanes, slot, scratch)

    def uniform_at(self, stream: int, step: int, rep, lane, slot: int = 0) -> np.ndarray:
        """Scattered uniforms in (0, 1); shape ``(n,)``."""
        return _u32_to_unit_open(
            self.words_at(stream, step, rep, lane, slot, scratch=True)[0]
        )

    # ------------------------------------------------------------------
    # Adapters / internals
    # ------------------------------------------------------------------
    def flat(self, lanes_per_rep: int) -> "FlatLaneRNG":
        """A :class:`PhiloxKeyedRNG`-shaped view over flattened lanes."""
        return FlatLaneRNG(self, lanes_per_rep)

    def ragged(self, rep) -> "RaggedLaneRNG":
        """A :class:`PhiloxKeyedRNG`-shaped view over ragged member sets.

        ``rep[i]`` is the replication index keying flattened element ``i``;
        unlike :meth:`flat`, the per-replication member counts may differ.
        """
        return RaggedLaneRNG(self, rep)

    def _words_flat(
        self,
        stream: int,
        step: int,
        rep: np.ndarray,
        lanes: np.ndarray,
        slot: int,
        scratch: bool = False,
    ) -> np.ndarray:
        """Philox words for flattened per-replication lanes; shape ``(4, n)``.

        Counter layout matches :meth:`PhiloxKeyedRNG.words` exactly; the key
        words are gathered per element from the replication seeds. With
        ``scratch=True`` the counter and output reuse per-instance buffers
        (see :func:`~repro.rng.philox._take_u32`); the returned array is
        overwritten by the next scratch draw.
        """
        xp = self.xp
        n = lanes.shape[0]
        step = int(step)
        counter = (
            _take_u32(xp, self._scratch, "ctr", n)
            if scratch
            else xp.empty((4, n), dtype=np.uint32)
        )
        counter[0] = np.uint32(step & 0xFFFFFFFF)
        counter[1] = np.uint32((step >> 32) & 0xFFFFFFFF)
        counter[2] = (lanes & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        counter[3] = np.uint32(int(slot) & 0xFFFFFFFF)
        stream_word = np.uint32(int(stream) & 0xFFFFFFFF)
        # Gather the per-element key words through operator indexing — no
        # namespace dispatch — and feed the round loop directly; one call
        # costs two counted launches (``empty``, ``stack``).
        k0 = self._key_lo[rep]
        k1 = self._key_hi_base[rep] ^ stream_word
        out = _philox_rounds(
            counter[0], counter[1], counter[2], counter[3],
            k0, k1, PHILOX_ROUNDS,
        )
        if scratch:
            return xp.stack(out, out=_take_u32(xp, self._scratch, "out", n))
        return xp.stack(out)


class FlatLaneRNG:
    """Duck-typed :class:`PhiloxKeyedRNG` over flattened replication lanes.

    The movement models' ``select`` kernels take a ``(n, 8)`` scan matrix
    plus a 1-D lane vector and draw through the ``uniform``/``uniform4``/
    ``normal12``/``words`` surface. This view accepts lane vectors of length
    ``B * lanes_per_rep`` in replication-major order and keys element ``i``
    with replication ``i // lanes_per_rep``'s seed, so a batched ``select``
    call is element-for-element identical to ``B`` solo calls.
    """

    def __init__(self, batched: BatchedPhiloxRNG, lanes_per_rep: int) -> None:
        if lanes_per_rep < 1:
            raise ValueError(f"lanes_per_rep must be >= 1, got {lanes_per_rep}")
        self._batched = batched
        self._m = int(lanes_per_rep)
        # The replication-of-element map is static for a fixed lane count —
        # build it once instead of re-dispatching repeat/arange per draw.
        xp = batched.xp
        self._rep = xp.repeat(
            xp.arange(batched.n_reps, dtype=np.intp), self._m
        )

    def _rep_of(self, lanes: np.ndarray) -> np.ndarray:
        n = lanes.shape[0]
        expected = self._batched.n_reps * self._m
        if n != expected:
            raise ValueError(
                f"expected {expected} flattened lanes "
                f"({self._batched.n_reps} reps x {self._m}), got {n}"
            )
        return self._rep

    def words(
        self, stream: int, step: int, lane, slot: int = 0, scratch: bool = False
    ) -> np.ndarray:
        xp = self._batched.xp
        lanes = xp.asarray(lane, dtype=np.uint64).reshape(-1)
        # _words_flat directly: the rep map is pre-validated against the
        # lane count, so the words_at re-asarray round trip is dead weight.
        return self._batched._words_flat(
            stream, step, self._rep_of(lanes), lanes, slot, scratch
        )

    def uniform(self, stream: int, step: int, lane, slot: int = 0) -> np.ndarray:
        return _u32_to_unit_open(self.words(stream, step, lane, slot, scratch=True)[0])

    def uniform4(self, stream: int, step: int, lane, slot: int = 0) -> np.ndarray:
        return _u32_to_unit_open(self.words(stream, step, lane, slot, scratch=True))

    def normal12(self, stream: int, step: int, lane, slot_base: int = 0) -> np.ndarray:
        return irwin_hall_normal12(self.uniform4, stream, step, lane, slot_base)


class RaggedLaneRNG:
    """Duck-typed :class:`PhiloxKeyedRNG` over ragged replication members.

    Heterogeneous (padded) batches flatten per-group member sets whose size
    differs per replication, so the fixed ``i // lanes_per_rep`` keying of
    :class:`FlatLaneRNG` no longer applies. This view carries the explicit
    replication index of every flattened element: element ``i`` of a lane
    vector draws with replication ``rep[i]``'s seed, making a ragged
    ``select`` call element-for-element identical to the per-replication
    solo calls.
    """

    def __init__(self, batched: BatchedPhiloxRNG, rep) -> None:
        rep = batched.xp.asarray(rep, dtype=np.intp).ravel()
        if rep.size and (int(rep.min()) < 0 or int(rep.max()) >= batched.n_reps):
            raise ValueError(
                f"rep indices must lie in [0, {batched.n_reps}), "
                f"got range [{int(rep.min())}, {int(rep.max())}]"
            )
        self._batched = batched
        self._rep = rep

    def _check(self, lanes: np.ndarray) -> np.ndarray:
        if lanes.shape != self._rep.shape:
            raise ValueError(
                f"expected {self._rep.shape[0]} flattened lanes "
                f"(one per ragged member), got {lanes.shape[0]}"
            )
        return self._rep

    def words(
        self, stream: int, step: int, lane, slot: int = 0, scratch: bool = False
    ) -> np.ndarray:
        xp = self._batched.xp
        lanes = xp.asarray(lane, dtype=np.uint64).reshape(-1)
        # _words_flat directly: _check pins the rep/lane alignment, so the
        # words_at re-asarray round trip is dead weight on the hot path.
        return self._batched._words_flat(
            stream, step, self._check(lanes), lanes, slot, scratch
        )

    def uniform(self, stream: int, step: int, lane, slot: int = 0) -> np.ndarray:
        return _u32_to_unit_open(self.words(stream, step, lane, slot, scratch=True)[0])

    def uniform4(self, stream: int, step: int, lane, slot: int = 0) -> np.ndarray:
        return _u32_to_unit_open(self.words(stream, step, lane, slot, scratch=True))

    def normal12(self, stream: int, step: int, lane, slot_base: int = 0) -> np.ndarray:
        return irwin_hall_normal12(self.uniform4, stream, step, lane, slot_base)
