"""Named random streams.

Each logically independent source of randomness in the system gets its own
stream id, mixed into the Philox key. This mirrors CURAND's per-purpose
generator states in the paper's kernels while guaranteeing that, e.g., the
movement-winner draws never alias the tour-construction draws.
"""

from __future__ import annotations

import enum

__all__ = ["Stream"]


class Stream(enum.IntEnum):
    """Registry of random-stream purposes.

    Values are stable identifiers — changing them changes every simulation
    trajectory, so they are append-only.
    """

    #: Initial placement shuffle (data preparation stage).
    PLACEMENT = 1
    #: LEM tour construction: the clipped-normal selection draw (eq. 1).
    LEM_SELECT = 2
    #: ACO tour construction: the random-proportional-rule draw (eq. 2).
    ACO_SELECT = 3
    #: Movement stage: uniform winner choice in the scatter-to-gather.
    MOVE_WINNER = 4
    #: Direction-unbiasing tie-break bit for equal-score cells.
    TIEBREAK = 5
    #: Random baseline policy cell choice.
    RANDOM_POLICY = 6
    #: Ant System TSP baseline: city selection during tour construction.
    ANT_SYSTEM = 7
    #: General-purpose draws in examples and experiments.
    EXPERIMENT = 8
    #: Velocity-class assignment (heterogeneous-speed extension).
    SPEED_CLASS = 9
