"""Philox4x32-10 counter-based random number generator.

This is the reproduction's stand-in for CURAND: a stateless, keyed generator
whose output depends only on ``(key, counter)``. Each random decision in the
simulation derives its counter from ``(step, lane, slot)`` and its key from
``(seed, stream)``, so the sequential, vectorized and tiled engines consume
*bit-identical* randomness regardless of iteration order — the property that
lets us strengthen the paper's CPU-vs-GPU consistency check into exact
trajectory equality.

The implementation follows Salmon et al., "Parallel random numbers: as easy
as 1, 2, 3" (SC'11) and is validated against the Random123 known-answer
vectors in the test suite.
"""

from __future__ import annotations

import numpy as np

from ..backend import resolve_backend

__all__ = [
    "philox4x32",
    "philox4x32_scalar",
    "PHILOX_ROUNDS",
    "PhiloxKeyedRNG",
    "irwin_hall_normal12",
]

#: Standard number of rounds for philox4x32-10.
PHILOX_ROUNDS = 10

_M0 = np.uint64(0xD2511F53)
_M1 = np.uint64(0xCD9E8D57)
_W0 = np.uint32(0x9E3779B9)
_W1 = np.uint32(0xBB67AE85)
_U32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)

def _wrap():
    """Fresh errstate per use (numpy 2.x forbids re-entering an instance).

    numpy deliberately wraps unsigned arithmetic; we silence the overflow
    warnings locally rather than globally.
    """
    return np.errstate(over="ignore")


def _take_u32(xp, slots: dict, key: str, n: int) -> np.ndarray:
    """A reusable ``(4, n)`` uint32 buffer (capacity-grown, sliced down).

    The counter and output-word buffers of a hot-path draw are fully
    overwritten on every call and consumed before the next draw, so each
    RNG instance parks one buffer per role and hands back leading-slice
    views — after the high-water mark, a draw performs zero allocating
    namespace dispatches for them.
    """
    buf = slots.get(key)
    if buf is None or buf.shape[1] < n:
        buf = xp.empty((4, n), dtype=np.uint32)
        slots[key] = buf
    return buf if buf.shape[1] == n else buf[:, :n]


def _mulhilo(m: np.uint64, b: np.ndarray) -> tuple:
    """Return the high and low 32-bit halves of ``m * b`` (64-bit product)."""
    prod = m * b.astype(np.uint64)
    hi = (prod >> _SHIFT32).astype(np.uint32)
    lo = (prod & _U32).astype(np.uint32)
    return hi, lo


def _philox_rounds(c0, c1, c2, c3, k0, k1, rounds: int) -> tuple:
    """The Philox round loop on pre-extracted words.

    The key words may be arrays *or* ``np.uint32`` scalars — the round
    arithmetic broadcasts either way and the wrapped-add key schedule is
    bit-identical in both representations, which lets hot call sites skip
    the per-call ``broadcast_to`` materialisation entirely. Every operation
    here is an array *operator* (no namespace dispatch), so the round loop
    itself contributes zero counted launches under the profiling backend.
    """
    with _wrap():
        for _ in range(rounds):
            hi0, lo0 = _mulhilo(_M0, c0)
            hi1, lo1 = _mulhilo(_M1, c2)
            # One Philox round: note the crossed wiring of the four words.
            new0 = hi1 ^ c1 ^ k0
            new1 = lo1
            new2 = hi0 ^ c3 ^ k1
            new3 = lo0
            c0, c1, c2, c3 = new0, new1, new2, new3
            k0 = k0 + _W0
            k1 = k1 + _W1
    return c0, c1, c2, c3


def philox4x32(
    counter: np.ndarray, key: np.ndarray, rounds: int = PHILOX_ROUNDS, xp=np
) -> np.ndarray:
    """Apply the Philox4x32 bijection.

    Parameters
    ----------
    counter:
        ``uint32`` array of shape ``(4, n)`` — the four counter words for
        each of ``n`` independent lanes.
    key:
        ``uint32`` array of shape ``(2, n)`` or ``(2, 1)`` (broadcast) — the
        two key words.
    rounds:
        Number of rounds; 10 is the standard, cryptographically mixed value.
    xp:
        Array namespace to execute in (``numpy`` or a GPU namespace). The
        rounds are pure integer arithmetic, so the output words are
        bit-identical on every backend.

    Returns
    -------
    ``uint32`` array of shape ``(4, n)`` with the output words.
    """
    counter = xp.asarray(counter, dtype=np.uint32)
    key = xp.asarray(key, dtype=np.uint32)
    if counter.ndim != 2 or counter.shape[0] != 4:
        raise ValueError(f"counter must have shape (4, n), got {counter.shape}")
    if key.ndim != 2 or key.shape[0] != 2:
        raise ValueError(f"key must have shape (2, n), got {key.shape}")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    return xp.stack(
        _philox_rounds(
            counter[0], counter[1], counter[2], counter[3], key[0], key[1], rounds
        )
    )


def philox4x32_scalar(counter, key, rounds: int = PHILOX_ROUNDS) -> tuple:
    """Scalar convenience wrapper: 4-tuple and 2-tuple of ints in, 4-tuple out.

    Used by tests and by scalar call sites that want plain Python ints; it
    routes through the same vectorized kernel so results are identical by
    construction.
    """
    c = np.array([[w] for w in counter], dtype=np.uint32)
    k = np.array([[w] for w in key], dtype=np.uint32)
    out = philox4x32(c, k, rounds)
    return tuple(int(out[i, 0]) for i in range(4))


class PhiloxKeyedRNG:
    """Keyed random streams for the simulation.

    Every draw is addressed by ``(stream, step, lane, slot)``:

    * ``stream`` — which purpose the draw serves (see
      :class:`repro.rng.streams.Stream`); mixed into the key,
    * ``step`` — the simulation step (64-bit, split across two words),
    * ``lane`` — the data-parallel lane (agent index or cell id),
    * ``slot`` — sub-draw index when one lane needs several values.

    The master ``seed`` occupies the low key word; the high key word mixes
    the seed's top bits with the stream id.

    ``backend`` selects the array namespace the draws are produced on
    (default: the host NumPy backend). Philox is pure integer arithmetic,
    so the words — and every distribution derived from them — are
    bit-identical across backends.
    """

    def __init__(self, seed: int, backend=None) -> None:
        if not (0 <= seed < 2**64):
            raise ValueError(f"seed must fit in 64 bits, got {seed}")
        self.seed = int(seed)
        self.backend = resolve_backend(backend)
        self.xp = self.backend.xp
        self._key_lo = np.uint32(seed & 0xFFFFFFFF)
        self._key_hi_base = np.uint32((seed >> 32) & 0xFFFFFFFF)
        self._scratch: dict = {}

    # ------------------------------------------------------------------
    # Core word generator
    # ------------------------------------------------------------------
    def words(
        self, stream: int, step: int, lane, slot: int = 0, scratch: bool = False
    ) -> np.ndarray:
        """Return the four raw ``uint32`` output words, shape ``(4, n)``.

        ``lane`` may be a scalar or any integer array; it is flattened to
        one dimension of lanes.

        This is the hot path of every step: the key words stay ``np.uint32``
        scalars (broadcast inside the round loop) and the counter is filled
        in place, so one call costs three namespace dispatches (``asarray``,
        ``empty``, ``stack``) regardless of backend. With ``scratch=True``
        the counter and output land in per-instance reusable buffers —
        the returned array is *overwritten by the next scratch draw*, so
        only callers that consume the words immediately (the distribution
        helpers, the tie-break bit) may opt in; the values are identical
        either way.
        """
        xp = self.xp
        lanes = xp.asarray(lane, dtype=np.uint64).reshape(-1)
        n = lanes.shape[0]
        step = int(step)
        counter = (
            _take_u32(xp, self._scratch, "ctr", n)
            if scratch
            else xp.empty((4, n), dtype=np.uint32)
        )
        counter[0] = np.uint32(step & 0xFFFFFFFF)
        counter[1] = np.uint32((step >> 32) & 0xFFFFFFFF)
        counter[2] = (lanes & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        counter[3] = np.uint32(int(slot) & 0xFFFFFFFF)
        with _wrap():
            key_hi = self._key_hi_base ^ np.uint32(int(stream) & 0xFFFFFFFF)
        out = _philox_rounds(
            counter[0], counter[1], counter[2], counter[3],
            self._key_lo, key_hi, PHILOX_ROUNDS,
        )
        if scratch:
            return xp.stack(out, out=_take_u32(xp, self._scratch, "out", n))
        return xp.stack(out)

    # ------------------------------------------------------------------
    # Distribution helpers (all order-independent and engine-agnostic)
    # ------------------------------------------------------------------
    def uniform(self, stream: int, step: int, lane, slot: int = 0) -> np.ndarray:
        """Uniforms in the open interval (0, 1), one per lane (word 0)."""
        w = self.words(stream, step, lane, slot, scratch=True)
        return _u32_to_unit_open(w[0])

    def uniform4(self, stream: int, step: int, lane, slot: int = 0) -> np.ndarray:
        """Four uniforms in (0, 1) per lane; shape ``(4, n)``."""
        w = self.words(stream, step, lane, slot, scratch=True)
        return _u32_to_unit_open(w)

    def normal12(self, stream: int, step: int, lane, slot_base: int = 0) -> np.ndarray:
        """Standard normal via the 12-uniform Irwin-Hall sum, one per lane.

        The sum of 12 U(0,1) minus 6 has zero mean, unit variance and is an
        excellent normal approximation on [-6, 6]. Crucially it uses only
        additions of exactly-derived values — no transcendental functions —
        so it is bit-identical across scalar and vectorized execution, which
        keeps the engine-equivalence invariant airtight.
        """
        return irwin_hall_normal12(self.uniform4, stream, step, lane, slot_base)

    def uniform_scalar(self, stream: int, step: int, lane: int, slot: int = 0) -> float:
        """Scalar uniform in (0, 1) for loop-based (sequential) call sites."""
        return float(self.uniform(stream, step, np.uint64(lane), slot)[0])

    def normal12_scalar(self, stream: int, step: int, lane: int, slot_base: int = 0) -> float:
        """Scalar Irwin-Hall normal for loop-based call sites."""
        return float(self.normal12(stream, step, np.uint64(lane), slot_base)[0])


def irwin_hall_normal12(uniform4, stream: int, step: int, lane, slot_base: int = 0):
    """Irwin-Hall sum over three ``uniform4`` draws: 12 uniforms minus 6.

    The accumulation order (left-to-right over the 4 words of 3 successive
    slots) fixes the FP evaluation order; every RNG front-end — solo,
    batched grid, flattened lane view — routes through this one function so
    the bit-identity invariant has a single source of truth.
    """
    total = None
    for k in range(3):  # 3 philox calls x 4 words = 12 uniforms
        u = uniform4(stream, step, lane, slot_base + k)
        # Left-to-right accumulation: same FP order in all engines.
        for j in range(4):
            total = u[j] if total is None else total + u[j]
    return total - 6.0


def _u32_to_unit_open(words: np.ndarray) -> np.ndarray:
    """Map uint32 words to float64 in the open interval (0, 1).

    ``(w + 0.5) / 2**32`` is exact in float64 (both operands are exactly
    representable and the quotient is a division by a power of two), never
    returns 0.0 or 1.0, and is identical across scalar and vector paths.
    """
    return (words.astype(np.float64) + 0.5) * (1.0 / 4294967296.0)
