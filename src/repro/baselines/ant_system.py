"""Classic Ant System for the TSP (Dorigo et al.; paper Section II.B).

This is the unmodified algorithm the paper starts from — tour construction
with the random proportional rule (eq. 2 over unvisited cities) and the
evaporate/deposit pheromone update (eq. 3-5 with ``Δτ = Q / L_k``) — kept
in the repository both as a validation of the ACO core on its original
problem and as a benchmark baseline (TSPLIB-style evaluation, which the
paper notes it cannot apply to pedestrians).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..models.mathops import fast_pow
from ..rng import PhiloxKeyedRNG, Stream, categorical_from_cumsum
from .tsp import TSPInstance, is_valid_tour, tour_length

__all__ = ["AntSystemParams", "AntSystemResult", "AntSystem"]


@dataclass(frozen=True)
class AntSystemParams:
    """Ant System hyperparameters (Dorigo's classic defaults)."""

    alpha: float = 1.0
    beta: float = 2.0
    rho: float = 0.5
    q: float = 1.0
    tau0: float = 1.0
    n_ants: Optional[int] = None  # default: one ant per city

    def validate(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ConfigurationError("alpha and beta must be >= 0")
        if not (0.0 < self.rho <= 1.0):
            raise ConfigurationError(f"rho must be in (0, 1], got {self.rho}")
        if self.q <= 0 or self.tau0 <= 0:
            raise ConfigurationError("q and tau0 must be positive")
        if self.n_ants is not None and self.n_ants < 1:
            raise ConfigurationError(f"n_ants must be >= 1, got {self.n_ants}")


@dataclass
class AntSystemResult:
    """Outcome of an Ant System run."""

    best_tour: List[int]
    best_length: float
    history: List[float] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        """Number of completed iterations."""
        return len(self.history)

    def gap_to(self, optimum: float) -> float:
        """Relative excess over a known optimum."""
        return self.best_length / optimum - 1.0


class AntSystem:
    """Ant System solver over a :class:`TSPInstance`."""

    def __init__(
        self,
        instance: TSPInstance,
        params: AntSystemParams = AntSystemParams(),
        seed: int = 0,
    ) -> None:
        params.validate()
        self.instance = instance
        self.params = params
        self.rng = PhiloxKeyedRNG(seed)
        self.dist = instance.distance_matrix()
        n = instance.n_cities
        with np.errstate(divide="ignore"):
            eta = 1.0 / self.dist
        eta[np.arange(n), np.arange(n)] = 0.0
        #: Heuristic attractiveness matrix (eta ** beta precomputed).
        self.eta_beta = fast_pow(eta, params.beta)
        self.tau = np.full((n, n), params.tau0, dtype=np.float64)
        self.n_ants = params.n_ants or n
        self._iteration = 0

    # ------------------------------------------------------------------
    def _construct_tour(self, ant: int) -> List[int]:
        """One ant's tour via the random proportional rule."""
        n = self.instance.n_cities
        start = ant % n
        visited = np.zeros(n, dtype=bool)
        visited[start] = True
        tour = [start]
        tau_alpha = fast_pow(self.tau, self.params.alpha)
        weights_all = tau_alpha * self.eta_beta
        current = start
        for step in range(1, n):
            weights = np.where(visited, 0.0, weights_all[current])
            u = self.rng.uniform(
                Stream.ANT_SYSTEM,
                step=self._iteration,
                lane=np.uint64(ant),
                slot=step,
            )
            choice = int(categorical_from_cumsum(np.cumsum(weights)[None, :], u)[0])
            if choice < 0:
                # All remaining weights zero (isolated numerically); fall
                # back to the nearest unvisited city.
                remaining = np.nonzero(~visited)[0]
                choice = int(remaining[np.argmin(self.dist[current, remaining])])
            visited[choice] = True
            tour.append(choice)
            current = choice
        return tour

    def _update_pheromone(self, tours: List[List[int]], lengths: List[float]) -> None:
        """Eq. 3 evaporation then eq. 4/5 deposits on the tour edges."""
        self.tau *= 1.0 - self.params.rho
        for tour, length in zip(tours, lengths):
            deposit = self.params.q / length
            a = np.asarray(tour, dtype=np.int64)
            b = np.roll(a, -1)
            self.tau[a, b] += deposit
            self.tau[b, a] += deposit  # symmetric TSP

    # ------------------------------------------------------------------
    def run(self, iterations: int = 50) -> AntSystemResult:
        """Run the solver; returns the best tour found."""
        if iterations < 1:
            raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
        best_tour: List[int] = []
        best_length = float("inf")
        history: List[float] = []
        for _ in range(iterations):
            tours = [self._construct_tour(k) for k in range(self.n_ants)]
            lengths = [tour_length(self.dist, t) for t in tours]
            for t, length in zip(tours, lengths):
                if length < best_length:
                    best_length = length
                    best_tour = list(t)
            self._update_pheromone(tours, lengths)
            history.append(best_length)
            self._iteration += 1
        assert is_valid_tour(best_tour, self.instance.n_cities)
        return AntSystemResult(
            best_tour=best_tour, best_length=best_length, history=history
        )
