"""Baselines: classic Ant System on TSP instances."""

from .ant_system import AntSystem, AntSystemParams, AntSystemResult
from .tsp import (
    TSPInstance,
    circle_instance,
    grid_instance,
    is_valid_tour,
    nearest_neighbor_tour,
    random_instance,
    tour_length,
)

__all__ = [
    "AntSystem",
    "AntSystemParams",
    "AntSystemResult",
    "TSPInstance",
    "circle_instance",
    "grid_instance",
    "random_instance",
    "tour_length",
    "nearest_neighbor_tour",
    "is_valid_tour",
]
