"""TSP instances for the Ant System baseline (paper Section II.B).

The paper introduces Ant System through the travelling salesman problem
before modifying it for pedestrians. We validate our ACO core on its
original problem: small Euclidean instances with known optima (points on a
circle, rectangular grids) plus random instances, a nearest-neighbour
construction heuristic, and exact tour-length evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "TSPInstance",
    "circle_instance",
    "grid_instance",
    "random_instance",
    "tour_length",
    "nearest_neighbor_tour",
    "is_valid_tour",
]


@dataclass(frozen=True)
class TSPInstance:
    """A symmetric Euclidean TSP instance."""

    name: str
    coords: np.ndarray  # (n, 2)
    #: Known optimal tour length, when available (None otherwise).
    optimum: Optional[float] = None

    @property
    def n_cities(self) -> int:
        """Number of cities."""
        return self.coords.shape[0]

    def distance_matrix(self) -> np.ndarray:
        """Dense pairwise Euclidean distances, zeros on the diagonal."""
        diff = self.coords[:, None, :] - self.coords[None, :, :]
        return np.sqrt((diff * diff).sum(axis=2))


def circle_instance(n: int, radius: float = 1.0) -> TSPInstance:
    """``n`` cities equally spaced on a circle; the optimum is the polygon.

    Optimal length = ``2 n r sin(pi / n)``.
    """
    if n < 3:
        raise ValueError(f"need at least 3 cities, got {n}")
    angles = 2.0 * np.pi * np.arange(n) / n
    coords = radius * np.stack([np.cos(angles), np.sin(angles)], axis=1)
    optimum = 2.0 * n * radius * math.sin(math.pi / n)
    return TSPInstance(name=f"circle{n}", coords=coords, optimum=optimum)


def grid_instance(rows: int, cols: int, spacing: float = 1.0) -> TSPInstance:
    """Cities on a ``rows x cols`` unit grid.

    For an even number of cities a boustrophedon Hamiltonian cycle of
    length ``rows * cols * spacing`` exists and is optimal (every edge of
    any tour is at least ``spacing``).
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid instances need rows, cols >= 2")
    rr, cc = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    coords = spacing * np.stack([rr.ravel(), cc.ravel()], axis=1).astype(np.float64)
    n = rows * cols
    optimum = float(n * spacing) if n % 2 == 0 else None
    return TSPInstance(name=f"grid{rows}x{cols}", coords=coords, optimum=optimum)


def random_instance(n: int, seed: int = 0, box: float = 100.0) -> TSPInstance:
    """``n`` uniform random cities in a square box (no known optimum)."""
    if n < 3:
        raise ValueError(f"need at least 3 cities, got {n}")
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0.0, box, size=(n, 2))
    return TSPInstance(name=f"random{n}-{seed}", coords=coords)


def tour_length(dist: np.ndarray, tour: Sequence[int]) -> float:
    """Closed-tour length under a distance matrix."""
    tour = np.asarray(tour, dtype=np.int64)
    return float(dist[tour, np.roll(tour, -1)].sum())


def is_valid_tour(tour: Sequence[int], n_cities: int) -> bool:
    """True when ``tour`` visits every city exactly once."""
    tour = np.asarray(tour, dtype=np.int64)
    return tour.shape == (n_cities,) and len(np.unique(tour)) == n_cities


def nearest_neighbor_tour(dist: np.ndarray, start: int = 0) -> List[int]:
    """Greedy nearest-neighbour construction (the classic TSP heuristic)."""
    n = dist.shape[0]
    unvisited = set(range(n))
    unvisited.remove(start)
    tour = [start]
    current = start
    while unvisited:
        nxt = min(unvisited, key=lambda j: dist[current, j])
        unvisited.remove(nxt)
        tour.append(nxt)
        current = nxt
    return tour
