"""Exception hierarchy for :mod:`repro`.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Validation helpers raise the most specific subclass available.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "PlacementError",
    "EngineError",
    "BackendUnavailableError",
    "LaunchConfigError",
    "OccupancyError",
    "StatsError",
    "ExperimentError",
    "ServiceError",
    "WorkerCrashError",
    "AnalyticsError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """A simulation/model configuration value is invalid or inconsistent."""


class PlacementError(ReproError, ValueError):
    """Agents cannot be placed as requested (band too small, overlap...)."""


class EngineError(ReproError, RuntimeError):
    """An engine was driven through an invalid state transition."""


class BackendUnavailableError(ReproError, RuntimeError):
    """A requested array backend is unknown or cannot be imported here.

    Raised by :func:`repro.backend.resolve_backend` — e.g. asking for the
    CuPy backend on a machine without ``cupy`` installed. The CLI maps it
    (like every :class:`ReproError`) to a clean exit code 2.
    """


class LaunchConfigError(ReproError, ValueError):
    """A CUDA kernel launch configuration violates device limits."""


class OccupancyError(ReproError, ValueError):
    """Occupancy calculation received resources beyond device capability."""


class StatsError(ReproError, ValueError):
    """Statistical routine received degenerate or ill-shaped input."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment driver failed or was mis-parameterised."""


class WorkerCrashError(ReproError, RuntimeError):
    """A pool worker process died while executing a launch.

    Raised from the future of the batch the worker was running (OOM
    kills, segfaults, SIGKILL). The :class:`repro.exec.ExecutorPool`
    respawns the worker, so sibling batches and subsequent submissions
    are unaffected — the crash costs exactly one batch.
    """


class AnalyticsError(ReproError, RuntimeError):
    """The analytics store is unusable or was driven incorrectly.

    Raised by :class:`repro.analytics.RunStore` on corrupt database
    files, schema versions newer than this build understands, and
    queries against unknown runs. The CLI maps it (like every
    :class:`ReproError`) to a clean exit code 2.
    """


class ServiceError(ReproError, RuntimeError):
    """The simulation service was mis-used or an RPC to it failed.

    Raised by the job store on corrupt state, by the HTTP client on
    connection/protocol failures, and by :class:`repro.service.service.
    SimulationService` on unknown job ids. The CLI maps it (like every
    :class:`ReproError`) to a clean exit code 2.
    """
