"""Exception hierarchy for :mod:`repro`.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Validation helpers raise the most specific subclass available.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "PlacementError",
    "EngineError",
    "LaunchConfigError",
    "OccupancyError",
    "StatsError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """A simulation/model configuration value is invalid or inconsistent."""


class PlacementError(ReproError, ValueError):
    """Agents cannot be placed as requested (band too small, overlap...)."""


class EngineError(ReproError, RuntimeError):
    """An engine was driven through an invalid state transition."""


class LaunchConfigError(ReproError, ValueError):
    """A CUDA kernel launch configuration violates device limits."""


class OccupancyError(ReproError, ValueError):
    """Occupancy calculation received resources beyond device capability."""


class StatsError(ReproError, ValueError):
    """Statistical routine received degenerate or ill-shaped input."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment driver failed or was mis-parameterised."""
