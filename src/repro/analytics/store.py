"""SQLite-backed run store: persistent, queryable cross-run analytics.

The serving layer's result cache answers "give me this exact run again";
the run store answers the *analytical* questions the paper's figures
ask — how does flow vary with density, when does a scenario gridlock,
how fast do lanes form — across every run the service has ever
executed. One SQLite file holds three tables:

* ``runs`` — one row per executed run: config summary (geometry,
  population, model, engine, backend, seed), lifecycle status, and the
  completion summary (throughput, wall seconds, density, mean flow);
* ``metrics`` — the per-step stream: one row per
  :class:`~repro.metrics.stream.StepMetrics` record;
* ``spans`` — one row per tracing span (schema v4): each job's
  ``queue_wait → … → commit`` phase tree, queryable offline via
  :meth:`RunStore.spans` / :meth:`RunStore.phase_latency`.

The store follows the initialize → execute-with-incremental-persistence
→ report lifecycle: :meth:`begin_run` registers a run before its first
step, :meth:`append_metrics` lands per-step batches *while the engine
runs* (one transaction per batch — the batched-write path), and
:meth:`finish_run` seals the summary. WAL journaling lets the service's
SSE readers and the CLI query mid-run without blocking the writers, and
lets pool *worker processes* append metrics concurrently with the
service process updating run rows.

The schema is versioned through ``PRAGMA user_version``; opening an
older database migrates it forward in one transaction, opening a newer
one refuses loudly (:class:`~repro.errors.AnalyticsError`) rather than
guessing.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from typing import Dict, Iterable, List, Optional

from ..errors import AnalyticsError
from ..metrics.stream import StepMetrics

__all__ = ["RunStore", "SCHEMA_VERSION"]

#: Current schema version (``PRAGMA user_version`` of a fresh store).
SCHEMA_VERSION = 4

_RUNS_DDL = """
CREATE TABLE IF NOT EXISTS runs (
    run_id            TEXT PRIMARY KEY,
    digest            TEXT NOT NULL,
    scenario          TEXT NOT NULL,
    model             TEXT NOT NULL,
    engine            TEXT NOT NULL,
    backend           TEXT NOT NULL DEFAULT 'numpy',
    height            INTEGER NOT NULL,
    width             INTEGER NOT NULL,
    agents            INTEGER NOT NULL,
    steps             INTEGER NOT NULL,
    seed              INTEGER NOT NULL,
    status            TEXT NOT NULL DEFAULT 'running',
    throughput_total  INTEGER,
    wall_seconds      REAL,
    density           REAL NOT NULL,
    flow              REAL,
    created_s         REAL NOT NULL
)
"""

_METRICS_DDL = """
CREATE TABLE IF NOT EXISTS metrics (
    run_id            TEXT NOT NULL,
    step              INTEGER NOT NULL,
    moved             INTEGER NOT NULL,
    new_crossings     INTEGER NOT NULL,
    crossed_total     INTEGER NOT NULL,
    gridlock_fraction REAL NOT NULL,
    lane_index        REAL,
    dispatch_ops      INTEGER,
    PRIMARY KEY (run_id, step)
)
"""

_RUN_COLUMNS = (
    "run_id", "digest", "scenario", "model", "engine", "backend",
    "height", "width", "agents", "steps", "seed", "status",
    "throughput_total", "wall_seconds", "density", "flow", "created_s",
)

_METRIC_COLUMNS = (
    "run_id", "step", "moved", "new_crossings", "crossed_total",
    "gridlock_fraction", "lane_index", "dispatch_ops",
)

_SPANS_DDL = """
CREATE TABLE IF NOT EXISTS spans (
    run_id      TEXT NOT NULL,
    span_id     TEXT NOT NULL,
    trace_id    TEXT NOT NULL,
    parent_id   TEXT,
    name        TEXT NOT NULL,
    start_unix  REAL NOT NULL,
    duration_s  REAL,
    status      TEXT NOT NULL DEFAULT 'ok',
    error       TEXT,
    attrs       TEXT,
    PRIMARY KEY (run_id, span_id)
)
"""

_SPAN_COLUMNS = (
    "run_id", "span_id", "trace_id", "parent_id", "name",
    "start_unix", "duration_s", "status", "error", "attrs",
)


def _migrate_1_to_2(conn: sqlite3.Connection) -> None:
    """v1 predates the array-backend column on runs; default it."""
    conn.execute(
        "ALTER TABLE runs ADD COLUMN backend TEXT NOT NULL DEFAULT 'numpy'"
    )


def _migrate_2_to_3(conn: sqlite3.Connection) -> None:
    """v2 predates the per-step dispatch-count column on metrics.

    NULL for every pre-existing row (and for runs without a profiling
    backend) — the column only carries data when a counting backend is
    attached to the run.
    """
    conn.execute("ALTER TABLE metrics ADD COLUMN dispatch_ops INTEGER")


def _migrate_3_to_4(conn: sqlite3.Connection) -> None:
    """v3 predates tracing; add the per-job span tree table.

    One row per span, keyed like metrics by the owning run (= job) id,
    so a trace is fetched with one indexed lookup and cleared alongside
    the run's metric rows on re-execution.
    """
    conn.execute(_SPANS_DDL)
    conn.execute(
        "CREATE INDEX IF NOT EXISTS idx_spans_name ON spans(name)"
    )


#: from-version -> migration; applied in sequence up to SCHEMA_VERSION.
_MIGRATIONS = {1: _migrate_1_to_2, 2: _migrate_2_to_3, 3: _migrate_3_to_4}


def scenario_key(height: int, width: int) -> str:
    """Grid-geometry scenario label ("64x64").

    The fundamental diagram plots flow against density *on one
    geometry*; keying scenarios by geometry makes runs of different
    populations on the same grid comparable — exactly the paper's
    population-sweep axis. Configs built from a *named* scenario
    (``config.scenario``, e.g. "boarding:30x7") keep that name as the
    label instead, so workload families stay distinguishable even when
    they happen to share a geometry.
    """
    return f"{int(height)}x{int(width)}"


class RunStore:
    """Persistent run + per-step-metrics store over one SQLite file.

    Thread-safe within a process (one connection guarded by a lock) and
    multi-process-safe across processes (WAL + busy timeout): the
    service process owns run rows while pool workers append metric
    batches to the same file.
    """

    def __init__(self, path: str, timeout: float = 10.0) -> None:
        self.path = str(path)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._lock = threading.RLock()
        try:
            self._conn = sqlite3.connect(
                self.path, timeout=timeout, check_same_thread=False
            )
            self._conn.row_factory = sqlite3.Row
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(f"PRAGMA busy_timeout={int(timeout * 1000)}")
            self._init_schema()
        except sqlite3.DatabaseError as exc:
            raise AnalyticsError(
                f"cannot open analytics store {self.path!r}: {exc}"
            ) from None

    # ------------------------------------------------------------------
    # Schema lifecycle
    # ------------------------------------------------------------------
    def _init_schema(self) -> None:
        with self._lock, self._conn:
            version = self._conn.execute("PRAGMA user_version").fetchone()[0]
            if version == 0:
                # Fresh file (or pre-versioning empty db): create at head.
                self._conn.execute(_RUNS_DDL)
                self._conn.execute(_METRICS_DDL)
                self._conn.execute(_SPANS_DDL)
                self._conn.execute(
                    "CREATE INDEX IF NOT EXISTS idx_runs_scenario "
                    "ON runs(scenario)"
                )
                self._conn.execute(
                    "CREATE INDEX IF NOT EXISTS idx_spans_name ON spans(name)"
                )
                self._conn.execute(f"PRAGMA user_version={SCHEMA_VERSION}")
                return
            if version > SCHEMA_VERSION:
                raise AnalyticsError(
                    f"{self.path}: schema version {version} is newer than "
                    f"this build understands (max {SCHEMA_VERSION}); "
                    "refusing to touch it"
                )
            while version < SCHEMA_VERSION:
                _MIGRATIONS[version](self._conn)
                version += 1
                self._conn.execute(f"PRAGMA user_version={version}")

    @property
    def schema_version(self) -> int:
        with self._lock:
            return int(self._conn.execute("PRAGMA user_version").fetchone()[0])

    def close(self) -> None:
        """Close the connection (idempotent); the file stays queryable."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    # ------------------------------------------------------------------
    # Writes (the initialize → incremental-persist → report lifecycle)
    # ------------------------------------------------------------------
    def begin_run(self, run_id: str, config, engine: str, digest: str) -> None:
        """Register a run as running, before its first step executes."""
        self.begin_runs([(run_id, config, engine, digest)])

    def begin_runs(self, entries: Iterable[tuple]) -> None:
        """Register many ``(run_id, config, engine, digest)`` at once.

        Re-registering a run id (a requeued job re-executing after a
        crash) resets its row *and clears its stale metric rows*, so a
        torn previous attempt can never mix steps into the new one.
        """
        rows = []
        ids = []
        now = time.time()
        for run_id, config, engine, digest in entries:
            ids.append((str(run_id),))
            rows.append(
                (
                    str(run_id),
                    str(digest),
                    config.scenario
                    or scenario_key(config.height, config.width),
                    config.model_name,
                    str(engine),
                    config.backend,
                    config.height,
                    config.width,
                    config.total_agents,
                    config.steps,
                    config.seed,
                    "running",
                    None,
                    None,
                    config.density,
                    None,
                    now,
                )
            )
        if not rows:
            return
        with self._lock, self._conn:
            self._conn.executemany("DELETE FROM metrics WHERE run_id=?", ids)
            self._conn.executemany("DELETE FROM spans WHERE run_id=?", ids)
            self._conn.executemany(
                "INSERT OR REPLACE INTO runs "
                f"({', '.join(_RUN_COLUMNS)}) VALUES "
                f"({', '.join('?' * len(_RUN_COLUMNS))})",
                rows,
            )

    def append_metrics(self, records: Iterable[StepMetrics]) -> int:
        """Persist a batch of per-step records in one transaction.

        This is the streaming hot path: emitters buffer records and
        flush batches here, so the per-step cost is an in-memory append
        and the database pays one commit per batch.
        """
        rows = [r.to_row() for r in records]
        if not rows:
            return 0
        with self._lock, self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO metrics "
                f"({', '.join(_METRIC_COLUMNS)}) VALUES "
                f"({', '.join('?' * len(_METRIC_COLUMNS))})",
                rows,
            )
        return len(rows)

    def append_spans(self, run_id: str, spans: Iterable[dict]) -> int:
        """Persist one job's span tree (wire dicts) in one transaction.

        Replaces any spans the run id already had (a re-executed job
        records a fresh trace). ``attrs`` is stored as JSON text.
        """
        run_id = str(run_id)
        rows = []
        for span in spans:
            attrs = span.get("attrs") or {}
            rows.append(
                (
                    run_id,
                    str(span.get("span_id", "")),
                    str(span.get("trace_id", "")),
                    span.get("parent_id"),
                    str(span.get("name", "unknown")),
                    float(span.get("start_unix") or 0.0),
                    span.get("duration_s"),
                    str(span.get("status", "ok")),
                    span.get("error"),
                    json.dumps(attrs, sort_keys=True) if attrs else None,
                )
            )
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM spans WHERE run_id=?", (run_id,))
            if rows:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO spans "
                    f"({', '.join(_SPAN_COLUMNS)}) VALUES "
                    f"({', '.join('?' * len(_SPAN_COLUMNS))})",
                    rows,
                )
        return len(rows)

    def finish_run(
        self,
        run_id: str,
        status: str,
        throughput_total: Optional[int] = None,
        wall_seconds: Optional[float] = None,
    ) -> None:
        """Seal a run's summary row ("done" or "failed").

        Mean flow — the fundamental diagram's y-axis — is derived here
        as crossings per step (``throughput_total / steps``).
        """
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT steps FROM runs WHERE run_id=?", (str(run_id),)
            ).fetchone()
            if row is None:
                raise AnalyticsError(f"finish_run for unknown run {run_id!r}")
            steps = int(row["steps"])
            flow = (
                None
                if throughput_total is None
                else throughput_total / max(1, steps)
            )
            self._conn.execute(
                "UPDATE runs SET status=?, throughput_total=?, "
                "wall_seconds=?, flow=? WHERE run_id=?",
                (str(status), throughput_total, wall_seconds, flow, str(run_id)),
            )

    # ------------------------------------------------------------------
    # Queries (what the /analytics endpoints and the CLI serve)
    # ------------------------------------------------------------------
    def run(self, run_id: str) -> Optional[dict]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM runs WHERE run_id=?", (str(run_id),)
            ).fetchone()
        return None if row is None else dict(row)

    def runs(
        self, scenario: Optional[str] = None, limit: Optional[int] = None
    ) -> List[dict]:
        """Run rows, newest first, optionally filtered by scenario."""
        sql = "SELECT * FROM runs"
        args: list = []
        if scenario is not None:
            sql += " WHERE scenario=?"
            args.append(str(scenario))
        sql += " ORDER BY created_s DESC, run_id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            args.append(int(limit))
        with self._lock:
            rows = self._conn.execute(sql, args).fetchall()
        return [dict(r) for r in rows]

    def metrics(self, run_id: str, after_step: int = -1) -> List[dict]:
        """Per-step records of one run with ``step > after_step``.

        The SSE streamer's incremental read: each poll passes the last
        step it shipped and receives only the new tail.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM metrics WHERE run_id=? AND step>? "
                "ORDER BY step",
                (str(run_id), int(after_step)),
            ).fetchall()
        return [dict(r) for r in rows]

    def spans(self, run_id: str) -> List[dict]:
        """One job's persisted span tree, in start order (wire dicts)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM spans WHERE run_id=? "
                "ORDER BY start_unix, span_id",
                (str(run_id),),
            ).fetchall()
        out = []
        for row in rows:
            span = dict(row)
            span.pop("run_id", None)
            span["attrs"] = json.loads(span["attrs"]) if span["attrs"] else {}
            out.append(span)
        return out

    def phase_latency(self, scenario: Optional[str] = None) -> Dict[str, List[float]]:
        """Raw span durations grouped by phase name (``repro analytics --latency``).

        The ``job`` root spans are the end-to-end samples; everything
        else is a phase. Percentiles are the caller's job — the exact
        samples are small (a handful of spans per run) and keeping them
        raw lets the CLI pick its own quantiles.
        """
        sql = (
            "SELECT s.name AS name, s.duration_s AS duration_s "
            "FROM spans s"
        )
        args: list = []
        if scenario is not None:
            sql += (
                " JOIN runs r ON r.run_id = s.run_id WHERE r.scenario=?"
                " AND s.duration_s IS NOT NULL"
            )
            args.append(str(scenario))
        else:
            sql += " WHERE s.duration_s IS NOT NULL"
        with self._lock:
            rows = self._conn.execute(sql, args).fetchall()
        out: Dict[str, List[float]] = {}
        for row in rows:
            out.setdefault(row["name"], []).append(float(row["duration_s"]))
        return out

    def dispatch_ops_total(self) -> int:
        """Sum of recorded per-step dispatch counts (profiled runs only)."""
        with self._lock:
            value = self._conn.execute(
                "SELECT COALESCE(SUM(dispatch_ops), 0) FROM metrics"
            ).fetchone()[0]
        return int(value or 0)

    def fundamental_diagram(
        self, scenario: Optional[str] = None
    ) -> List[dict]:
        """Density/flow points across completed runs (the paper's FD view).

        One point per finished run: the run's global density
        (agents per cell) against its mean flow (crossings per step).
        Filtered to one grid geometry via ``scenario``, the points trace
        the fundamental diagram as population sweeps upward — flow rises
        with density until congestion, then collapses toward gridlock.
        """
        sql = (
            "SELECT run_id, scenario, model, engine, agents, density, flow, "
            "throughput_total, steps FROM runs "
            "WHERE status='done' AND flow IS NOT NULL"
        )
        args: list = []
        if scenario is not None:
            sql += " AND scenario=?"
            args.append(str(scenario))
        sql += " ORDER BY density, run_id"
        with self._lock:
            rows = self._conn.execute(sql, args).fetchall()
        return [dict(r) for r in rows]

    def scenarios(self) -> List[str]:
        """Distinct scenario keys with at least one run."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT DISTINCT scenario FROM runs ORDER BY scenario"
            ).fetchall()
        return [r["scenario"] for r in rows]

    def counts(self) -> Dict[str, int]:
        """Row counts per runs status plus the metrics total (for /stats)."""
        with self._lock:
            out: Dict[str, int] = {}
            for row in self._conn.execute(
                "SELECT status, COUNT(*) AS n FROM runs GROUP BY status"
            ):
                out[f"runs_{row['status']}"] = int(row["n"])
            out["metric_rows"] = int(
                self._conn.execute("SELECT COUNT(*) FROM metrics").fetchone()[0]
            )
            out["span_rows"] = int(
                self._conn.execute("SELECT COUNT(*) FROM spans").fetchone()[0]
            )
        return out

    def __len__(self) -> int:
        with self._lock:
            return int(
                self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
            )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line human summary (used by ``repro analytics``)."""
        counts = self.counts()
        return (
            f"{self.path}: {len(self)} runs "
            f"({json.dumps(counts, sort_keys=True)})"
        )
