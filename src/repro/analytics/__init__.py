"""Analytics: persistent run store + live per-step metric streaming.

The layer that turns the service from a batch executor into something a
dashboard can sit on: engines emit per-step
:class:`~repro.metrics.stream.StepMetrics` records through a
:class:`MetricStream` (threaded into launches via
:class:`MetricStreamSpec` on :class:`~repro.exec.work.LaunchWork`), and
a SQLite-backed :class:`RunStore` persists run records, the metric
streams and completion summaries as jobs execute — queryable mid-run
(``GET /jobs/<id>/stream``) and across runs
(``GET /analytics/fundamental-diagram``, ``repro analytics``).
"""

from .sink import MetricStream, MetricStreamSpec
from .store import SCHEMA_VERSION, RunStore, scenario_key

__all__ = [
    "RunStore",
    "SCHEMA_VERSION",
    "scenario_key",
    "MetricStream",
    "MetricStreamSpec",
]
