"""Metric sinks: stream per-step records out of a running launch.

The execution layer is deliberately launch-shaped — a
:class:`~repro.exec.work.LaunchWork` pickles into a pool worker and
returns one :class:`~repro.exec.work.LaunchOutcome` at the end — so a
live metrics stream cannot ride the result channel. Instead the work
item carries a :class:`MetricStreamSpec`: a picklable *description* of
where the stream should land (the analytics SQLite file plus one run id
per lane). :func:`~repro.exec.work.execute_launch` builds a
:class:`MetricStream` from it wherever the launch actually runs — the
caller's thread or a forkserver worker — and the engines' per-step
callbacks push records through it. SQLite in WAL mode is the
rendezvous: workers append metric batches while the service process
reads them back out for the SSE endpoint, with no extra IPC channel.

Metric computation is read-only over engine state, so a streamed launch
stays bit-identical to an unstreamed one — the core guarantee every
layer above relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..metrics.stream import StepMetrics, step_metrics
from .store import RunStore

__all__ = ["MetricStreamSpec", "MetricStream"]


@dataclass(frozen=True)
class MetricStreamSpec:
    """Picklable description of a launch's metric stream.

    ``run_ids`` aligns with the launch's ``configs`` (one stream per
    lane). ``flush_every`` bounds buffered records per lane before a
    batched store write; ``lane_index_every`` thins the (host-side,
    O(H·W)) lane-order computation — ``1`` samples every step, ``0``
    disables it, ``k`` samples every k-th step.
    """

    db_path: str
    run_ids: Tuple[str, ...]
    flush_every: int = 32
    lane_index_every: int = 1

    def __post_init__(self) -> None:
        if self.flush_every < 1:
            raise ValueError(
                f"flush_every must be >= 1, got {self.flush_every}"
            )
        if self.lane_index_every < 0:
            raise ValueError(
                f"lane_index_every must be >= 0, got {self.lane_index_every}"
            )


class MetricStream:
    """Per-launch emitter: engine callbacks in, batched store writes out.

    One instance covers every lane of a launch. Use
    :meth:`solo_callback` with :func:`~repro.engine.run_simulation` and
    :meth:`batched_callback` with :func:`~repro.engine.run_batched`;
    call :meth:`close` when the launch finishes (flushes the tail).
    """

    def __init__(self, spec: MetricStreamSpec, configs: Sequence) -> None:
        if len(spec.run_ids) != len(configs):
            raise ValueError(
                f"need one run id per lane, got {len(spec.run_ids)} ids "
                f"for {len(configs)} lanes"
            )
        self.spec = spec
        self.configs = tuple(configs)
        self._agents = [c.total_agents for c in configs]
        self._crossed = [0] * len(configs)
        #: Last-seen cumulative op count per engine (id-keyed): per-step
        #: dispatch deltas for runs on a counting backend.
        self._ops_marks: dict = {}
        self._buffer: List[StepMetrics] = []
        #: Opened lazily on first flush so building the stream (and
        #: pickling the spec) costs nothing when a launch fails early.
        self._store: Optional[RunStore] = None
        self.records_emitted = 0

    # ------------------------------------------------------------------
    def _sample_lanes(self, step: int) -> bool:
        every = self.spec.lane_index_every
        return every > 0 and step % every == 0

    def _emit(self, record: StepMetrics) -> None:
        self._buffer.append(record)
        self.records_emitted += 1
        if len(self._buffer) >= self.spec.flush_every * len(self.configs):
            self.flush()

    def flush(self) -> None:
        """Write buffered records to the store (one transaction)."""
        if not self._buffer:
            return
        if self._store is None:
            self._store = RunStore(self.spec.db_path)
        self._store.append_metrics(self._buffer)
        self._buffer.clear()

    def close(self) -> None:
        """Flush the tail and release the store connection (idempotent)."""
        self.flush()
        if self._store is not None:
            self._store.close()
            self._store = None

    def _dispatch_ops(self, engine) -> Optional[int]:
        """This step's namespace-dispatch delta, on counting backends.

        ``None`` on ordinary backends (no ``ops`` counter — zero
        overhead). On a :class:`~repro.backend.ProfilingBackend` the
        delta is exact from the run's first step because
        :func:`~repro.engine.run_simulation` / ``run_batched`` reset the
        counters at the run-loop boundary.
        """
        ops = getattr(engine.backend, "ops", None)
        if ops is None:
            return None
        key = id(engine)
        prev = self._ops_marks.get(key, 0)
        self._ops_marks[key] = ops
        return int(ops) - prev

    # ------------------------------------------------------------------
    # Engine callbacks
    # ------------------------------------------------------------------
    def solo_callback(self, lane: int) -> Callable:
        """A ``callback(engine, report)`` for one solo-run lane."""
        run_id = self.spec.run_ids[lane]
        agents = self._agents[lane]

        def _on_step(engine, report) -> None:
            ops = self._dispatch_ops(engine)
            self._crossed[lane] += report.new_crossings
            mat = (
                engine.backend.to_host(engine.env.mat)
                if self._sample_lanes(report.step)
                else None
            )
            self._emit(
                step_metrics(
                    run_id,
                    report.step,
                    report.moved,
                    report.new_crossings,
                    self._crossed[lane],
                    agents,
                    mat=mat,
                    dispatch_ops=ops,
                )
            )

        return _on_step

    def batched_callback(self, engine, report) -> None:
        """``callback(engine, report)`` for a batched launch (all lanes).

        On a counting backend every lane's record carries the *batch's*
        per-step dispatch count — lanes share one fused dispatch
        sequence, which is exactly the quantity batching optimises.
        """
        ops = self._dispatch_ops(engine)
        to_host = engine.backend.to_host
        moved = to_host(report.moved)
        crossings = to_host(report.new_crossings)
        sample = self._sample_lanes(report.step)
        for b, run_id in enumerate(self.spec.run_ids):
            self._crossed[b] += int(crossings[b])
            mat = None
            if sample:
                cfg = self.configs[b]
                mat = to_host(engine.mats[b, : cfg.height, : cfg.width])
            self._emit(
                step_metrics(
                    run_id,
                    report.step,
                    int(moved[b]),
                    int(crossings[b]),
                    self._crossed[b],
                    self._agents[b],
                    mat=mat,
                    dispatch_ops=ops,
                )
            )
