"""Space-time records: row-occupancy profiles over the course of a run.

A space-time diagram (rows x steps occupancy matrix) is the classic way to
*see* jam fronts form and travel; combined with the ASCII heatmap renderer
it gives a terminal-friendly version of the crowd videos GPU papers demo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..engine.base import BaseEngine, StepReport
from ..types import Group

__all__ = ["SpaceTimeRecorder", "render_spacetime"]

_SHADES = " .:-=+*#%@"


@dataclass
class SpaceTimeRecorder:
    """Engine callback sampling per-row occupancy every ``every`` steps."""

    every: int = 1
    group: Optional[Group] = None
    profiles: List[np.ndarray] = field(default_factory=list)
    sample_steps: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")

    def __call__(self, engine: BaseEngine, report: StepReport) -> None:
        """Sample after qualifying steps."""
        if report.step % self.every:
            return
        # Recording boundary: sample a host copy of the grid so profiles
        # accumulate as NumPy arrays regardless of the engine's backend.
        mat = engine.backend.to_host(engine.env.mat)
        if self.group is None:
            occupied = (mat == int(Group.TOP)) | (mat == int(Group.BOTTOM))
        else:
            occupied = mat == int(self.group)
        self.profiles.append(occupied.sum(axis=1) / mat.shape[1])
        self.sample_steps.append(report.step)

    @property
    def matrix(self) -> np.ndarray:
        """``(samples, rows)`` occupancy-fraction matrix."""
        if not self.profiles:
            return np.zeros((0, 0))
        return np.stack(self.profiles)

    def jam_front_rows(self, threshold: float = 0.6) -> np.ndarray:
        """Per-sample row index of the densest congested row (-1 if none)."""
        m = self.matrix
        if m.size == 0:
            return np.zeros(0, dtype=np.int64)
        peaks = m.argmax(axis=1)
        dense = m.max(axis=1) >= threshold
        return np.where(dense, peaks, -1)


def render_spacetime(recorder: SpaceTimeRecorder, max_cols: int = 72) -> str:
    """ASCII heatmap: rows of the grid on the y axis, time on the x axis."""
    m = recorder.matrix
    if m.size == 0:
        return "(no samples)"
    # Columns = samples (possibly thinned), rows = grid rows.
    samples = m.shape[0]
    stride = max(1, samples // max_cols)
    thinned = m[::stride].T  # (rows, samples')
    peak = max(1e-9, float(thinned.max()))
    lines = []
    for r in range(thinned.shape[0]):
        chars = [
            _SHADES[min(len(_SHADES) - 1, int(v / peak * (len(_SHADES) - 1)))]
            for v in thinned[r]
        ]
        lines.append("".join(chars))
    header = f"space-time occupancy (peak row fill {peak:.0%}; time -> )"
    return header + "\n" + "\n".join(lines)
