"""Fundamental diagram estimation (density vs flow).

The density-flow relation is the standard lens on pedestrian models: flow
rises with density in free flow, peaks, then collapses into the jammed
branch. The estimator sweeps densities, runs the simulation, and measures
the sustained midline flux — giving a quantitative home for the paper's
observation that "LEM and ACO are virtually identical when the density is
low, ACO provides more optimal paths when the density is medium, and when
highly congested neither offers a means for movement".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..config import SimulationConfig
from ..engine import build_engine
from ..errors import ExperimentError
from ..metrics.flow import FlowRecorder

__all__ = ["FundamentalPoint", "fundamental_diagram", "capacity_density"]


@dataclass(frozen=True)
class FundamentalPoint:
    """One (density, flow) sample."""

    density: float
    #: Mean productive midline flux per step, per unit corridor width.
    flow: float
    #: Mean fraction of agents moving per step.
    move_rate: float
    #: Crossed fraction at the end of the run.
    crossed_fraction: float


def fundamental_diagram(
    base: SimulationConfig,
    densities: Sequence[float],
    engine: str = "vectorized",
    seed: int = 0,
    warmup_fraction: float = 0.25,
) -> List[FundamentalPoint]:
    """Sample the density-flow relation for ``base``'s model and grid.

    ``base.n_per_side`` is overridden per density; the flux average skips
    the initial ``warmup_fraction`` of steps (transient filling).
    """
    if not densities:
        raise ExperimentError("need at least one density")
    points = []
    cells = base.height * base.width
    for rho in densities:
        if not (0.0 < rho < 1.0):
            raise ExperimentError(f"density must be in (0, 1), got {rho}")
        n_side = max(1, int(rho * cells / 2))
        cfg = base.replace(n_per_side=n_side)
        eng = build_engine(cfg, engine, seed=seed)
        recorder = FlowRecorder()
        eng.run(callback=recorder, record_timeline=False)
        warmup = int(len(recorder.flux) * warmup_fraction)
        flux = np.asarray(recorder.flux[warmup:], dtype=np.float64)
        flow = float(flux.mean()) / base.width if flux.size else 0.0
        points.append(
            FundamentalPoint(
                density=cfg.density,
                flow=flow,
                move_rate=recorder.mean_move_rate,
                crossed_fraction=eng.throughput() / cfg.total_agents,
            )
        )
    return points


def capacity_density(points: List[FundamentalPoint]) -> float:
    """Density of the flow peak (the corridor's capacity point)."""
    if not points:
        raise ExperimentError("need at least one point")
    best = max(points, key=lambda p: p.flow)
    return best.density
