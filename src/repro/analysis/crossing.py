"""Crossing-time analysis.

The paper defines throughput as "the number of pedestrians able to cross
... and the number of time steps required"; this module analyses the
second half of that definition: the distribution of first-crossing steps,
percentiles, and comparisons between runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..engine.base import BaseEngine
from ..errors import StatsError
from ..types import Group

__all__ = ["CrossingTimes", "crossing_times"]


@dataclass(frozen=True)
class CrossingTimes:
    """First-crossing step statistics of one finished run."""

    n_agents: int
    n_crossed: int
    steps: np.ndarray  # sorted first-crossing steps of crossed agents

    @property
    def fraction(self) -> float:
        """Crossed fraction."""
        return self.n_crossed / self.n_agents if self.n_agents else 0.0

    @property
    def mean(self) -> float:
        """Mean first-crossing step (nan if none crossed)."""
        return float(self.steps.mean()) if self.steps.size else float("nan")

    @property
    def median(self) -> float:
        """Median first-crossing step."""
        return float(np.median(self.steps)) if self.steps.size else float("nan")

    def percentile(self, q: float) -> float:
        """q-th percentile of the crossing step (q in [0, 100])."""
        if not (0.0 <= q <= 100.0):
            raise StatsError(f"percentile must be in [0, 100], got {q}")
        if self.steps.size == 0:
            return float("nan")
        return float(np.percentile(self.steps, q))

    def count_by(self, step: int) -> int:
        """Cumulative crossings at or before ``step`` (the Fig 6 ordinate
        for an arbitrary step budget)."""
        return int(np.searchsorted(self.steps, step, side="right"))

    def rate_between(self, start: int, stop: int) -> float:
        """Crossings per step inside the half-open window [start, stop)."""
        if stop <= start:
            raise StatsError(f"need stop > start, got [{start}, {stop})")
        inside = np.count_nonzero((self.steps >= start) & (self.steps < stop))
        return inside / (stop - start)


def crossing_times(engine: BaseEngine, group: Optional[Group] = None) -> CrossingTimes:
    """Extract the crossing-time distribution from a finished engine."""
    pop = engine.pop
    mask = pop.crossed.copy()
    mask[0] = False
    if group is not None:
        mask &= pop.group_mask(group)
    steps = np.sort(pop.crossed_step[mask])
    total = (
        pop.n_agents
        if group is None
        else int(np.count_nonzero(pop.group_mask(group)[1:]))
    )
    return CrossingTimes(n_agents=total, n_crossed=int(mask.sum()), steps=steps)
