"""Analysis tools: crossing times, fundamental diagrams, space-time records."""

from .crossing import CrossingTimes, crossing_times
from .fundamental import FundamentalPoint, capacity_density, fundamental_diagram
from .spacetime import SpaceTimeRecorder, render_spacetime

__all__ = [
    "CrossingTimes",
    "crossing_times",
    "FundamentalPoint",
    "fundamental_diagram",
    "capacity_density",
    "SpaceTimeRecorder",
    "render_spacetime",
]
