"""Pheromone fields for the modified ACO (paper eq. 3-5).

The paper keeps *two* pheromone matrices, one per group, each the size of
``mat`` — an agent reads and reinforces only its own group's field, which is
what lets same-direction flows organise into lanes. Evaporation (eq. 3) is
applied uniformly every step; deposition (eq. 5) adds ``q / L_k`` on the
cell an agent moves into, where ``L_k`` is that agent's tour length so far.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..backend import resolve_backend
from ..types import Group
from .params import ACOParams

__all__ = ["PheromoneField", "evaporate_field", "deposit_at"]


def evaporate_field(field: np.ndarray, params: ACOParams, xp=np) -> None:
    """Eq. 3 in place: ``tau <- max((1 - rho) * tau, tau_min)``.

    Element-wise, so it applies unchanged to a single ``(H, W)`` field or a
    batched ``(B, H, W)`` stack — the single source of the decay-then-clamp
    semantics shared by :class:`PheromoneField` and the batched engine.
    """
    field *= 1.0 - params.rho
    xp.maximum(field, params.tau_min, out=field)


def deposit_at(field: np.ndarray, index, amounts, params: ACOParams, backend=None) -> None:
    """Eq. 5 in place: scatter-add ``amounts`` at ``index``, clamp at tau_max.

    ``index`` is any fancy-index tuple into ``field`` (``(rows, cols)`` for
    a solo field, ``(lanes, rows, cols)`` for a batched stack). The scatter
    routes through :meth:`~repro.backend.ArrayBackend.scatter_add` because
    the unbuffered-add spelling differs per namespace (``np.add.at`` vs
    ``cupyx.scatter_add``).
    """
    backend = resolve_backend(backend)
    backend.scatter_add(field, index, amounts)
    backend.xp.minimum(field, params.tau_max, out=field)


class PheromoneField:
    """Two per-group pheromone matrices with evaporation and deposit."""

    def __init__(self, height: int, width: int, params: ACOParams, backend=None) -> None:
        self.height = int(height)
        self.width = int(width)
        self.params = params
        self.backend = resolve_backend(backend)
        xp = self.backend.xp
        self._fields: Dict[Group, np.ndarray] = {
            g: xp.full((height, width), params.tau0, dtype=np.float64)
            for g in (Group.TOP, Group.BOTTOM)
        }

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def field(self, group: Group) -> np.ndarray:
        """The ``(H, W)`` pheromone matrix of ``group`` (live view)."""
        return self._fields[Group(group)]

    def value(self, group: Group, row: int, col: int) -> float:
        """Scalar lookup used by the sequential engine."""
        return float(self._fields[Group(group)][row, col])

    # ------------------------------------------------------------------
    # Updates (eq. 3 / eq. 5)
    # ------------------------------------------------------------------
    def evaporate(self) -> None:
        """Apply ``tau <- (1 - rho) * tau`` to both fields, then clamp below."""
        for field in self._fields.values():
            evaporate_field(field, self.params, xp=self.backend.xp)

    def deposit(self, group: Group, rows, cols, amounts) -> None:
        """Add ``amounts`` on cells ``(rows, cols)`` of ``group``'s field.

        Destination cells of a movement stage are unique by construction
        (one winner per cell) but the unbuffered scatter-add keeps this
        correct for any caller that passes duplicates.
        """
        xp = self.backend.xp
        deposit_at(
            self._fields[Group(group)],
            (xp.asarray(rows), xp.asarray(cols)),
            amounts,
            self.params,
            backend=self.backend,
        )

    def deposit_scalar(self, group: Group, row: int, col: int, amount: float) -> None:
        """Single-cell deposit used by the sequential engine."""
        field = self._fields[Group(group)]
        field[row, col] = min(field[row, col] + amount, self.params.tau_max)

    # ------------------------------------------------------------------
    # Copies / comparison
    # ------------------------------------------------------------------
    def copy(self) -> "PheromoneField":
        """Deep copy of both fields."""
        other = PheromoneField(self.height, self.width, self.params, self.backend)
        for g in self._fields:
            other._fields[g][...] = self._fields[g]
        return other

    def equals(self, other: "PheromoneField") -> bool:
        """Exact equality of both fields."""
        xp = self.backend.xp
        return all(
            bool(xp.array_equal(self._fields[g], other._fields[g]))
            for g in self._fields
        )

    def totals(self) -> Dict[Group, float]:
        """Total pheromone mass per group (diagnostics/tests)."""
        return {g: float(f.sum()) for g, f in self._fields.items()}
