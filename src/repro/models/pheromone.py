"""Pheromone fields for the modified ACO (paper eq. 3-5).

The paper keeps *two* pheromone matrices, one per group, each the size of
``mat`` — an agent reads and reinforces only its own group's field, which is
what lets same-direction flows organise into lanes. Evaporation (eq. 3) is
applied uniformly every step; deposition (eq. 5) adds ``q / L_k`` on the
cell an agent moves into, where ``L_k`` is that agent's tour length so far.

Both matrices live in one ``(2, H, W)`` device stack (slot 0 = TOP,
slot 1 = BOTTOM) so whole-field maintenance — evaporation, clamping — is a
single array launch over both groups, and the fused engines can gather
``stack[gslot, rows, cols]`` for a mixed-group agent batch in one op.
``field(group)`` hands out live views into the stack, so per-group access
is unchanged and free.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..backend import resolve_backend
from ..types import Group
from .params import ACOParams

__all__ = ["PheromoneField", "evaporate_field", "deposit_at", "group_slot"]


def group_slot(group: Group) -> int:
    """Stack slot of ``group``: TOP -> 0, BOTTOM -> 1.

    The single source of the group-axis ordering shared by
    :class:`PheromoneField`, the batched pheromone stack and every fused
    engine's ``gslot`` vectors.
    """
    return 0 if Group(group) is Group.TOP else 1


def evaporate_field(field: np.ndarray, params: ACOParams, xp=np) -> None:
    """Eq. 3 in place: ``tau <- max((1 - rho) * tau, tau_min)``.

    Element-wise, so it applies unchanged to a single ``(H, W)`` field, the
    ``(2, H, W)`` group stack, or a batched ``(2, B, H, W)`` stack — the
    single source of the decay-then-clamp semantics shared by
    :class:`PheromoneField` and the batched engine.
    """
    field *= 1.0 - params.rho
    xp.maximum(field, params.tau_min, out=field)


def deposit_at(field: np.ndarray, index, amounts, params: ACOParams, backend=None) -> None:
    """Eq. 5 in place: scatter-add ``amounts`` at ``index``, clamp at tau_max.

    ``index`` is any fancy-index tuple into ``field`` (``(rows, cols)`` for
    a solo field, ``(gslot, rows, cols)`` for the group stack). The scatter
    routes through :meth:`~repro.backend.ArrayBackend.scatter_add` because
    the unbuffered-add spelling differs per namespace (``np.add.at`` vs
    ``cupyx.scatter_add``). The clamp runs once over the whole array after
    the scatter; ``min(x, tau_max)`` is idempotent and cells only exceed
    ``tau_max`` through deposits, so clamp-after-all equals the seed
    engines' clamp-after-each bit for bit.
    """
    backend = resolve_backend(backend)
    backend.scatter_add(field, index, amounts)
    backend.xp.minimum(field, params.tau_max, out=field)


class PheromoneField:
    """Two per-group pheromone matrices in one ``(2, H, W)`` stack."""

    def __init__(self, height: int, width: int, params: ACOParams, backend=None) -> None:
        self.height = int(height)
        self.width = int(width)
        self.params = params
        self.backend = resolve_backend(backend)
        xp = self.backend.xp
        #: ``(2, H, W)`` device stack; slot order per :func:`group_slot`.
        self.stack: np.ndarray = xp.full(
            (2, height, width), params.tau0, dtype=np.float64
        )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def field(self, group: Group) -> np.ndarray:
        """The ``(H, W)`` pheromone matrix of ``group`` (live stack view)."""
        return self.stack[group_slot(group)]

    def value(self, group: Group, row: int, col: int) -> float:
        """Scalar lookup used by the sequential engine."""
        return float(self.stack[group_slot(group), row, col])

    # ------------------------------------------------------------------
    # Updates (eq. 3 / eq. 5)
    # ------------------------------------------------------------------
    def evaporate(self) -> None:
        """Apply ``tau <- (1 - rho) * tau`` to both fields in one launch."""
        evaporate_field(self.stack, self.params, xp=self.backend.xp)

    def deposit(self, group: Group, rows, cols, amounts) -> None:
        """Add ``amounts`` on cells ``(rows, cols)`` of ``group``'s field.

        Destination cells of a movement stage are unique by construction
        (one winner per cell) but the unbuffered scatter-add keeps this
        correct for any caller that passes duplicates.
        """
        xp = self.backend.xp
        deposit_at(
            self.field(group),
            (xp.asarray(rows), xp.asarray(cols)),
            amounts,
            self.params,
            backend=self.backend,
        )

    def deposit_stacked(self, gslots, rows, cols, amounts) -> None:
        """Mixed-group deposit: one scatter into the full stack.

        ``gslots`` selects each deposit's group per :func:`group_slot`;
        the fused move stages use this to retire both per-group deposit
        launches (and their host-synced ``any`` guards) in one call.
        """
        deposit_at(
            self.stack, (gslots, rows, cols), amounts, self.params,
            backend=self.backend,
        )

    def deposit_scalar(self, group: Group, row: int, col: int, amount: float) -> None:
        """Single-cell deposit used by the sequential engine."""
        field = self.field(group)
        field[row, col] = min(field[row, col] + amount, self.params.tau_max)

    # ------------------------------------------------------------------
    # Copies / comparison
    # ------------------------------------------------------------------
    def copy(self) -> "PheromoneField":
        """Deep copy of both fields."""
        other = PheromoneField(self.height, self.width, self.params, self.backend)
        other.stack[...] = self.stack
        return other

    def equals(self, other: "PheromoneField") -> bool:
        """Exact equality of both fields."""
        xp = self.backend.xp
        return bool(xp.array_equal(self.stack, other.stack))

    def totals(self) -> Dict[Group, float]:
        """Total pheromone mass per group (diagnostics/tests)."""
        return {
            g: float(self.stack[group_slot(g)].sum())
            for g in (Group.TOP, Group.BOTTOM)
        }
