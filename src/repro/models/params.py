"""Parameter bundles for the movement models.

Kept dependency-free so that :mod:`repro.config` can import them without
pulling in the model implementations (which need the grid substrate).

The built-in bundles register into
:data:`repro.components.models.MODEL_PARAMS` under their ``model_name``;
:data:`MODEL_NAMES` is a live alias of that registry's backing dict, so
third-party bundles registered via
:func:`repro.components.register_model_params` appear everywhere the
legacy table is consulted.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from ..components.models import MODEL_PARAMS, register_model_params
from ..errors import ConfigurationError

__all__ = [
    "ModelParams",
    "LEMParams",
    "ACOParams",
    "RandomParams",
    "GreedyParams",
    "params_from_name",
    "params_from_dict",
    "params_to_dict",
    "MODEL_NAMES",
]


@dataclass(frozen=True)
class ModelParams:
    """Base class for model parameter bundles.

    Subclasses set :attr:`model_name`, the registry key used by engines and
    the CLI to look up the model implementation.
    """

    model_name = "base"

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on invalid values."""

    def replace(self, **changes) -> "ModelParams":
        """Return a copy with ``changes`` applied (dataclass replace)."""
        new = dataclasses.replace(self, **changes)
        new.validate()
        return new


@register_model_params
@dataclass(frozen=True)
class LEMParams(ModelParams):
    """Least Effort Model parameters (paper eq. 1 plus the selection draw).

    The paper selects a cell using "a random number from a normal
    distribution with negative numbers converted to zeroes and the numbers
    more than the highest C_i rounded off to the highest C_i". ``mu`` and
    ``sigma`` parameterise that normal; the unqualified "normal
    distribution" reads as the standard normal, so the defaults are
    ``mu = 0`` and ``sigma = 1``.

    ``rule`` resolves the remaining ambiguity of how the clipped draw ``x``
    indexes the ascending-ranked scores:

    * ``"floor"`` (default) — take the cell with the *largest* ``C_i <= x``;
      if every score exceeds ``x`` (in particular whenever the draw clips
      to zero) the agent stays put. Waiting when blocked is the
      least-effort behaviour, and it is what makes medium-density LEM
      crowds jam the way the paper's Figure 6a shows.
    * ``"ceil"`` — take the cell with the *smallest* ``C_i >= x``; the
      agent always moves when an empty neighbour exists. Kept as an
      ablation (see ``benchmarks/test_bench_ablations.py``).

    Under both rules, draws at or above the top score select the cell
    nearest the target, so "the agent probabilistically chooses the cell
    nearest the target most of the time" among the cells it does choose.
    """

    model_name = "lem"

    #: Mean of the selection normal (paper: standard normal).
    mu: float = 0.0
    #: Standard deviation of the selection normal.
    sigma: float = 1.0
    #: Rank-selection rule: "floor" (may stay put) or "ceil" (always moves).
    rule: str = "floor"
    #: Heuristic look-ahead in cells (Section VII extension; 1 = paper model).
    scan_range: int = 1

    def validate(self) -> None:
        if not math.isfinite(self.mu):
            raise ConfigurationError(f"LEM mu must be finite, got {self.mu}")
        if not (self.sigma > 0 and math.isfinite(self.sigma)):
            raise ConfigurationError(
                f"LEM sigma must be positive and finite, got {self.sigma}"
            )
        if self.rule not in ("floor", "ceil"):
            raise ConfigurationError(
                f"LEM rule must be 'floor' or 'ceil', got {self.rule!r}"
            )
        if not (1 <= int(self.scan_range) <= 32):
            raise ConfigurationError(
                f"LEM scan_range must be in [1, 32], got {self.scan_range}"
            )


@register_model_params
@dataclass(frozen=True)
class ACOParams(ModelParams):
    """Modified Ant System parameters (paper eq. 2-5).

    ``alpha`` and ``beta`` weight the pheromone trail versus the distance
    heuristic in the random proportional rule; ``rho`` is the evaporation
    rate of eq. 3; ``deposit_q`` scales the ``Δτ = q / L_k`` deposit of
    eq. 5 (the paper uses q = 1). ``tau0`` seeds the pheromone matrices and
    ``tau_min``/``tau_max`` clamp the field for numerical hygiene (standard
    MMAS-style guard; the paper relies on evaporation alone).
    """

    model_name = "aco"

    #: Relative weight of the pheromone trail (paper α).
    alpha: float = 1.0
    #: Relative weight of the distance heuristic (paper β).
    beta: float = 2.0
    #: Pheromone evaporation rate ρ of eq. 3, in (0, 1].
    rho: float = 0.02
    #: Deposit scale q of eq. 5 (Δτ = q / L_k).
    deposit_q: float = 1.0
    #: Initial pheromone on every cell.
    tau0: float = 0.1
    #: Lower clamp of the pheromone field (keeps eq. 2 well defined).
    tau_min: float = 1e-4
    #: Upper clamp of the pheromone field.
    tau_max: float = 1e3
    #: Heuristic look-ahead in cells (Section VII extension; 1 = paper model).
    scan_range: int = 1

    def validate(self) -> None:
        if not math.isfinite(self.alpha) or self.alpha < 0:
            raise ConfigurationError(f"ACO alpha must be >= 0, got {self.alpha}")
        if not math.isfinite(self.beta) or self.beta < 0:
            raise ConfigurationError(f"ACO beta must be >= 0, got {self.beta}")
        if not (0.0 < self.rho <= 1.0):
            raise ConfigurationError(f"ACO rho must be in (0, 1], got {self.rho}")
        if not (self.deposit_q > 0 and math.isfinite(self.deposit_q)):
            raise ConfigurationError(
                f"ACO deposit_q must be positive, got {self.deposit_q}"
            )
        if not (self.tau0 > 0 and math.isfinite(self.tau0)):
            raise ConfigurationError(f"ACO tau0 must be positive, got {self.tau0}")
        if not (0 < self.tau_min <= self.tau0 <= self.tau_max):
            raise ConfigurationError(
                "ACO pheromone clamps must satisfy 0 < tau_min <= tau0 <= tau_max, "
                f"got tau_min={self.tau_min}, tau0={self.tau0}, tau_max={self.tau_max}"
            )
        if not (1 <= int(self.scan_range) <= 32):
            raise ConfigurationError(
                f"ACO scan_range must be in [1, 32], got {self.scan_range}"
            )


@register_model_params
@dataclass(frozen=True)
class RandomParams(ModelParams):
    """Null baseline: uniform choice among empty neighbour cells."""

    model_name = "random"


@register_model_params
@dataclass(frozen=True)
class GreedyParams(ModelParams):
    """Deterministic ablation of the LEM: always the nearest empty cell.

    Ties between equally near cells are broken by the same random bit as the
    LEM so the baseline stays direction-unbiased.
    """

    model_name = "greedy"


#: Known model names → parameter-bundle classes. A live view of the
#: component registry's backing dict: third-party registrations appear
#: here automatically.
MODEL_NAMES = MODEL_PARAMS.entries


def params_from_name(name: str) -> ModelParams:
    """Return default parameters for a registered model name.

    >>> params_from_name("lem").model_name
    'lem'
    """
    cls = MODEL_PARAMS.get(name)
    params = cls()
    params.validate()
    return params


def params_to_dict(params: ModelParams) -> dict:
    """JSON-ready dict for a parameter bundle (inverse of
    :func:`params_from_dict`).

    ``model_name`` is a class attribute, not a dataclass field, so it is
    injected explicitly — it is the registry key the receiving side uses
    to rebuild the bundle class.
    """
    out = dataclasses.asdict(params)
    out["model_name"] = params.model_name
    return out


def params_from_dict(spec: dict) -> ModelParams:
    """Rebuild a parameter bundle from its :func:`params_to_dict` form.

    Raises :class:`~repro.errors.ConfigurationError` on non-dict specs,
    unknown model names (listing the registered ones) and field
    mismatches.
    """
    if not isinstance(spec, dict):
        raise ConfigurationError(
            f"params must be an object, got {type(spec).__name__}"
        )
    spec = dict(spec)
    name = spec.pop("model_name", "lem")
    cls = MODEL_PARAMS.get(name)
    try:
        params = cls(**spec)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad parameters for model {name!r}: {exc}"
        ) from None
    params.validate()
    return params
