"""Movement models: LEM (eq. 1), modified ACO (eq. 2-5) and baselines."""

from .aco import ACOModel, aco_numerators
from .base import MovementModel, build_model, tiebreak_slot_keys
from .lem import LEMModel, lem_scores
from .mathops import fast_pow
from .params import (
    ACOParams,
    GreedyParams,
    LEMParams,
    MODEL_NAMES,
    ModelParams,
    RandomParams,
    params_from_dict,
    params_from_name,
    params_to_dict,
)
from .pheromone import PheromoneField
from .policies import GreedyModel, RandomModel

__all__ = [
    "MovementModel",
    "build_model",
    "tiebreak_slot_keys",
    "LEMModel",
    "lem_scores",
    "ACOModel",
    "aco_numerators",
    "RandomModel",
    "GreedyModel",
    "PheromoneField",
    "fast_pow",
    "ModelParams",
    "LEMParams",
    "ACOParams",
    "RandomParams",
    "GreedyParams",
    "params_from_name",
    "params_from_dict",
    "params_to_dict",
    "MODEL_NAMES",
]
