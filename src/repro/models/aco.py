"""Modified Ant Colony Optimization / Ant System (paper eq. 2-5).

Tour construction uses the random proportional rule restricted to the empty
neighbour cells:

    P_ij = tau_ij^alpha * eta_ij^beta / sum_l tau_il^alpha * eta_il^beta

with the TSP distance heuristic replaced by the distance of the neighbour
cell from the target end row: ``eta = 1 / D_i``. The scan matrix stores the
numerator per slot; the tour-construction kernel performs the row reduction
(the denominator) and samples the slot. Pheromone evaporation/deposition
live in :class:`repro.models.pheromone.PheromoneField` and are driven by the
engines' movement stage.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..components.models import register_model
from ..rng import PhiloxKeyedRNG, Stream, categorical_from_cumsum
from .base import MovementModel
from .mathops import fast_pow, fast_pow_scalar
from .params import ACOParams

__all__ = ["ACOModel", "aco_numerators"]


def aco_numerators(
    dist: np.ndarray,
    candidates: np.ndarray,
    tau: np.ndarray,
    alpha: float,
    beta: float,
    xp=np,
) -> np.ndarray:
    """Eq. 2 numerators ``tau^alpha * (1/D)^beta`` for a batch: ``(n, 8)``.

    Non-candidate slots are exactly 0. Out-of-bounds slots carry
    ``D = inf`` so their heuristic vanishes even before masking.
    """
    with np.errstate(divide="ignore"):
        eta = 1.0 / xp.asarray(dist, dtype=np.float64)
    value = fast_pow(xp.asarray(tau, dtype=np.float64), alpha, xp=xp) * fast_pow(
        eta, beta, xp=xp
    )
    return xp.where(candidates, value, 0.0)


@register_model("aco")
class ACOModel(MovementModel):
    """Modified Ant System decision kernel for pedestrian movement."""

    name = "aco"
    uses_pheromone = True

    def __init__(self, params: ACOParams, backend=None) -> None:
        super().__init__(params, backend)
        self.alpha = float(params.alpha)
        self.beta = float(params.beta)

    def scan_values(
        self,
        dist: np.ndarray,
        candidates: np.ndarray,
        tau: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The ACO scan matrix stores the eq. 2 numerator per slot."""
        if tau is None:
            raise ValueError("ACO scan requires the pheromone gather (tau)")
        return aco_numerators(dist, candidates, tau, self.alpha, self.beta, xp=self.xp)

    def select(
        self,
        scan: np.ndarray,
        rng: PhiloxKeyedRNG,
        step: int,
        lanes: np.ndarray,
    ) -> np.ndarray:
        """Random-proportional-rule sampling over the scanned numerators.

        The cumulative sum along the slot axis is the kernel's reduction
        (the eq. 2 denominator is its last element); the keyed uniform picks
        the slot by inverse CDF.
        """
        cumsum = self.xp.cumsum(scan, axis=1)
        u = rng.uniform(Stream.ACO_SELECT, step, lanes)
        return categorical_from_cumsum(cumsum, u, xp=self.xp)

    # ------------------------------------------------------------------
    # Scalar path (sequential engine)
    # ------------------------------------------------------------------
    def scalar_prepare(self, rng: PhiloxKeyedRNG, step: int, n_agents: int) -> dict:
        lanes = np.arange(n_agents + 1, dtype=np.uint64)
        return {"u": rng.uniform(Stream.ACO_SELECT, step, lanes).tolist()}

    def scan_value_scalar(self, dist: float, tau: float) -> float:
        eta = 1.0 / dist
        return fast_pow_scalar(tau, self.alpha) * fast_pow_scalar(eta, self.beta)

    def select_scalar(self, scan_row, agent: int, variates: dict) -> int:
        # Same left-to-right accumulation as np.cumsum along the slot axis.
        total = 0.0
        for s in range(8):
            total = total + scan_row[s]
        if total <= 0.0:
            return -1
        threshold = variates["u"][agent] * total
        acc = 0.0
        for s in range(8):
            acc = acc + scan_row[s]
            # acc > 0 mirrors the vectorized cumsum guard: when the
            # threshold underflows to 0.0, skip leading zero-weight slots.
            if acc >= threshold and acc > 0.0:
                return s
        return 7  # unreachable: the final acc equals total >= threshold
