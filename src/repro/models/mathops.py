"""Deterministic numeric helpers for the decision kernels.

The engine-equivalence invariant (sequential == vectorized == tiled, bit for
bit) requires every floating-point operation on the decision path to produce
identical results in scalar and SIMD execution. IEEE-754 guarantees that for
+, -, *, /, sqrt and comparisons — but *not* for ``pow`` and other libm
functions, whose vectorized implementations may differ by ULPs from the
scalar ones. ``fast_pow`` therefore evaluates integer exponents (the common
case: the paper's α and β) by binary exponentiation using only
multiplications, falling back to ``np.power`` for genuinely fractional
exponents (documented as a potential — never observed — equivalence risk).
"""

from __future__ import annotations

import numpy as np

__all__ = ["fast_pow", "fast_pow_scalar", "MAX_INT_EXPONENT"]

#: Largest |exponent| handled by the exact integer path.
MAX_INT_EXPONENT = 64


def fast_pow(base: np.ndarray, exponent: float, xp=np) -> np.ndarray:
    """``base ** exponent`` with a bit-deterministic integer-exponent path.

    For integer ``exponent`` with ``|exponent| <= MAX_INT_EXPONENT`` the
    result is computed by binary exponentiation (multiplications only, fixed
    association order) — which also makes it exactly portable across array
    backends, unlike libm ``pow``. Other exponents use ``xp.power``.

    >>> float(fast_pow(np.float64(3.0), 2.0))
    9.0
    """
    base = xp.asarray(base, dtype=np.float64)
    p = float(exponent)
    if p == 0.0:
        return xp.ones_like(base)
    if p.is_integer() and abs(p) <= MAX_INT_EXPONENT:
        n = int(abs(p))
        result = None
        square = base
        while n:
            if n & 1:
                result = square if result is None else result * square
            n >>= 1
            if n:
                square = square * square
        if p < 0:
            return 1.0 / result
        return result
    return xp.power(base, p)


def fast_pow_scalar(base: float, exponent: float) -> float:
    """Scalar transcription of :func:`fast_pow` for the sequential engine.

    Python ``float`` arithmetic is IEEE-754 double precision, so replaying
    the *same sequence* of multiplications yields bit-identical results to
    the vectorized path — the property the engine-equivalence tests rely on.
    """
    p = float(exponent)
    if p == 0.0:
        return 1.0
    if p.is_integer() and abs(p) <= MAX_INT_EXPONENT:
        n = int(abs(p))
        result = None
        square = float(base)
        while n:
            if n & 1:
                result = square if result is None else result * square
            n >>= 1
            if n:
                square = square * square
        if p < 0:
            return 1.0 / result
        return result
    return float(np.power(np.float64(base), np.float64(p)))
