"""Least Effort Model (paper eq. 1 and Section III).

For an agent whose forward cell is blocked, every empty neighbour ``i``
receives the score

    C_i = (1 - n_i) * (D_min / D_i)

with ``n_i = 1`` for occupied cells (so their score is 0) and ``D_min`` the
smallest distance among the empty neighbours — which normalises the best
empty cell to C = 1 exactly. The scores are ranked ascending; a draw
``x ~ N(mu, sigma)`` is clipped to ``[0, max C_i]`` ("negative numbers
converted to zeroes, numbers more than the highest C_i rounded off to the
highest C_i") and indexes the ranking:

* ``rule="floor"`` (default): the cell with the largest ``C_i <= x``; when
  every score exceeds the draw — always the case when the draw clips to
  zero — the agent stays put. A blocked pedestrian mostly *waits*, which is
  the least-effort behaviour and the source of the medium-density jamming
  in the paper's Figure 6a.
* ``rule="ceil"``: the cell with the smallest ``C_i >= x``; the agent
  always moves when an empty neighbour exists (ablation variant).

Draws at the top of the range select the cell nearest the target under
both rules.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..components.models import register_model
from ..rng import PhiloxKeyedRNG, Stream, clip_lem_draw
from .base import MovementModel, tiebreak_slot_keys
from .params import LEMParams

__all__ = ["LEMModel", "lem_scores"]

#: Ordering key assigned to slots that are out of contention.
_EXCLUDED_KEY = 1 << 30


def lem_scores(dist: np.ndarray, candidates: np.ndarray, xp=np) -> np.ndarray:
    """Eq. 1 scores ``C_i`` for a batch: ``(n, 8) -> (n, 8)``.

    Non-candidate slots score 0; rows with no candidate are all-zero.
    The best candidate of each row scores exactly 1.0 (D_min / D_min).
    """
    d = xp.where(candidates, dist, np.inf)
    dmin = d.min(axis=1)
    has_candidate = xp.isfinite(dmin)
    safe_dmin = xp.where(has_candidate, dmin, 1.0)
    scores = xp.where(candidates, safe_dmin[:, None] / d, 0.0)
    return scores


@register_model("lem")
class LEMModel(MovementModel):
    """Least Effort Model decision kernel."""

    name = "lem"
    uses_pheromone = False

    def __init__(self, params: LEMParams, backend=None) -> None:
        super().__init__(params, backend)
        self.mu = float(params.mu)
        self.sigma = float(params.sigma)
        self.rule = params.rule

    def scan_values(
        self,
        dist: np.ndarray,
        candidates: np.ndarray,
        tau: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The LEM scan matrix stores the candidate distances (paper IV.b)."""
        return self.xp.where(candidates, dist, 0.0)

    def select(
        self,
        scan: np.ndarray,
        rng: PhiloxKeyedRNG,
        step: int,
        lanes: np.ndarray,
    ) -> np.ndarray:
        """Clipped-normal rank selection over the scanned distances."""
        xp = self.xp
        candidates = scan > 0.0
        scores = lem_scores(scan, candidates, xp=xp)
        c_max = scores.max(axis=1)  # 1.0 where any candidate, else 0.0

        z = rng.normal12(Stream.LEM_SELECT, step, lanes)
        x = clip_lem_draw(z, self.mu, self.sigma, c_max, xp=xp)

        if self.rule == "floor":
            # Largest score not exceeding the draw; stay when none qualify.
            eligible = candidates & (scores <= x[:, None])
            contended = xp.where(eligible, scores, -np.inf)
            c_sel = contended.max(axis=1)
            has_choice = xp.isfinite(c_sel) & candidates.any(axis=1)
        else:
            # Smallest score at or above the draw; the best cell (score
            # exactly c_max) always qualifies because x <= c_max.
            eligible = candidates & (scores >= x[:, None])
            contended = xp.where(eligible, scores, np.inf)
            c_sel = contended.min(axis=1)
            has_choice = candidates.any(axis=1)

        # Among cells tied at the selected score, order by the per-agent
        # randomised slot key to avoid a left/right bias.
        tied = eligible & (contended == c_sel[:, None])
        keys = xp.where(
            tied, tiebreak_slot_keys(rng, step, lanes, xp=xp), _EXCLUDED_KEY
        )
        slot = keys.argmin(axis=1).astype(np.int64)
        return xp.where(has_choice, slot, -1)

    # ------------------------------------------------------------------
    # Scalar path (sequential engine)
    # ------------------------------------------------------------------
    def scalar_prepare(self, rng: PhiloxKeyedRNG, step: int, n_agents: int) -> dict:
        lanes = np.arange(n_agents + 1, dtype=np.uint64)
        z = rng.normal12(Stream.LEM_SELECT, step, lanes)
        bits = rng.words(Stream.TIEBREAK, step, lanes)[0] & np.uint32(1)
        return {"z": z.tolist(), "tie": bits.astype(np.int64).tolist()}

    def scan_value_scalar(self, dist: float, tau: float) -> float:
        return dist

    def select_scalar(self, scan_row, agent: int, variates: dict) -> int:
        # Candidate distances are positive; find D_min.
        dmin = float("inf")
        for s in range(8):
            v = scan_row[s]
            if 0.0 < v < dmin:
                dmin = v
        if dmin == float("inf"):
            return -1
        # Clipped draw; c_max is exactly 1.0 (D_min / D_min).
        x = self.mu + self.sigma * variates["z"][agent]
        if x < 0.0:
            x = 0.0
        elif x > 1.0:
            x = 1.0
        b = variates["tie"][agent]
        best = -1
        best_key = _EXCLUDED_KEY
        if self.rule == "floor":
            c_sel = -float("inf")
            for s in range(8):
                v = scan_row[s]
                if v <= 0.0:
                    continue
                c = dmin / v
                if c > x:
                    continue
                if c > c_sel:
                    c_sel = c
                    best = s
                    best_key = (s + 1) ^ b
                elif c == c_sel:
                    key = (s + 1) ^ b
                    if key < best_key:
                        best = s
                        best_key = key
        else:
            c_sel = float("inf")
            for s in range(8):
                v = scan_row[s]
                if v <= 0.0:
                    continue
                c = dmin / v
                if c < x:
                    continue
                if c < c_sel:
                    c_sel = c
                    best = s
                    best_key = (s + 1) ^ b
                elif c == c_sel:
                    key = (s + 1) ^ b
                    if key < best_key:
                        best = s
                        best_key = key
        return best
