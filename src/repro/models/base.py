"""Movement-model interface shared by all engines.

A movement model answers two questions, mirroring the paper's kernel split:

* :meth:`MovementModel.scan_values` — the *initial calculation phase*: what
  goes into each agent's row of the scan matrix (eq. 1 inputs for the LEM,
  the eq. 2 numerator for the ACO);
* :meth:`MovementModel.select` — the *tour construction phase*: given the
  scan row and keyed randomness, which neighbour slot the agent targets.

Both methods are vectorized over agents of a single group. The sequential
engine calls them with single-lane arrays; because the keyed RNG and every
numeric operation are order-independent, the results are bit-identical to
the vectorized engine's batched calls (see ``tests/test_engine_equivalence``).

Slot indices here are 0-based (0 = forward); ``-1`` means "no move".
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..backend import resolve_backend
from ..rng import PhiloxKeyedRNG, Stream
from .params import ModelParams

__all__ = ["MovementModel", "build_model", "tiebreak_slot_keys"]


class MovementModel(abc.ABC):
    """Abstract movement decision model for one agent group.

    ``backend`` selects the array namespace the vector kernels run on
    (host NumPy by default); the engines pass their resolved backend so
    scan/select math stays on-device end to end.
    """

    #: Registry name, matches ``ModelParams.model_name``.
    name: str = "base"
    #: Whether the engine must maintain pheromone fields for this model.
    uses_pheromone: bool = False

    def __init__(self, params: ModelParams, backend=None) -> None:
        params.validate()
        self.params = params
        self.backend = resolve_backend(backend)
        self.xp = self.backend.xp

    @abc.abstractmethod
    def scan_values(
        self,
        dist: np.ndarray,
        candidates: np.ndarray,
        tau: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Scan-matrix content for a batch of agents.

        Parameters
        ----------
        dist:
            ``(n, 8)`` distances of each slot from the target
            (:class:`repro.grid.DistanceTable` rows).
        candidates:
            ``(n, 8)`` bool — slot is in bounds *and* empty.
        tau:
            ``(n, 8)`` pheromone at the slot cells (ACO only).

        Returns
        -------
        ``(n, 8)`` float64, zero at non-candidate slots.
        """

    @abc.abstractmethod
    def select(
        self,
        scan: np.ndarray,
        rng: PhiloxKeyedRNG,
        step: int,
        lanes: np.ndarray,
    ) -> np.ndarray:
        """Choose a 0-based slot per agent; ``-1`` where no candidate exists.

        ``lanes`` are the agents' 1-based property-matrix indices, used as
        RNG lanes so draws are independent of batch composition.
        """

    # ------------------------------------------------------------------
    # Scalar API for the sequential engine
    # ------------------------------------------------------------------
    # The sequential engine replays the identical decision arithmetic with
    # plain Python floats (IEEE-754 double, bit-compatible with NumPy's
    # float64 element-wise operations). Random variates are pre-drawn once
    # per step with the same keys the vectorized engine uses, so the two
    # platforms consume identical randomness.

    @abc.abstractmethod
    def scalar_prepare(self, rng: PhiloxKeyedRNG, step: int, n_agents: int) -> dict:
        """Pre-draw this step's per-agent variates for the scalar engine.

        Returns a dict of Python lists indexed by the 1-based agent index
        (entry 0 is the sentinel lane and unused).
        """

    @abc.abstractmethod
    def scan_value_scalar(self, dist: float, tau: float) -> float:
        """Scan-matrix entry for one *candidate* slot (scalar path)."""

    @abc.abstractmethod
    def select_scalar(self, scan_row, agent: int, variates: dict) -> int:
        """Scalar counterpart of :meth:`select` for one agent.

        ``scan_row`` is the agent's 8-entry scan row as a Python list;
        returns the 0-based slot or -1.
        """


def tiebreak_slot_keys(
    rng: PhiloxKeyedRNG, step: int, lanes: np.ndarray, n_slots: int = 8, xp=np
) -> np.ndarray:
    """Per-agent slot ordering keys that break score ties without bias.

    Slots tied on score are ordered by ``slot_number XOR b`` (1-based slot
    numbers) with a random bit ``b`` per agent and step. The only slot sets
    that can tie on distance are the left/right mirror pairs — 1-based
    (2, 3), (4, 5) and (7, 8) — each of which differs exactly in the lowest
    bit of the slot *number*, so flipping ``b`` uniformly de-biases the
    left/right preference while staying deterministic for a given seed.
    """
    bits = rng.words(Stream.TIEBREAK, step, lanes, scratch=True)[0] & np.uint32(1)
    slots = xp.arange(1, n_slots + 1, dtype=np.int64)
    return slots[None, :] ^ bits.astype(np.int64)[:, None]


def build_model(params: ModelParams, backend=None) -> MovementModel:
    """Instantiate the movement model registered for a parameter bundle.

    The bundle's ``model_name`` is the registry key
    (:data:`repro.components.models.MODEL_CLASSES`); unknown names raise
    :class:`~repro.errors.ConfigurationError` listing the registered
    models, so a bad config exits the CLI with the uniform code 2
    instead of a traceback. ``backend`` (name or
    :class:`~repro.backend.ArrayBackend`) selects the array namespace
    the model's vector kernels execute on.
    """
    # Imported here to avoid import cycles (the implementations use the
    # helpers defined above); importing them runs their @register_model
    # decorators, so the built-ins are registered before lookup.
    from . import aco, lem, policies  # noqa: F401
    from ..components.models import resolve_model_class

    cls = resolve_model_class(getattr(params, "model_name", ""))
    return cls(params, backend=backend)
