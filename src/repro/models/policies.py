"""Baseline movement policies.

These are not in the paper's evaluation but serve as ablation anchors:

* :class:`RandomModel` — uniform choice among empty neighbours; the
  zero-intelligence floor any directed model must beat;
* :class:`GreedyModel` — always the nearest empty cell; the LEM with its
  randomness removed (sigma -> 0 limit), exposing how much the paper's
  probabilistic selection matters.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..components.models import register_model
from ..rng import PhiloxKeyedRNG, Stream, categorical
from .base import MovementModel, tiebreak_slot_keys
from .lem import lem_scores, _EXCLUDED_KEY
from .params import GreedyParams, RandomParams

__all__ = ["RandomModel", "GreedyModel"]


@register_model("random")
class RandomModel(MovementModel):
    """Uniform random choice among the empty neighbour cells."""

    name = "random"
    uses_pheromone = False

    def __init__(self, params: RandomParams, backend=None) -> None:
        super().__init__(params, backend)

    def scan_values(
        self,
        dist: np.ndarray,
        candidates: np.ndarray,
        tau: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Indicator weights: 1 for each empty neighbour."""
        return candidates.astype(np.float64)

    def select(
        self,
        scan: np.ndarray,
        rng: PhiloxKeyedRNG,
        step: int,
        lanes: np.ndarray,
    ) -> np.ndarray:
        u = rng.uniform(Stream.RANDOM_POLICY, step, lanes)
        return categorical(scan, u, xp=self.xp)

    # Scalar path -------------------------------------------------------
    def scalar_prepare(self, rng: PhiloxKeyedRNG, step: int, n_agents: int) -> dict:
        lanes = np.arange(n_agents + 1, dtype=np.uint64)
        return {"u": rng.uniform(Stream.RANDOM_POLICY, step, lanes).tolist()}

    def scan_value_scalar(self, dist: float, tau: float) -> float:
        return 1.0

    def select_scalar(self, scan_row, agent: int, variates: dict) -> int:
        total = 0.0
        for s in range(8):
            total = total + scan_row[s]
        if total <= 0.0:
            return -1
        threshold = variates["u"][agent] * total
        acc = 0.0
        for s in range(8):
            acc = acc + scan_row[s]
            # acc > 0 mirrors the vectorized cumsum guard: when the
            # threshold underflows to 0.0, skip leading zero-weight slots.
            if acc >= threshold and acc > 0.0:
                return s
        return 7  # unreachable: final acc equals total >= threshold


@register_model("greedy")
class GreedyModel(MovementModel):
    """Deterministic nearest-cell choice (LEM with the randomness removed)."""

    name = "greedy"
    uses_pheromone = False

    def __init__(self, params: GreedyParams, backend=None) -> None:
        super().__init__(params, backend)

    def scan_values(
        self,
        dist: np.ndarray,
        candidates: np.ndarray,
        tau: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Same scan content as the LEM: candidate distances."""
        return self.xp.where(candidates, dist, 0.0)

    def select(
        self,
        scan: np.ndarray,
        rng: PhiloxKeyedRNG,
        step: int,
        lanes: np.ndarray,
    ) -> np.ndarray:
        xp = self.xp
        candidates = scan > 0.0
        scores = lem_scores(scan, candidates, xp=xp)
        c_max = scores.max(axis=1)
        best = candidates & (scores == c_max[:, None])
        keys = xp.where(
            best, tiebreak_slot_keys(rng, step, lanes, xp=xp), _EXCLUDED_KEY
        )
        slot = keys.argmin(axis=1).astype(np.int64)
        has_candidate = candidates.any(axis=1)
        return xp.where(has_candidate, slot, -1)

    # Scalar path -------------------------------------------------------
    def scalar_prepare(self, rng: PhiloxKeyedRNG, step: int, n_agents: int) -> dict:
        lanes = np.arange(n_agents + 1, dtype=np.uint64)
        bits = rng.words(Stream.TIEBREAK, step, lanes)[0] & np.uint32(1)
        return {"tie": bits.astype(np.int64).tolist()}

    def scan_value_scalar(self, dist: float, tau: float) -> float:
        return dist

    def select_scalar(self, scan_row, agent: int, variates: dict) -> int:
        dmin = float("inf")
        for s in range(8):
            v = scan_row[s]
            if 0.0 < v < dmin:
                dmin = v
        if dmin == float("inf"):
            return -1
        b = variates["tie"][agent]
        best = -1
        best_key = _EXCLUDED_KEY
        for s in range(8):
            if scan_row[s] == dmin:
                key = (s + 1) ^ b
                if key < best_key:
                    best = s
                    best_key = key
        return best
