"""Figure 5 drivers: execution time and speedup.

Two modes:

* :func:`modelled_fig5` — the paper's exact configurations (480x480,
  25,000 steps, 2,560..102,400 agents) priced through the calibrated Fermi
  and i7 cost models. This regenerates the absolute seconds of Figures
  5a/5b and the 18x -> 11x declining speedup of Figure 5c.
* :func:`measured_fig5` — real wall-clock timing of the sequential (CPU
  stand-in) and vectorized (GPU stand-in) engines on scaled scenarios;
  regenerates the *shape* (near-flat data-parallel curve, growing scalar
  curve, declining speedup) on this machine.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..cuda.costmodel import CpuCostModel, GpuCostModel
from .records import Fig5Row, RunRecord
from .scenarios import paper_scenarios
from .sweep import SweepPoint, SweepRunner

__all__ = ["modelled_fig5", "measured_fig5", "measured_speedups"]


def modelled_fig5(agent_counts: Optional[Iterable[int]] = None) -> List[Fig5Row]:
    """Price the paper's sweep through the calibrated cost models."""
    if agent_counts is None:
        agent_counts = [s.total_agents for s in paper_scenarios()]
    gpu_aco = GpuCostModel.calibrated("aco")
    gpu_lem = GpuCostModel.calibrated("lem")
    cpu_aco = CpuCostModel.calibrated("aco")
    rows = []
    for n in agent_counts:
        rows.append(
            Fig5Row(
                total_agents=int(n),
                lem_gpu_seconds=gpu_lem.simulation_time(int(n), "lem"),
                aco_gpu_seconds=gpu_aco.simulation_time(int(n), "aco"),
                aco_cpu_seconds=cpu_aco.simulation_time(int(n), "aco"),
            )
        )
    return rows


def measured_fig5(
    scenario_indices: Sequence[int] = (1, 5, 10, 15, 20),
    scale: str = "quick",
    seed: int = 0,
    steps: Optional[int] = None,
) -> List[RunRecord]:
    """Time the engines on scaled scenarios.

    Runs, per scenario: LEM and ACO on the vectorized engine (Fig 5a) and
    ACO on the sequential engine (Fig 5b/5c numerator). ``steps`` overrides
    the scaled step budget (timing does not need full-length runs).

    These are *timing* runs, so the sweep executes with ``max_lanes=1``:
    every wall measurement comes from an isolated solo engine, never from
    an amortised batch share.
    """
    points = [
        SweepPoint(
            scenario_index=k,
            model=model,
            engine=engine,
            seed=seed,
            scale=scale,
            steps=steps,
        )
        for k in scenario_indices
        for model, engine in (
            ("lem", "vectorized"),
            ("aco", "vectorized"),
            ("aco", "sequential"),
        )
    ]
    return SweepRunner(max_lanes=1).run(points)


def measured_speedups(records: List[RunRecord]) -> List[tuple]:
    """Fig 5c from measured records: (total_agents, sequential/vectorized)."""
    by_key = {}
    for r in records:
        by_key[(r.scenario_index, r.model, r.engine)] = r
    out = []
    for k in sorted({r.scenario_index for r in records}):
        seq = by_key.get((k, "aco", "sequential"))
        vec = by_key.get((k, "aco", "vectorized"))
        if seq is not None and vec is not None and vec.wall_seconds > 0:
            out.append((seq.total_agents, seq.wall_seconds / vec.wall_seconds))
    return out
