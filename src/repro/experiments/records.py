"""Result record types shared by the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "RunRecord",
    "Fig5Row",
    "Fig6aRow",
    "Fig6bRow",
    "ExperimentReport",
    "SweepReport",
]


@dataclass(frozen=True)
class RunRecord:
    """One simulation run's outcome (measured mode)."""

    scenario_index: int
    total_agents: int
    model: str
    engine: str
    seed: int
    steps: int
    throughput: int
    wall_seconds: float
    #: Named-scenario label ("family:arg"); ``None`` for the paper's
    #: index-driven sweep points (``scenario_index`` identifies those).
    scenario: Optional[str] = None

    @property
    def fraction(self) -> float:
        """Crossed fraction."""
        return self.throughput / self.total_agents if self.total_agents else 0.0


@dataclass(frozen=True)
class Fig5Row:
    """One abscissa of Figures 5a-5c."""

    total_agents: int
    lem_gpu_seconds: float
    aco_gpu_seconds: float
    aco_cpu_seconds: float

    @property
    def speedup(self) -> float:
        """Fig 5c ordinate: CPU over GPU for the ACO simulation."""
        return self.aco_cpu_seconds / self.aco_gpu_seconds

    @property
    def aco_over_lem(self) -> float:
        """Fig 5a ratio: ACO execution time over LEM on the GPU."""
        return self.aco_gpu_seconds / self.lem_gpu_seconds


@dataclass(frozen=True)
class Fig6aRow:
    """One abscissa of Figure 6a (throughput LEM vs ACO)."""

    scenario_index: int
    total_agents: int
    lem_throughput: float
    aco_throughput: float

    @property
    def aco_gain(self) -> float:
        """ACO minus LEM crossings."""
        return self.aco_throughput - self.lem_throughput


@dataclass(frozen=True)
class Fig6bRow:
    """One abscissa of Figure 6b (ACO throughput per platform)."""

    scenario_index: int
    total_agents: int
    cpu_throughput: float
    gpu_throughput: float


@dataclass
class SweepReport:
    """Outcome of one :class:`~repro.experiments.sweep.SweepRunner` grid.

    ``wall_seconds`` is the end-to-end grid wall time; the per-record
    ``wall_seconds`` of batched lanes is the amortised per-replication
    share of their batch.
    """

    n_points: int
    max_lanes: int
    processes: int
    wall_seconds: float
    records: List[RunRecord] = field(default_factory=list)
    #: Whether mixed-scenario points were fused into padded batches.
    pad_lanes: bool = False

    @property
    def total_throughput(self) -> int:
        """Crossed agents summed over every record (smoke-check invariant)."""
        return int(sum(r.throughput for r in self.records))


@dataclass
class ExperimentReport:
    """Container for a full harness run (serialised to JSON)."""

    scale: str
    fig5_modelled: List[Fig5Row] = field(default_factory=list)
    fig5_measured: List[RunRecord] = field(default_factory=list)
    fig6a: List[Fig6aRow] = field(default_factory=list)
    fig6b: List[Fig6bRow] = field(default_factory=list)
    fig6b_pvalue: Optional[float] = None
    fig6a_overall_gain: Optional[float] = None
    notes: Dict[str, str] = field(default_factory=dict)
