"""Figure 6 drivers: throughput comparisons.

* :func:`run_fig6a` — LEM vs ACO throughput over the first 20 scenarios
  (both on the data-parallel engine, as in the paper's GPU runs), averaged
  over repetitions; reports the per-scenario series and the overall ACO
  gain (paper: +39.6%).
* :func:`run_fig6b` — ACO throughput on the sequential ("CPU") versus
  vectorized ("GPU") engine with *different seeds per platform* (our
  engines are bit-identical under equal seeds, so distinct seeds restore
  the paper's statistical setting), followed by the binomial GLM of
  crossing probability against agent count and platform, and the t-test on
  the platform coefficient (paper: p = 0.6145, not significant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..stats import BinomialGLM, GLMResult, welch_ttest
from .records import Fig6aRow, Fig6bRow, RunRecord
from .scenarios import FIG6A_SCENARIOS, FIG6B_SCENARIOS
from .sweep import SweepRunner, sweep_grid

__all__ = [
    "run_scenario_batch",
    "run_fig6a",
    "Fig6aOutcome",
    "run_fig6b",
    "Fig6bOutcome",
]


def run_scenario_batch(
    scenario_indices: Sequence[int],
    model: str,
    engine: str,
    scale: str,
    seeds: Sequence[int],
    max_lanes: int = 8,
    processes: int = 1,
) -> List[RunRecord]:
    """Run a model/engine over scenarios x seeds; returns flat records.

    Seed repetitions of one scenario execute as lanes of a single
    :class:`~repro.engine.batched.BatchedEngine` launch when the engine
    supports it — throughputs are bit-identical to solo runs, only the
    wall clock improves.
    """
    runner = SweepRunner(max_lanes=max_lanes, processes=processes)
    points = sweep_grid(
        scenario_indices, seeds, models=(model,), engines=(engine,), scale=scale
    )
    return runner.run(points)


def _mean_by_scenario(records: List[RunRecord]) -> Dict[int, Tuple[float, int]]:
    """scenario -> (mean throughput, scaled total agents)."""
    acc: Dict[int, List[RunRecord]] = {}
    for r in records:
        acc.setdefault(r.scenario_index, []).append(r)
    return {
        k: (float(np.mean([r.throughput for r in v])), v[0].total_agents)
        for k, v in acc.items()
    }


@dataclass
class Fig6aOutcome:
    """Figure 6a result set."""

    rows: List[Fig6aRow]
    overall_gain: float  # (sum ACO - sum LEM) / sum LEM
    lem_records: List[RunRecord]
    aco_records: List[RunRecord]

    @property
    def crossover_scenario(self) -> Optional[int]:
        """First scenario where ACO beats LEM by >5% of the population."""
        for row in self.rows:
            if row.aco_gain > 0.05 * row.total_agents:
                return row.scenario_index
        return None


def run_fig6a(
    scale: str = "standard",
    scenario_indices: Sequence[int] = FIG6A_SCENARIOS,
    seeds: Sequence[int] = (0, 1, 2),
    engine: str = "vectorized",
    max_lanes: int = 8,
    processes: int = 1,
) -> Fig6aOutcome:
    """LEM vs ACO throughput sweep (paper Figure 6a)."""
    lem = run_scenario_batch(
        scenario_indices, "lem", engine, scale, seeds,
        max_lanes=max_lanes, processes=processes,
    )
    aco = run_scenario_batch(
        scenario_indices, "aco", engine, scale, seeds,
        max_lanes=max_lanes, processes=processes,
    )
    lem_mean = _mean_by_scenario(lem)
    aco_mean = _mean_by_scenario(aco)
    rows = [
        Fig6aRow(
            scenario_index=k,
            total_agents=lem_mean[k][1],
            lem_throughput=lem_mean[k][0],
            aco_throughput=aco_mean[k][0],
        )
        for k in sorted(lem_mean)
    ]
    lem_total = sum(r.lem_throughput for r in rows)
    aco_total = sum(r.aco_throughput for r in rows)
    gain = (aco_total - lem_total) / lem_total if lem_total > 0 else float("inf")
    return Fig6aOutcome(rows=rows, overall_gain=gain, lem_records=lem, aco_records=aco)


@dataclass
class Fig6bOutcome:
    """Figure 6b result set plus the GLM platform analysis."""

    rows: List[Fig6bRow]
    glm: GLMResult
    platform_t: float
    platform_p: float
    welch_p: float
    cpu_records: List[RunRecord]
    gpu_records: List[RunRecord]

    @property
    def platforms_equivalent(self) -> bool:
        """True when the platform effect is not significant at 5%."""
        return self.platform_p >= 0.05


def run_fig6b(
    scale: str = "quick",
    scenario_indices: Sequence[int] = FIG6B_SCENARIOS,
    seeds_cpu: Sequence[int] = (100, 101, 102),
    seeds_gpu: Sequence[int] = (200, 201, 202),
    max_lanes: int = 8,
    processes: int = 1,
) -> Fig6bOutcome:
    """ACO on CPU (sequential) vs GPU (vectorized) + the GLM validation."""
    cpu = run_scenario_batch(
        scenario_indices, "aco", "sequential", scale, seeds_cpu,
        max_lanes=max_lanes, processes=processes,
    )
    gpu = run_scenario_batch(
        scenario_indices, "aco", "vectorized", scale, seeds_gpu,
        max_lanes=max_lanes, processes=processes,
    )
    cpu_mean = _mean_by_scenario(cpu)
    gpu_mean = _mean_by_scenario(gpu)
    rows = [
        Fig6bRow(
            scenario_index=k,
            total_agents=cpu_mean[k][1],
            cpu_throughput=cpu_mean[k][0],
            gpu_throughput=gpu_mean[k][0],
        )
        for k in sorted(cpu_mean)
    ]

    # Quasi-binomial GLM: crossing probability ~ intercept + agents +
    # platform. Crossings within a run are collectively correlated, so the
    # Pearson-dispersion covariance keeps the platform test honest.
    design, successes, trials, names = _glm_dataset(cpu, gpu)
    glm = BinomialGLM(dispersion="pearson").fit(
        design, successes, trials, names=names
    )
    t, p = glm.test_coefficient("platform_gpu")

    cpu_frac = [r.fraction for r in cpu]
    gpu_frac = [r.fraction for r in gpu]
    welch = welch_ttest(cpu_frac, gpu_frac)
    return Fig6bOutcome(
        rows=rows,
        glm=glm,
        platform_t=t,
        platform_p=p,
        welch_p=welch.pvalue,
        cpu_records=cpu,
        gpu_records=gpu,
    )


def _glm_dataset(
    cpu: List[RunRecord], gpu: List[RunRecord]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[str]]:
    """Design matrix / responses for the Fig 6b binomial GLM."""
    records = list(cpu) + list(gpu)
    agents = np.array([r.total_agents for r in records], dtype=np.float64)
    platform = np.array(
        [1.0 if r.engine == "vectorized" else 0.0 for r in records]
    )
    successes = np.array([r.throughput for r in records], dtype=np.float64)
    trials = np.array([r.total_agents for r in records], dtype=np.float64)
    # Standardise the agent regressor for IRLS conditioning.
    a_std = (agents - agents.mean()) / (agents.std() or 1.0)
    design = np.column_stack([np.ones(len(records)), a_std, platform])
    return design, successes, trials, ["intercept", "agents", "platform_gpu"]
