"""Programmatic ablation drivers.

DESIGN.md calls out the design choices that deserve sensitivity analysis;
these drivers sweep them and return tidy records (consumed by the ablation
benchmarks, the CLI and EXPERIMENTS.md):

* the forward-priority modification on/off,
* the LEM selection-rule reading (floor vs ceil),
* the ACO hyperparameters (rho, alpha, beta),
* the LEM draw spread (sigma),
* the obstacle bottleneck gap,
* the extended scanning range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..config import SimulationConfig
from ..engine import run_simulation
from ..grid import ObstacleSpec
from ..models import ACOParams, LEMParams

__all__ = [
    "AblationPoint",
    "sweep_forward_priority",
    "sweep_lem_rule",
    "sweep_rho",
    "sweep_sigma",
    "sweep_alpha_beta",
    "sweep_bottleneck_gap",
    "sweep_scan_range",
]


@dataclass(frozen=True)
class AblationPoint:
    """One ablation sample."""

    knob: str
    value: str
    throughput: int
    total_agents: int

    @property
    def fraction(self) -> float:
        """Crossed fraction."""
        return self.throughput / self.total_agents if self.total_agents else 0.0


def _run(cfg: SimulationConfig, knob: str, value, seed: int) -> AblationPoint:
    out = run_simulation(cfg, seed=seed, record_timeline=False)
    return AblationPoint(
        knob=knob,
        value=str(value),
        throughput=out.result.throughput_total,
        total_agents=cfg.total_agents,
    )


def sweep_forward_priority(base: SimulationConfig, seed: int = 0) -> List[AblationPoint]:
    """The paper's stated modification of [18], on versus off."""
    return [
        _run(base.replace(forward_priority=flag), "forward_priority", flag, seed)
        for flag in (True, False)
    ]


def sweep_lem_rule(base: SimulationConfig, seed: int = 0) -> List[AblationPoint]:
    """The two readings of the eq. 1 rank-selection draw."""
    points = []
    for rule in ("floor", "ceil"):
        params = LEMParams(rule=rule)
        points.append(_run(base.replace(params=params), "lem_rule", rule, seed))
    return points


def sweep_rho(
    base: SimulationConfig, rhos: Sequence[float] = (0.005, 0.02, 0.1, 0.5), seed: int = 0
) -> List[AblationPoint]:
    """Eq. 3 evaporation-rate sensitivity for the ACO."""
    return [
        _run(base.replace(params=ACOParams(rho=rho)), "rho", rho, seed)
        for rho in rhos
    ]


def sweep_sigma(
    base: SimulationConfig, sigmas: Sequence[float] = (0.5, 1.0, 2.0), seed: int = 0
) -> List[AblationPoint]:
    """LEM draw-spread sensitivity (how often blocked agents detour)."""
    return [
        _run(base.replace(params=LEMParams(sigma=s)), "sigma", s, seed)
        for s in sigmas
    ]


def sweep_alpha_beta(
    base: SimulationConfig,
    pairs: Sequence = ((0.0, 2.0), (1.0, 2.0), (2.0, 1.0), (1.0, 0.0)),
    seed: int = 0,
) -> List[AblationPoint]:
    """Eq. 2 trail-vs-heuristic weighting sweep for the ACO."""
    points = []
    for alpha, beta in pairs:
        params = ACOParams(alpha=alpha, beta=beta)
        points.append(
            _run(base.replace(params=params), "alpha_beta", f"{alpha}/{beta}", seed)
        )
    return points


def sweep_bottleneck_gap(
    base: SimulationConfig, gaps: Sequence[int] = (2, 4, 8, 16), seed: int = 0
) -> List[AblationPoint]:
    """Obstacle extension: throughput versus bottleneck gap width."""
    return [
        _run(
            base.replace(obstacles=ObstacleSpec("bottleneck", gap=gap)),
            "gap",
            gap,
            seed,
        )
        for gap in gaps
    ]


def sweep_scan_range(
    base: SimulationConfig, ranges: Sequence[int] = (1, 2, 4, 8), seed: int = 0
) -> List[AblationPoint]:
    """Section VII extension: heuristic look-ahead distance."""
    points = []
    for r in ranges:
        if isinstance(base.params, ACOParams):
            params = base.params.replace(scan_range=r)
        else:
            params = LEMParams(scan_range=r)
        points.append(_run(base.replace(params=params), "scan_range", r, seed))
    return points
