"""The paper's scenario grid and its scaled-down realisations.

Section VI: "The total number of pedestrians in the environment starts with
2560 (1280 in each side), and is increased by 2560 pedestrians for each
simulation instance up to 102,400 pedestrian in total" — 40 scenarios on
the fixed 480x480 grid with 25,000 steps. Figure 6a uses the first 20
(beyond 51,200 agents the throughput is insignificant); Figure 6b's GLM
uses scenarios 11..30 of the full 40 ("we suppress the first 10 and the
last 10").

Paper-scale runs are priced through the cost models; *measured* runs use
the scaled grids below (constant density, diffusive time scaling — see
:meth:`repro.config.SimulationConfig.scaled`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..config import SimulationConfig, paper_config
from ..errors import ExperimentError

__all__ = [
    "AGENT_INCREMENT",
    "N_PAPER_SCENARIOS",
    "FIG6A_SCENARIOS",
    "FIG6B_SCENARIOS",
    "ScenarioSpec",
    "ScaleSpec",
    "SCALES",
    "paper_scenarios",
    "scenario_config",
    "scenario_spec",
]

#: Agents added per scenario (Section VI).
AGENT_INCREMENT = 2560
#: Total scenarios in the paper's sweep (2,560 .. 102,400).
N_PAPER_SCENARIOS = 40
#: Scenario indices shown in Figure 6a.
FIG6A_SCENARIOS = tuple(range(1, 21))
#: Scenario indices entering the Figure 6b GLM (middle 20 of 40).
FIG6B_SCENARIOS = tuple(range(11, 31))


@dataclass(frozen=True)
class ScenarioSpec:
    """One point of the paper's population sweep."""

    index: int  # 1-based scenario number
    total_agents: int

    @property
    def per_side(self) -> int:
        """Agents per group."""
        return self.total_agents // 2

    @property
    def density(self) -> float:
        """Initial occupancy on the paper's 480x480 grid."""
        return self.total_agents / (480.0 * 480.0)


def scenario_spec(index: int) -> ScenarioSpec:
    """The :class:`ScenarioSpec` for 1-based scenario ``index``.

    Population follows the paper's table (``AGENT_INCREMENT * index``);
    indices beyond :data:`N_PAPER_SCENARIOS` extrapolate the same rule.
    """
    index = int(index)
    if index < 1:
        raise ExperimentError(
            f"scenario index must be >= 1 (paper scenarios are 1-based), "
            f"got {index}"
        )
    return ScenarioSpec(index, AGENT_INCREMENT * index)


def paper_scenarios(count: int = N_PAPER_SCENARIOS) -> List[ScenarioSpec]:
    """The first ``count`` scenarios of the paper sweep."""
    if not (1 <= count <= N_PAPER_SCENARIOS):
        raise ExperimentError(
            f"count must be in [1, {N_PAPER_SCENARIOS}], got {count}"
        )
    return [scenario_spec(k) for k in range(1, count + 1)]


@dataclass(frozen=True)
class ScaleSpec:
    """A named grid scale for measured experiments."""

    name: str
    divisor: int
    description: str

    def apply(self, config: SimulationConfig) -> SimulationConfig:
        """Scale a paper-sized configuration down to this grid."""
        if self.divisor == 1:
            return config
        return config.scaled(self.divisor, time_scaling="diffusive")


#: Registry of measurement scales. "standard" is what EXPERIMENTS.md
#: records (80x80, 694 steps); "quick" keeps pytest benchmarks fast;
#: "tiny" is for smoke tests.
SCALES: Dict[str, ScaleSpec] = {
    "paper": ScaleSpec("paper", 1, "480x480, 25,000 steps (cost-model pricing only)"),
    "standard": ScaleSpec("standard", 6, "80x80, 694 steps (EXPERIMENTS.md runs)"),
    "quick": ScaleSpec("quick", 10, "48x48, 250 steps (benchmarks)"),
    "tiny": ScaleSpec("tiny", 20, "24x24, 62 steps (smoke tests)"),
}


def scenario_config(
    scenario: ScenarioSpec,
    model: str = "lem",
    scale: str = "standard",
    seed: int = 0,
) -> SimulationConfig:
    """Build the scaled :class:`SimulationConfig` for one scenario."""
    try:
        spec = SCALES[scale]
    except KeyError:
        raise ExperimentError(
            f"unknown scale {scale!r}; available: {sorted(SCALES)}"
        ) from None
    cfg = paper_config(scenario.total_agents, model, seed=seed)
    return spec.apply(cfg)
