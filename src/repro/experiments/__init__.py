"""Experiment harness: scenarios, figure drivers, tables, ablations, runner."""

from .ablations import (
    AblationPoint,
    sweep_alpha_beta,
    sweep_bottleneck_gap,
    sweep_forward_priority,
    sweep_lem_rule,
    sweep_rho,
    sweep_scan_range,
    sweep_sigma,
)

from .figure5 import measured_fig5, measured_speedups, modelled_fig5
from .figure6 import (
    Fig6aOutcome,
    Fig6bOutcome,
    run_fig6a,
    run_fig6b,
    run_scenario_batch,
)
from .records import (
    ExperimentReport,
    Fig5Row,
    Fig6aRow,
    Fig6bRow,
    RunRecord,
    SweepReport,
)
from .runner import run_all
from .sweep import (
    SweepPoint,
    SweepRunner,
    named_sweep_points,
    smoke_sweep_points,
    sweep_grid,
)
from .scenarios import (
    AGENT_INCREMENT,
    FIG6A_SCENARIOS,
    FIG6B_SCENARIOS,
    N_PAPER_SCENARIOS,
    SCALES,
    ScaleSpec,
    ScenarioSpec,
    paper_scenarios,
    scenario_config,
    scenario_spec,
)
from .tables import occupancy_table, table1_hardware

__all__ = [
    "modelled_fig5",
    "measured_fig5",
    "measured_speedups",
    "run_fig6a",
    "run_fig6b",
    "run_scenario_batch",
    "Fig6aOutcome",
    "Fig6bOutcome",
    "RunRecord",
    "Fig5Row",
    "Fig6aRow",
    "Fig6bRow",
    "ExperimentReport",
    "SweepReport",
    "run_all",
    "SweepPoint",
    "SweepRunner",
    "sweep_grid",
    "named_sweep_points",
    "smoke_sweep_points",
    "ScenarioSpec",
    "ScaleSpec",
    "SCALES",
    "paper_scenarios",
    "scenario_config",
    "scenario_spec",
    "AGENT_INCREMENT",
    "N_PAPER_SCENARIOS",
    "FIG6A_SCENARIOS",
    "FIG6B_SCENARIOS",
    "table1_hardware",
    "occupancy_table",
    "AblationPoint",
    "sweep_forward_priority",
    "sweep_lem_rule",
    "sweep_rho",
    "sweep_sigma",
    "sweep_alpha_beta",
    "sweep_bottleneck_gap",
    "sweep_scan_range",
]
