"""End-to-end experiment runner.

``run_all`` regenerates every table and figure of the paper's evaluation
and writes the raw series (paper-style text tables), a JSON report and
ASCII plots into an output directory. EXPERIMENTS.md records one such run.
"""

from __future__ import annotations

import os
import time
from typing import Optional, Sequence

from ..io import line_plot, write_json_record, write_text_table
from .figure5 import measured_fig5, measured_speedups, modelled_fig5
from .figure6 import run_fig6a, run_fig6b
from .records import ExperimentReport
from .scenarios import FIG6A_SCENARIOS, FIG6B_SCENARIOS
from .tables import occupancy_table, table1_hardware

__all__ = ["run_all"]


def run_all(
    outdir: str,
    scale: str = "standard",
    fig6a_seeds: Sequence[int] = (0, 1, 2),
    fig6b_scale: Optional[str] = None,
    fig6b_seeds_cpu: Sequence[int] = (100, 101),
    fig6b_seeds_gpu: Sequence[int] = (200, 201),
    fig5_scenarios: Sequence[int] = (1, 5, 10, 15, 20),
    fig5_steps: Optional[int] = None,
    fig5_scale: Optional[str] = None,
    fig6a_scenarios: Sequence[int] = FIG6A_SCENARIOS,
    fig6b_scenarios: Sequence[int] = FIG6B_SCENARIOS,
    verbose: bool = True,
    sweep_lanes: int = 8,
    sweep_processes: int = 1,
) -> ExperimentReport:
    """Run the full harness; returns the report (also serialised to disk).

    ``sweep_lanes``/``sweep_processes`` tune the batched sweep execution of
    the Figure 6 drivers (seed repetitions share one batched launch).
    """
    os.makedirs(outdir, exist_ok=True)
    report = ExperimentReport(scale=scale)
    t0 = time.perf_counter()

    def log(msg: str) -> None:
        if verbose:
            print(f"[{time.perf_counter() - t0:7.1f}s] {msg}", flush=True)

    # ------------------------------------------------------------------
    log("Table I: hardware registry")
    with open(os.path.join(outdir, "table1_hardware.txt"), "w") as fh:
        fh.write(table1_hardware() + "\n\n")
        fh.write(occupancy_table() + "\n")

    # ------------------------------------------------------------------
    log("Fig 5a-c (modelled): pricing the paper sweep through the cost models")
    report.fig5_modelled = modelled_fig5()
    write_text_table(
        os.path.join(outdir, "fig5_modelled.txt"),
        {
            "total_agents": [r.total_agents for r in report.fig5_modelled],
            "lem_gpu_s": [r.lem_gpu_seconds for r in report.fig5_modelled],
            "aco_gpu_s": [r.aco_gpu_seconds for r in report.fig5_modelled],
            "aco_cpu_s": [r.aco_cpu_seconds for r in report.fig5_modelled],
            "speedup": [r.speedup for r in report.fig5_modelled],
        },
        header_comment="Fig 5a-c, modelled at paper scale (480x480, 25k steps)",
    )

    log("Fig 5a-c (measured): timing the engines on scaled scenarios")
    fig5_scale = fig5_scale or ("quick" if scale in ("paper", "standard") else scale)
    report.fig5_measured = measured_fig5(
        scenario_indices=fig5_scenarios, scale=fig5_scale, steps=fig5_steps
    )
    write_text_table(
        os.path.join(outdir, "fig5_measured.txt"),
        {
            "scenario": [r.scenario_index for r in report.fig5_measured],
            "total_agents": [r.total_agents for r in report.fig5_measured],
            "model_is_aco": [1 if r.model == "aco" else 0 for r in report.fig5_measured],
            "engine_is_vec": [
                1 if r.engine == "vectorized" else 0 for r in report.fig5_measured
            ],
            "wall_s": [r.wall_seconds for r in report.fig5_measured],
        },
        header_comment=f"Fig 5 measured wall times (scale={fig5_scale})",
    )

    # ------------------------------------------------------------------
    log(f"Fig 6a: LEM vs ACO throughput sweep at scale={scale!r}")
    fig6a = run_fig6a(
        scale=scale,
        scenario_indices=fig6a_scenarios,
        seeds=fig6a_seeds,
        max_lanes=sweep_lanes,
        processes=sweep_processes,
    )
    report.fig6a = fig6a.rows
    report.fig6a_overall_gain = fig6a.overall_gain
    write_text_table(
        os.path.join(outdir, "fig6a_throughput.txt"),
        {
            "scenario": [r.scenario_index for r in fig6a.rows],
            "total_agents": [r.total_agents for r in fig6a.rows],
            "lem": [r.lem_throughput for r in fig6a.rows],
            "aco": [r.aco_throughput for r in fig6a.rows],
        },
        header_comment=(
            f"Fig 6a at scale={scale}; overall ACO gain "
            f"{fig6a.overall_gain:+.1%} (paper: +39.6%)"
        ),
    )
    chart = line_plot(
        {
            "LEM": [r.lem_throughput for r in fig6a.rows],
            "ACO": [r.aco_throughput for r in fig6a.rows],
        },
        x=[r.scenario_index for r in fig6a.rows],
        title=f"Fig 6a (scale={scale}): throughput vs scenario",
        xlabel="scenario index (population = 2560k / divisor^2)",
    )
    with open(os.path.join(outdir, "fig6a_plot.txt"), "w") as fh:
        fh.write(chart + "\n")
    log(f"Fig 6a done: overall ACO gain {fig6a.overall_gain:+.1%}")

    # ------------------------------------------------------------------
    fig6b_scale = fig6b_scale or ("quick" if scale == "standard" else scale)
    log(f"Fig 6b: CPU vs GPU platform validation at scale={fig6b_scale!r}")
    fig6b = run_fig6b(
        scale=fig6b_scale,
        scenario_indices=fig6b_scenarios,
        seeds_cpu=fig6b_seeds_cpu,
        seeds_gpu=fig6b_seeds_gpu,
        max_lanes=sweep_lanes,
        processes=sweep_processes,
    )
    report.fig6b = fig6b.rows
    report.fig6b_pvalue = fig6b.platform_p
    write_text_table(
        os.path.join(outdir, "fig6b_platforms.txt"),
        {
            "scenario": [r.scenario_index for r in fig6b.rows],
            "total_agents": [r.total_agents for r in fig6b.rows],
            "cpu": [r.cpu_throughput for r in fig6b.rows],
            "gpu": [r.gpu_throughput for r in fig6b.rows],
        },
        header_comment=(
            f"Fig 6b at scale={fig6b_scale}; GLM platform p-value "
            f"{fig6b.platform_p:.4f} (paper: 0.6145)"
        ),
    )
    with open(os.path.join(outdir, "fig6b_glm.txt"), "w") as fh:
        fh.write(fig6b.glm.coef_table() + "\n")
        fh.write(
            f"\nplatform t = {fig6b.platform_t:.4f}, p = {fig6b.platform_p:.4f} "
            f"(paper: p = 0.6145)\nWelch t-test p = {fig6b.welch_p:.4f}\n"
        )
    log(f"Fig 6b done: platform p = {fig6b.platform_p:.4f}")

    # ------------------------------------------------------------------
    speedups = measured_speedups(report.fig5_measured)
    report.notes["measured_speedups"] = ", ".join(
        f"{n}: {s:.1f}x" for n, s in speedups
    )
    write_json_record(os.path.join(outdir, "report.json"), report)
    log("report written")
    return report
