"""Table generators: the paper's Table I and the occupancy analysis."""

from __future__ import annotations

from typing import List

from ..cuda.device import CpuSpec, DeviceSpec, GTX_560_TI_448, I7_930
from ..cuda.kernels import gpu_kernel_workloads
from ..cuda.occupancy import occupancy

__all__ = ["table1_hardware", "occupancy_table"]


def table1_hardware(
    cpu: CpuSpec = I7_930, gpu: DeviceSpec = GTX_560_TI_448
) -> str:
    """Regenerate the paper's Table I from the device registry."""
    rows = [
        ("Manufacturer", cpu.manufacturer, gpu.manufacturer),
        ("Model", cpu.name, gpu.name),
        ("Processor Cores", str(cpu.cores), str(gpu.total_cores)),
        ("Clock Frequency (GHz)", f"{cpu.clock_ghz}", f"{gpu.clock_ghz}"),
        ("L1 Cache size", cpu.l1_description, gpu.l1_description),
        (
            "L2 Cache size",
            f"{cpu.l2_cache_bytes // 1024} KB/ core",
            f"{gpu.l2_cache_bytes // 1024} KB",
        ),
        (
            "L3 Cache size",
            f"{cpu.l3_cache_bytes // (1024 * 1024)} MB",
            "Not available",
        ),
        ("DRAM Memory", cpu.dram_description, gpu.dram_description),
    ]
    w0 = max(len(r[0]) for r in rows)
    w1 = max(max(len(r[1]) for r in rows), len("CPU"))
    w2 = max(max(len(r[2]) for r in rows), len("GPU"))
    lines = [
        f"{'Attributes':<{w0}} | {'CPU':<{w1}} | {'GPU':<{w2}}",
        f"{'-' * w0}-+-{'-' * w1}-+-{'-' * w2}",
    ]
    lines += [f"{a:<{w0}} | {b:<{w1}} | {c:<{w2}}" for a, b, c in rows]
    return "\n".join(lines)


def occupancy_table(
    height: int = 480, width: int = 480, total_agents: int = 2560, model: str = "aco"
) -> str:
    """Occupancy of every kernel's launch configuration (Section IV claim).

    The paper sizes every block at 256 threads to keep the Fermi SMs at
    100% theoretical occupancy; this table verifies it per kernel with the
    estimated register/shared usage.
    """
    lines: List[str] = [
        f"{'kernel':<22} {'threads/blk':>11} {'regs':>5} {'shared':>7} "
        f"{'blocks/SM':>9} {'occupancy':>9} {'limiter':>9}"
    ]
    for wl in gpu_kernel_workloads(height, width, total_agents, model):
        occ = occupancy(
            wl.threads_per_block,
            registers_per_thread=wl.registers_per_thread,
            shared_per_block=wl.shared_per_block,
        )
        lines.append(
            f"{wl.name:<22} {wl.threads_per_block:>11} "
            f"{wl.registers_per_thread:>5} {wl.shared_per_block:>7} "
            f"{occ.active_blocks_per_sm:>9} {occ.occupancy:>9.0%} {occ.limiter:>9}"
        )
    return "\n".join(lines)
