"""Parallel sweep runner: map a (scenario x seed x engine x model) grid
onto batched replication lanes and the shared executor pool.

The paper's evaluation is a population sweep with repeated seeds per
point. Two orthogonal axes of parallelism apply:

* **replication batching** — runs that share everything except the seed
  stack into one :class:`~repro.engine.batched.BatchedEngine` launch
  (bit-identical per lane, so sweep results match solo runs exactly);
* **process parallelism** — heterogeneous work units fan out over a
  :class:`repro.exec.ExecutorPool` (the same persistent worker pool the
  serving layer dispatches through).

With ``pad_lanes=True`` the planner additionally fuses points that differ
*only* in their scenario (same model/engine/scale/steps) into padded
heterogeneous batches: lanes are packed largest-population-first and a
chunk stops growing once the padded agent slots would exceed the waste
ceiling (explicit ``max_pad_waste``, or by default a ceiling derived per
pool from the cost model's dispatch-overhead estimate). This is the move the OpenCL social-field
and CALM batching literature make — pad heterogeneous work items to a
common shape so one launch covers them — and it lets a mixed-scenario
sweep with one seed per point (which same-shape batching cannot fuse at
all) still amortise dispatch overhead.

:class:`SweepRunner` composes all of it: it groups the requested points,
packs batchable lanes (chunked at ``max_lanes``), and executes the
resulting work units inline or across workers. Records come back in the
exact order of the requested points, keyed by request position (so
duplicated points each keep their own record).

Timing note: a batched unit reports ``wall_seconds`` as the batch wall
time divided by its lane count (the amortised per-replication cost).
Timing studies that need isolated per-run walls (Figure 5) should use
``max_lanes=1``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..backend import resolve_backend
from ..errors import ExperimentError
from ..exec import (
    MP_START_METHOD,
    ExecutorPool,
    LaunchWork,
    execute_launch,
    launch_cost,
    warm_backend,
)
from ..obs import TraceSpec, Tracer
from ..planner import (
    BATCHABLE_ENGINES,
    MAX_PAD_WASTE_CEILING,
    MIN_PAD_WASTE,
    LaneRequest,
    derived_pad_waste,
    plan_lanes,
    validate_plan_parameters,
)
from .records import RunRecord, SweepReport
from .scenarios import scenario_config, scenario_spec

__all__ = [
    "SweepPoint",
    "SweepRunner",
    "sweep_grid",
    "named_sweep_points",
    "smoke_sweep_points",
    # Re-exported from repro.planner (the shared lane packer) for
    # backwards compatibility with pre-service callers.
    "BATCHABLE_ENGINES",
    "MIN_PAD_WASTE",
    "MAX_PAD_WASTE_CEILING",
    "derived_pad_waste",
]

#: Backwards-compatible alias: the start-method choice moved into the
#: shared execution layer (:data:`repro.exec.MP_START_METHOD`) when the
#: transient per-sweep pool was replaced by the persistent executor.
_MP_START_METHOD = MP_START_METHOD


@dataclass(frozen=True)
class SweepPoint:
    """One requested run of the sweep grid.

    A point is either one of the paper's index-driven scenarios
    (``scenario_index`` >= 1, the legacy form) or a *named* scenario from
    the component registry (``scenario="family:arg"``, e.g.
    ``"boarding:30x7"``); exactly one of the two selects the geometry.
    """

    scenario_index: int = 0
    model: str = "lem"
    engine: str = "vectorized"
    seed: int = 0
    scale: str = "standard"
    #: Optional step-budget override (timing studies shorten runs).
    steps: Optional[int] = None
    #: Named scenario ("family:arg"), resolved through
    #: :func:`repro.components.scenarios.build_scenario`.
    scenario: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scenario is not None:
            if self.scenario_index:
                raise ExperimentError(
                    f"a sweep point names either a scenario_index or a "
                    f"scenario, not both (got index {self.scenario_index} "
                    f"and {self.scenario!r})"
                )
        elif self.scenario_index < 1:
            raise ExperimentError(
                f"scenario_index must be >= 1 (the paper's scenarios are "
                f"1-based), got {self.scenario_index}"
            )

    @property
    def batch_key(self) -> Tuple:
        """Runs sharing this key differ only in their seed."""
        return (
            self.scenario or self.scenario_index,
            self.model,
            self.engine,
            self.scale,
            self.steps,
        )

    @property
    def pad_key(self) -> Tuple:
        """Runs sharing this key can fuse into one *padded* batch.

        Named scenarios size their own step budget from their geometry,
        so their pad key carries the *resolved* steps — lanes of a padded
        batch must share the budget, which the legacy points guarantee
        per scale but named families do not.
        """
        if self.scenario is None:
            return (self.model, self.engine, self.scale, self.steps)
        steps = self.steps if self.steps is not None else self.config().steps
        return (self.model, self.engine, self.scale, int(steps))

    def config(self):
        """The scaled :class:`~repro.config.SimulationConfig` for this point."""
        if self.scenario is not None:
            # Lazy: repro.components.scenarios itself imports the paper's
            # scale table from this package, so a module-level import
            # here would be circular when components loads first.
            from ..components.scenarios import build_scenario

            cfg = build_scenario(
                self.scenario,
                model=self.model,
                scale=self.scale,
                seed=self.seed,
            )
        else:
            cfg = scenario_config(
                scenario_spec(self.scenario_index),
                model=self.model,
                scale=self.scale,
                seed=self.seed,
            )
        if self.steps is not None:
            cfg = cfg.replace(steps=int(self.steps))
        return cfg


def sweep_grid(
    scenario_indices: Sequence[int],
    seeds: Sequence[int],
    models: Sequence[str] = ("lem",),
    engines: Sequence[str] = ("vectorized",),
    scale: str = "standard",
    steps: Optional[int] = None,
) -> List[SweepPoint]:
    """Expand a full factorial grid, scenario-major then model/engine/seed."""
    return [
        SweepPoint(
            scenario_index=k,
            model=model,
            engine=engine,
            seed=seed,
            scale=scale,
            steps=steps,
        )
        for k in scenario_indices
        for model in models
        for engine in engines
        for seed in seeds
    ]


def named_sweep_points(
    scenarios: Sequence[str],
    seeds: Sequence[int] = (0,),
    models: Sequence[str] = ("lem",),
    engines: Sequence[str] = ("vectorized",),
    scale: str = "standard",
    steps: Optional[int] = None,
) -> List[SweepPoint]:
    """Expand a grid over *named* scenarios (``family:arg`` spellings).

    ``scenarios`` accepts concrete names and ``family:*`` wildcards
    (expanded through :func:`repro.components.scenarios.expand_scenarios`),
    scenario-major like :func:`sweep_grid`.
    """
    from ..components.scenarios import expand_scenarios

    return [
        SweepPoint(
            scenario=name,
            model=model,
            engine=engine,
            seed=seed,
            scale=scale,
            steps=steps,
        )
        for name in expand_scenarios(scenarios)
        for model in models
        for engine in engines
        for seed in seeds
    ]


def smoke_sweep_points() -> List[SweepPoint]:
    """The CI smoke grid: 2 scenarios x 2 models x 2 seeds on the tiny scale."""
    return sweep_grid(
        scenario_indices=(1, 2),
        seeds=(0, 1),
        models=("lem", "aco"),
        engines=("vectorized",),
        scale="tiny",
    )


# ----------------------------------------------------------------------
# Work units (planned groups, lowered to repro.exec.LaunchWork to run)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _WorkUnit:
    """A batch of same-config seeds, a padded mixed batch, or a solo run."""

    point: SweepPoint  # representative point (seed = first of ``seeds``)
    seeds: Tuple[int, ...]
    batched: bool
    record_timeline: bool = False
    #: Positions of each lane in the caller's requested point list,
    #: aligned with ``seeds``. Records are keyed back by these.
    indices: Tuple[int, ...] = ()
    #: Per-lane points for padded heterogeneous batches; ``None`` when all
    #: lanes share ``point``'s config.
    points: Optional[Tuple[SweepPoint, ...]] = None
    #: Array-backend override applied to every lane config (None = as-is).
    backend: Optional[str] = None


def _record_from(point: SweepPoint, cfg, seed: int, result, wall: float) -> RunRecord:
    return RunRecord(
        scenario_index=point.scenario_index,
        total_agents=cfg.total_agents,
        model=point.model,
        engine=point.engine,
        seed=seed,
        steps=result.steps_run,
        throughput=result.throughput_total,
        wall_seconds=wall,
        scenario=point.scenario,
    )


def _unit_lanes(unit: _WorkUnit) -> Tuple[List[SweepPoint], List]:
    """Per-lane points and fully-resolved configs (seed + backend applied)."""
    if unit.points is not None:
        # Padded heterogeneous batch: one config per lane, seeds embedded.
        points = list(unit.points)
        configs = [p.config() for p in points]
    else:
        points = [unit.point] * len(unit.seeds)
        base = unit.point.config()
        configs = [base.replace(seed=s) for s in unit.seeds]
    if unit.backend is not None:
        configs = [c.replace(backend=unit.backend) for c in configs]
    return points, configs


def _unit_work(unit: _WorkUnit, configs: List) -> LaunchWork:
    """Lower a planned unit to the executable :class:`LaunchWork` payload."""
    return LaunchWork(
        configs=tuple(configs),
        engine=unit.point.engine,
        batched=unit.batched and len(configs) > 1,
        mixed=unit.points is not None,
        record_timeline=unit.record_timeline,
    )


def _unit_records(unit: _WorkUnit, points, configs, outcome) -> List[RunRecord]:
    """One record per lane, in ``unit.seeds`` order."""
    return [
        _record_from(point, cfg, seed, result, wall)
        for point, cfg, seed, result, wall in zip(
            points, configs, unit.seeds, outcome.results, outcome.wall_seconds
        )
    ]


class SweepRunner:
    """Execute a list of :class:`SweepPoint` via batched lanes + a pool.

    Parameters
    ----------
    max_lanes:
        Upper bound on replications per batched launch. ``1`` disables
        batching entirely (every run is a solo engine — use for timing).
    processes:
        Worker processes for heterogeneous work units. ``1`` (default)
        executes inline; larger values dispatch through a transient
        :class:`repro.exec.ExecutorPool` (persistent workers started via
        the forward-compatible ``forkserver``/``spawn`` method, never
        the deprecated ``fork``) that lives for one :meth:`run` call.
    executor:
        An existing :class:`repro.exec.ExecutorPool` to dispatch through
        instead of creating one — pass it to keep workers warm across
        several :meth:`run` calls (grid chunks) or to share one pool
        with the serving layer. The caller keeps ownership: the runner
        never closes a pool it was handed.
    tracer:
        Optional :class:`repro.obs.Tracer`. When set, planning is timed
        as a ``plan`` span, every launch rides out with a
        :class:`~repro.obs.TraceSpec`, and the worker-recorded phase
        spans are adopted back into the trace on return (the machinery
        behind ``repro sweep --trace``). Trajectories are unchanged.
    record_timeline:
        Forwarded to the engines; sweeps usually only need totals.
    pad_lanes:
        Fuse points that differ only in their scenario into padded
        heterogeneous batches (same model/engine/scale/steps). Lanes pack
        largest-population-first; a batch stops growing once padding would
        exceed the waste ceiling of its agent slots.
    max_pad_waste:
        Ceiling on the padded-slot fraction of a mixed batch, in [0, 1).
        ``None`` (default) derives the ceiling per pad pool from the cost
        model's dispatch-overhead estimate (:func:`derived_pad_waste`) —
        loose for tiny dispatch-bound scenarios, tight at paper scale.
    backend:
        Array-backend name applied to every executed config ("numpy",
        "cupy", ...). ``None`` leaves each point's config untouched. The
        runner resolves the name up front, so an unavailable backend
        fails fast with :class:`~repro.errors.BackendUnavailableError`
        instead of inside a pool worker.
    """

    def __init__(
        self,
        max_lanes: int = 8,
        processes: int = 1,
        record_timeline: bool = False,
        pad_lanes: bool = False,
        max_pad_waste: Optional[float] = None,
        backend: Optional[str] = None,
        executor: Optional[ExecutorPool] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        validate_plan_parameters(max_lanes, max_pad_waste)
        if processes < 1:
            raise ExperimentError(f"processes must be >= 1, got {processes}")
        self.max_lanes = int(max_lanes)
        self.processes = int(processes)
        self.record_timeline = bool(record_timeline)
        self.pad_lanes = bool(pad_lanes)
        self.max_pad_waste = None if max_pad_waste is None else float(max_pad_waste)
        self.backend = None if backend is None else str(backend)
        self.executor = executor
        self.tracer = tracer
        if self.backend is not None:
            resolve_backend(self.backend)

    # ------------------------------------------------------------------
    def plan(self, points: Sequence[SweepPoint]) -> List[_WorkUnit]:
        """Group points into batched / padded / solo work units.

        The packing decisions live in :func:`repro.planner.plan_lanes`
        (shared with the serving layer's micro-batching scheduler):
        points sharing a full batch key on a batchable engine pack into
        lanes of at most ``max_lanes`` seeds; a seed repeated *within* a
        key demotes only the duplicate occurrences to solo runs; with
        ``pad_lanes`` enabled, lanes from different scenarios of the same
        ``pad_key`` additionally fuse into padded batches under the
        ``max_pad_waste`` bound.
        """
        points = list(points)
        requests: List[LaneRequest] = []
        # Scenario populations repeat across seeds; cache the built config
        # per (scenario, model, scale, steps) so planning a large grid does
        # not re-derive the same scaled geometry point by point. Configs
        # are only consulted for padding accounting and waste derivation
        # (model included because the derived bound prices the model's
        # dispatch overhead), so the cached copy's seed being the first
        # occurrence's is immaterial (and configs are skipped entirely
        # without ``pad_lanes``).
        sizing: Dict[Tuple, object] = {}
        for i, p in enumerate(points):
            agents = 0
            cfg = None
            if self.pad_lanes:
                size_key = (
                    p.scenario or p.scenario_index, p.model, p.scale, p.steps,
                )
                if size_key not in sizing:
                    sizing[size_key] = p.config()
                cfg = sizing[size_key]
                agents = cfg.total_agents
            requests.append(
                LaneRequest(
                    index=i,
                    seed=p.seed,
                    engine=p.engine,
                    batch_key=p.batch_key,
                    pad_key=p.pad_key,
                    agents=agents,
                    config=cfg,
                    scenario=p.scenario,
                )
            )
        planned = plan_lanes(
            requests,
            max_lanes=self.max_lanes,
            pad_lanes=self.pad_lanes,
            max_pad_waste=self.max_pad_waste,
        )

        units: List[_WorkUnit] = []
        for batch in planned:
            lane_points = [points[i] for i in batch.indices]
            units.append(
                _WorkUnit(
                    point=lane_points[0],
                    seeds=tuple(p.seed for p in lane_points),
                    batched=batch.batched,
                    record_timeline=self.record_timeline,
                    indices=batch.indices,
                    points=tuple(lane_points) if batch.mixed else None,
                    backend=self.backend,
                )
            )
        return units

    # ------------------------------------------------------------------
    def run(self, points: Sequence[SweepPoint]) -> List[RunRecord]:
        """Execute every point; records return in the requested order."""
        points = list(points)
        plan_span = None
        if self.tracer is not None:
            plan_span = self.tracer.start("plan", points=len(points))
        units = self.plan(points)
        lanes = [_unit_lanes(u) for u in units]
        works = [
            _unit_work(u, configs) for u, (_, configs) in zip(units, lanes)
        ]
        if plan_span is not None:
            plan_span.attrs["launches"] = len(units)
            self.tracer.finish(plan_span)
            works = [
                replace(w, trace=TraceSpec(dispatched_unix=time.time()))
                for w in works
            ]

        pool = self.executor
        transient: Optional[ExecutorPool] = None
        use_pool = len(units) > 1 and (pool is not None or self.processes > 1)
        if use_pool and pool is None:
            # A transient pool for this grid only. Workers pre-resolve the
            # runner's backend so the first launch is not the one paying
            # backend construction.
            initializer = None if self.backend is None else warm_backend
            initargs = () if self.backend is None else (self.backend,)
            transient = pool = ExecutorPool(
                self.processes, initializer=initializer, initargs=initargs
            )
        try:
            if use_pool:
                # Padding-aware LPT dispatch: submit heaviest-first by
                # *real* agent-steps. A padded batch's weight is the sum
                # of its lanes' real populations — lane count alone would
                # let one worker absorb every large-lane batch while the
                # others drain small fry. The pool's pending heap keeps
                # the greedy heaviest-first assignment as workers free up.
                costs = [launch_cost(w) for w in works]
                order = sorted(range(len(units)), key=lambda i: (-costs[i], i))
                futures = {
                    i: pool.submit(execute_launch, works[i], cost=costs[i])
                    for i in order
                }
                outcomes = [futures[i].result() for i in range(len(units))]
            else:
                outcomes = [execute_launch(w) for w in works]
        finally:
            if transient is not None:
                transient.close()

        if self.tracer is not None:
            # One container span per launch so the phase spans of
            # different launches stay distinguishable in the tree. Its
            # bounds come from the launch's own spans (unix clock).
            for unit, outcome in zip(units, outcomes):
                spans = outcome.spans
                if not spans:
                    continue
                start = min(s["start_unix"] for s in spans)
                end = max(
                    s["start_unix"] + (s["duration_s"] or 0.0) for s in spans
                )
                launch = self.tracer.add(
                    "launch",
                    start_unix=start,
                    duration_s=end - start,
                    lanes=len(unit.seeds),
                    batched=unit.batched,
                )
                self.tracer.adopt(spans, parent_id=launch.span_id)

        # Key by request position, not by (batch_key, seed): duplicated
        # points each keep their own record and wall time.
        by_index: Dict[int, RunRecord] = {}
        for unit, (unit_points, configs), outcome in zip(units, lanes, outcomes):
            records = _unit_records(unit, unit_points, configs, outcome)
            for idx, record in zip(unit.indices, records):
                by_index[idx] = record
        if len(by_index) != len(points):
            raise ExperimentError(
                f"sweep plan lost runs: {len(points)} requested, "
                f"{len(by_index)} executed"
            )
        return [by_index[i] for i in range(len(points))]

    # ------------------------------------------------------------------
    def run_report(self, points: Sequence[SweepPoint]) -> SweepReport:
        """Like :meth:`run`, wrapped with grid metadata and total wall time."""
        start = time.perf_counter()
        records = self.run(points)
        elapsed = time.perf_counter() - start
        return SweepReport(
            n_points=len(records),
            max_lanes=self.max_lanes,
            processes=self.processes,
            wall_seconds=elapsed,
            records=list(records),
            pad_lanes=self.pad_lanes,
        )
