"""Parallel sweep runner: map a (scenario x seed x engine x model) grid
onto batched replication lanes and a process pool.

The paper's evaluation is a population sweep with repeated seeds per
point. Two orthogonal axes of parallelism apply:

* **replication batching** — runs that share everything except the seed
  stack into one :class:`~repro.engine.batched.BatchedEngine` launch
  (bit-identical per lane, so sweep results match solo runs exactly);
* **process parallelism** — points with *heterogeneous* shapes (different
  scenarios, models or engines) cannot share arrays, so they fan out over
  a ``multiprocessing`` pool instead.

:class:`SweepRunner` composes both: it groups the requested points by
batch key, packs batchable seed sets into lanes of at most ``max_lanes``,
and executes the resulting work units inline or across workers. Records
come back in the exact order of the requested points.

Timing note: a batched unit reports ``wall_seconds`` as the batch wall
time divided by its lane count (the amortised per-replication cost).
Timing studies that need isolated per-run walls (Figure 5) should use
``max_lanes=1``.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine import run_batched, run_simulation
from ..errors import ExperimentError
from .records import RunRecord, SweepReport
from .scenarios import ScenarioSpec, scenario_config

__all__ = ["SweepPoint", "SweepRunner", "sweep_grid", "smoke_sweep_points"]

#: Engines whose runs can share a batched launch. The sequential engine is
#: scalar by construction and the tiled engine carries per-run tile state.
BATCHABLE_ENGINES = ("vectorized",)


@dataclass(frozen=True)
class SweepPoint:
    """One requested run of the sweep grid."""

    scenario_index: int
    model: str = "lem"
    engine: str = "vectorized"
    seed: int = 0
    scale: str = "standard"
    #: Optional step-budget override (timing studies shorten runs).
    steps: Optional[int] = None

    @property
    def batch_key(self) -> Tuple:
        """Runs sharing this key differ only in their seed."""
        return (self.scenario_index, self.model, self.engine, self.scale, self.steps)

    def config(self):
        """The scaled :class:`~repro.config.SimulationConfig` for this point."""
        scenario = ScenarioSpec(self.scenario_index, 2560 * self.scenario_index)
        cfg = scenario_config(
            scenario, model=self.model, scale=self.scale, seed=self.seed
        )
        if self.steps is not None:
            cfg = cfg.replace(steps=int(self.steps))
        return cfg


def sweep_grid(
    scenario_indices: Sequence[int],
    seeds: Sequence[int],
    models: Sequence[str] = ("lem",),
    engines: Sequence[str] = ("vectorized",),
    scale: str = "standard",
    steps: Optional[int] = None,
) -> List[SweepPoint]:
    """Expand a full factorial grid, scenario-major then model/engine/seed."""
    return [
        SweepPoint(
            scenario_index=k,
            model=model,
            engine=engine,
            seed=seed,
            scale=scale,
            steps=steps,
        )
        for k in scenario_indices
        for model in models
        for engine in engines
        for seed in seeds
    ]


def smoke_sweep_points() -> List[SweepPoint]:
    """The CI smoke grid: 2 scenarios x 2 models x 2 seeds on the tiny scale."""
    return sweep_grid(
        scenario_indices=(1, 2),
        seeds=(0, 1),
        models=("lem", "aco"),
        engines=("vectorized",),
        scale="tiny",
    )


# ----------------------------------------------------------------------
# Work units (module-level so they pickle into pool workers)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _WorkUnit:
    """A batch of same-shape seeds (batched) or a single solo run."""

    point: SweepPoint  # representative point (seed = first of ``seeds``)
    seeds: Tuple[int, ...]
    batched: bool
    record_timeline: bool = False


def _execute_unit(unit: _WorkUnit) -> List[RunRecord]:
    """Run one work unit; one record per seed, in ``unit.seeds`` order."""
    point = unit.point
    cfg = point.config()
    records: List[RunRecord] = []
    if unit.batched and len(unit.seeds) > 1:
        out = run_batched(cfg, unit.seeds, record_timeline=unit.record_timeline)
        per_lane_wall = out.wall_seconds_per_lane
        for seed, result in zip(unit.seeds, out.results):
            records.append(
                RunRecord(
                    scenario_index=point.scenario_index,
                    total_agents=cfg.total_agents,
                    model=point.model,
                    engine=point.engine,
                    seed=seed,
                    steps=result.steps_run,
                    throughput=result.throughput_total,
                    wall_seconds=per_lane_wall,
                )
            )
    else:
        for seed in unit.seeds:
            out = run_simulation(
                cfg.replace(seed=seed),
                engine=point.engine,
                record_timeline=unit.record_timeline,
            )
            records.append(
                RunRecord(
                    scenario_index=point.scenario_index,
                    total_agents=cfg.total_agents,
                    model=point.model,
                    engine=point.engine,
                    seed=seed,
                    steps=out.result.steps_run,
                    throughput=out.result.throughput_total,
                    wall_seconds=out.wall_seconds,
                )
            )
    return records


class SweepRunner:
    """Execute a list of :class:`SweepPoint` via batched lanes + a pool.

    Parameters
    ----------
    max_lanes:
        Upper bound on replications per batched launch. ``1`` disables
        batching entirely (every run is a solo engine — use for timing).
    processes:
        Worker processes for heterogeneous work units. ``1`` (default)
        executes inline; larger values use a ``multiprocessing`` pool.
    record_timeline:
        Forwarded to the engines; sweeps usually only need totals.
    """

    def __init__(
        self,
        max_lanes: int = 8,
        processes: int = 1,
        record_timeline: bool = False,
    ) -> None:
        if max_lanes < 1:
            raise ExperimentError(f"max_lanes must be >= 1, got {max_lanes}")
        if processes < 1:
            raise ExperimentError(f"processes must be >= 1, got {processes}")
        self.max_lanes = int(max_lanes)
        self.processes = int(processes)
        self.record_timeline = bool(record_timeline)

    # ------------------------------------------------------------------
    def plan(self, points: Sequence[SweepPoint]) -> List[_WorkUnit]:
        """Group points into batched / solo work units (order-preserving).

        Points sharing a batch key on a batchable engine pack into lanes of
        at most ``max_lanes`` seeds; duplicate seeds within a key fall back
        to solo runs (the batched engine requires distinct lane seeds).
        """
        groups: Dict[Tuple, List[SweepPoint]] = {}
        order: List[Tuple] = []
        for p in points:
            key = p.batch_key
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(p)

        units: List[_WorkUnit] = []
        for key in order:
            members = groups[key]
            rep = members[0]
            seeds = tuple(p.seed for p in members)
            batchable = (
                rep.engine in BATCHABLE_ENGINES
                and self.max_lanes > 1
                and len(seeds) > 1
                and len(set(seeds)) == len(seeds)
            )
            if batchable:
                for i in range(0, len(seeds), self.max_lanes):
                    chunk = seeds[i : i + self.max_lanes]
                    units.append(
                        _WorkUnit(
                            point=rep,
                            seeds=chunk,
                            batched=len(chunk) > 1,
                            record_timeline=self.record_timeline,
                        )
                    )
            else:
                for seed in seeds:
                    units.append(
                        _WorkUnit(
                            point=rep,
                            seeds=(seed,),
                            batched=False,
                            record_timeline=self.record_timeline,
                        )
                    )
        return units

    # ------------------------------------------------------------------
    def run(self, points: Sequence[SweepPoint]) -> List[RunRecord]:
        """Execute every point; records return in the requested order."""
        points = list(points)
        units = self.plan(points)
        if self.processes > 1 and len(units) > 1:
            # fork keeps the workers cheap; spawn (macOS/Windows default)
            # works too since _execute_unit and its payload pickle cleanly.
            with multiprocessing.Pool(self.processes) as pool:
                unit_records = pool.map(_execute_unit, units)
        else:
            unit_records = [_execute_unit(u) for u in units]

        by_key: Dict[Tuple, RunRecord] = {}
        for unit, records in zip(units, unit_records):
            for seed, record in zip(unit.seeds, records):
                by_key[unit.point.batch_key + (seed,)] = record
        return [by_key[p.batch_key + (p.seed,)] for p in points]

    # ------------------------------------------------------------------
    def run_report(self, points: Sequence[SweepPoint]) -> SweepReport:
        """Like :meth:`run`, wrapped with grid metadata and total wall time."""
        start = time.perf_counter()
        records = self.run(points)
        elapsed = time.perf_counter() - start
        return SweepReport(
            n_points=len(records),
            max_lanes=self.max_lanes,
            processes=self.processes,
            wall_seconds=elapsed,
            records=list(records),
        )
