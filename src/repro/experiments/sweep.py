"""Parallel sweep runner: map a (scenario x seed x engine x model) grid
onto batched replication lanes and a process pool.

The paper's evaluation is a population sweep with repeated seeds per
point. Two orthogonal axes of parallelism apply:

* **replication batching** — runs that share everything except the seed
  stack into one :class:`~repro.engine.batched.BatchedEngine` launch
  (bit-identical per lane, so sweep results match solo runs exactly);
* **process parallelism** — points the batch planner leaves solo fan out
  over a ``multiprocessing`` pool instead.

With ``pad_lanes=True`` the planner additionally fuses points that differ
*only* in their scenario (same model/engine/scale/steps) into padded
heterogeneous batches: lanes are packed largest-population-first and a
chunk stops growing once the padded agent slots would exceed the waste
ceiling (explicit ``max_pad_waste``, or by default a ceiling derived per
pool from the cost model's dispatch-overhead estimate). This is the move the OpenCL social-field
and CALM batching literature make — pad heterogeneous work items to a
common shape so one launch covers them — and it lets a mixed-scenario
sweep with one seed per point (which same-shape batching cannot fuse at
all) still amortise dispatch overhead.

:class:`SweepRunner` composes all of it: it groups the requested points,
packs batchable lanes (chunked at ``max_lanes``), and executes the
resulting work units inline or across workers. Records come back in the
exact order of the requested points, keyed by request position (so
duplicated points each keep their own record).

Timing note: a batched unit reports ``wall_seconds`` as the batch wall
time divided by its lane count (the amortised per-replication cost).
Timing studies that need isolated per-run walls (Figure 5) should use
``max_lanes=1``.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..backend import resolve_backend
from ..cuda.costmodel import dispatch_overhead_fraction
from ..engine import run_batched, run_simulation
from ..errors import ExperimentError
from .records import RunRecord, SweepReport
from .scenarios import scenario_config, scenario_spec

__all__ = [
    "SweepPoint",
    "SweepRunner",
    "sweep_grid",
    "smoke_sweep_points",
    "derived_pad_waste",
]

#: Engines whose runs can share a batched launch. The sequential engine is
#: scalar by construction and the tiled engine carries per-run tile state.
BATCHABLE_ENGINES = ("vectorized",)

#: Clamp bounds on the derived padded-slot ceiling: never pack so tightly
#: that padding is effectively forbidden (floor) and never accept a batch
#: that is mostly dead slots (ceiling).
MIN_PAD_WASTE = 0.05
MAX_PAD_WASTE_CEILING = 0.5


def derived_pad_waste(config, max_lanes: int) -> float:
    """Default ``max_pad_waste`` from the cost model's dispatch overhead.

    Fusing ``L`` lanes into one padded batch removes ``(L - 1) / L`` of
    the per-lane kernel-dispatch overhead, but drags the padded dead slots
    through every whole-array stage. With ``f`` the modelled
    dispatch-overhead fraction of one step at this scenario's scale
    (:func:`repro.cuda.costmodel.dispatch_overhead_fraction`), dead work
    breaks even with the saved dispatch at a padded-slot fraction of
    ``(L - 1) / L * f / (1 - f)`` — beyond that the padding costs more
    than the amortisation saves. Tiny dispatch-dominated scenarios
    therefore get a loose bound (clamped at 0.5) and paper-scale
    compute-dominated ones a tight bound (clamped at 0.05).
    """
    f = dispatch_overhead_fraction(
        config.total_agents, config.model_name, (config.height, config.width)
    )
    f = min(f, 0.99)
    lanes = max(2, int(max_lanes))
    bound = (lanes - 1) / lanes * f / (1.0 - f)
    return min(MAX_PAD_WASTE_CEILING, max(MIN_PAD_WASTE, bound))

#: Worker-pool start method, chosen explicitly: ``fork`` is deprecated in
#: the presence of threads on CPython 3.12 and stops being the POSIX
#: default in 3.14, so relying on the platform default is a time bomb.
#: ``forkserver`` (the new POSIX default) where available, ``spawn``
#: elsewhere — both work because the work units pickle cleanly.
_MP_START_METHOD = (
    "forkserver"
    if "forkserver" in multiprocessing.get_all_start_methods()
    else "spawn"
)


@dataclass(frozen=True)
class SweepPoint:
    """One requested run of the sweep grid."""

    scenario_index: int
    model: str = "lem"
    engine: str = "vectorized"
    seed: int = 0
    scale: str = "standard"
    #: Optional step-budget override (timing studies shorten runs).
    steps: Optional[int] = None

    def __post_init__(self) -> None:
        if self.scenario_index < 1:
            raise ExperimentError(
                f"scenario_index must be >= 1 (the paper's scenarios are "
                f"1-based), got {self.scenario_index}"
            )

    @property
    def batch_key(self) -> Tuple:
        """Runs sharing this key differ only in their seed."""
        return (self.scenario_index, self.model, self.engine, self.scale, self.steps)

    @property
    def pad_key(self) -> Tuple:
        """Runs sharing this key can fuse into one *padded* batch."""
        return (self.model, self.engine, self.scale, self.steps)

    def config(self):
        """The scaled :class:`~repro.config.SimulationConfig` for this point."""
        cfg = scenario_config(
            scenario_spec(self.scenario_index),
            model=self.model,
            scale=self.scale,
            seed=self.seed,
        )
        if self.steps is not None:
            cfg = cfg.replace(steps=int(self.steps))
        return cfg


def sweep_grid(
    scenario_indices: Sequence[int],
    seeds: Sequence[int],
    models: Sequence[str] = ("lem",),
    engines: Sequence[str] = ("vectorized",),
    scale: str = "standard",
    steps: Optional[int] = None,
) -> List[SweepPoint]:
    """Expand a full factorial grid, scenario-major then model/engine/seed."""
    return [
        SweepPoint(
            scenario_index=k,
            model=model,
            engine=engine,
            seed=seed,
            scale=scale,
            steps=steps,
        )
        for k in scenario_indices
        for model in models
        for engine in engines
        for seed in seeds
    ]


def smoke_sweep_points() -> List[SweepPoint]:
    """The CI smoke grid: 2 scenarios x 2 models x 2 seeds on the tiny scale."""
    return sweep_grid(
        scenario_indices=(1, 2),
        seeds=(0, 1),
        models=("lem", "aco"),
        engines=("vectorized",),
        scale="tiny",
    )


# ----------------------------------------------------------------------
# Work units (module-level so they pickle into pool workers)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _WorkUnit:
    """A batch of same-config seeds, a padded mixed batch, or a solo run."""

    point: SweepPoint  # representative point (seed = first of ``seeds``)
    seeds: Tuple[int, ...]
    batched: bool
    record_timeline: bool = False
    #: Positions of each lane in the caller's requested point list,
    #: aligned with ``seeds``. Records are keyed back by these.
    indices: Tuple[int, ...] = ()
    #: Per-lane points for padded heterogeneous batches; ``None`` when all
    #: lanes share ``point``'s config.
    points: Optional[Tuple[SweepPoint, ...]] = None
    #: Array-backend override applied to every lane config (None = as-is).
    backend: Optional[str] = None


def _unit_cost(unit: _WorkUnit) -> int:
    """Real work of a unit in agent-steps (padding slots excluded).

    This is the pool-scheduling weight: a padded batch's cost is the sum
    of its lanes' *real* populations, not ``lane count x pad target``, so
    a worker that drew the large-lane batch is charged accordingly.
    """
    if unit.points is not None:
        configs = [p.config() for p in unit.points]
    else:
        configs = [unit.point.config()] * len(unit.seeds)
    return sum(c.total_agents * c.steps for c in configs)


def _record_from(point: SweepPoint, cfg, seed: int, result, wall: float) -> RunRecord:
    return RunRecord(
        scenario_index=point.scenario_index,
        total_agents=cfg.total_agents,
        model=point.model,
        engine=point.engine,
        seed=seed,
        steps=result.steps_run,
        throughput=result.throughput_total,
        wall_seconds=wall,
    )


def _unit_config(unit: _WorkUnit, point: SweepPoint):
    """A point's config with the unit's backend override applied."""
    cfg = point.config()
    if unit.backend is not None:
        cfg = cfg.replace(backend=unit.backend)
    return cfg


def _execute_unit(unit: _WorkUnit) -> List[RunRecord]:
    """Run one work unit; one record per lane, in ``unit.seeds`` order."""
    records: List[RunRecord] = []
    if unit.points is not None:
        # Padded heterogeneous batch: one config per lane.
        configs = [_unit_config(unit, p) for p in unit.points]
        out = run_batched(configs, unit.seeds, record_timeline=unit.record_timeline)
        per_lane_wall = out.wall_seconds_per_lane
        for point, cfg, seed, result in zip(
            unit.points, configs, unit.seeds, out.results
        ):
            records.append(_record_from(point, cfg, seed, result, per_lane_wall))
    elif unit.batched and len(unit.seeds) > 1:
        point = unit.point
        cfg = _unit_config(unit, point)
        out = run_batched(cfg, unit.seeds, record_timeline=unit.record_timeline)
        per_lane_wall = out.wall_seconds_per_lane
        for seed, result in zip(unit.seeds, out.results):
            records.append(_record_from(point, cfg, seed, result, per_lane_wall))
    else:
        point = unit.point
        cfg = _unit_config(unit, point)
        for seed in unit.seeds:
            out = run_simulation(
                cfg.replace(seed=seed),
                engine=point.engine,
                record_timeline=unit.record_timeline,
            )
            records.append(
                _record_from(point, cfg, seed, out.result, out.wall_seconds)
            )
    return records


class SweepRunner:
    """Execute a list of :class:`SweepPoint` via batched lanes + a pool.

    Parameters
    ----------
    max_lanes:
        Upper bound on replications per batched launch. ``1`` disables
        batching entirely (every run is a solo engine — use for timing).
    processes:
        Worker processes for heterogeneous work units. ``1`` (default)
        executes inline; larger values use a ``multiprocessing`` pool
        (explicitly started via the forward-compatible
        ``forkserver``/``spawn`` method, never the deprecated ``fork``).
    record_timeline:
        Forwarded to the engines; sweeps usually only need totals.
    pad_lanes:
        Fuse points that differ only in their scenario into padded
        heterogeneous batches (same model/engine/scale/steps). Lanes pack
        largest-population-first; a batch stops growing once padding would
        exceed the waste ceiling of its agent slots.
    max_pad_waste:
        Ceiling on the padded-slot fraction of a mixed batch, in [0, 1).
        ``None`` (default) derives the ceiling per pad pool from the cost
        model's dispatch-overhead estimate (:func:`derived_pad_waste`) —
        loose for tiny dispatch-bound scenarios, tight at paper scale.
    backend:
        Array-backend name applied to every executed config ("numpy",
        "cupy", ...). ``None`` leaves each point's config untouched. The
        runner resolves the name up front, so an unavailable backend
        fails fast with :class:`~repro.errors.BackendUnavailableError`
        instead of inside a pool worker.
    """

    def __init__(
        self,
        max_lanes: int = 8,
        processes: int = 1,
        record_timeline: bool = False,
        pad_lanes: bool = False,
        max_pad_waste: Optional[float] = None,
        backend: Optional[str] = None,
    ) -> None:
        if max_lanes < 1:
            raise ExperimentError(f"max_lanes must be >= 1, got {max_lanes}")
        if processes < 1:
            raise ExperimentError(f"processes must be >= 1, got {processes}")
        if max_pad_waste is not None and not (0.0 <= max_pad_waste < 1.0):
            raise ExperimentError(
                f"max_pad_waste must be in [0, 1), got {max_pad_waste}"
            )
        self.max_lanes = int(max_lanes)
        self.processes = int(processes)
        self.record_timeline = bool(record_timeline)
        self.pad_lanes = bool(pad_lanes)
        self.max_pad_waste = None if max_pad_waste is None else float(max_pad_waste)
        self.backend = None if backend is None else str(backend)
        if self.backend is not None:
            resolve_backend(self.backend)

    # ------------------------------------------------------------------
    def plan(self, points: Sequence[SweepPoint]) -> List[_WorkUnit]:
        """Group points into batched / padded / solo work units.

        Points sharing a full batch key on a batchable engine pack into
        lanes of at most ``max_lanes`` seeds. A seed repeated *within* a
        key cannot share that key's batch (the batched engine requires
        distinct (config, seed) lanes), so only the duplicate occurrences
        fall back to solo runs — the distinct seeds still batch. With
        ``pad_lanes`` enabled, lanes from different scenarios of the same
        ``pad_key`` additionally fuse into padded batches under the
        ``max_pad_waste`` bound.
        """
        groups: Dict[Tuple, List[Tuple[int, SweepPoint]]] = {}
        order: List[Tuple] = []
        for i, p in enumerate(points):
            key = p.batch_key
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append((i, p))

        units: List[_WorkUnit] = []
        pools: Dict[Tuple, List[Tuple[int, SweepPoint]]] = {}
        pool_order: List[Tuple] = []

        def solo(member: Tuple[int, SweepPoint]) -> _WorkUnit:
            i, p = member
            return _WorkUnit(
                point=p,
                seeds=(p.seed,),
                batched=False,
                record_timeline=self.record_timeline,
                indices=(i,),
                backend=self.backend,
            )

        for key in order:
            members = groups[key]
            rep = members[0][1]
            eligible = rep.engine in BATCHABLE_ENGINES and self.max_lanes > 1
            if not eligible:
                units.extend(solo(m) for m in members)
                continue
            # First occurrence of each seed is batchable; repeats are not.
            seen: set = set()
            firsts: List[Tuple[int, SweepPoint]] = []
            dups: List[Tuple[int, SweepPoint]] = []
            for member in members:
                if member[1].seed in seen:
                    dups.append(member)
                else:
                    seen.add(member[1].seed)
                    firsts.append(member)
            if self.pad_lanes:
                pad_key = rep.pad_key
                if pad_key not in pools:
                    pools[pad_key] = []
                    pool_order.append(pad_key)
                pools[pad_key].extend(firsts)
            elif len(firsts) >= 2:
                for start in range(0, len(firsts), self.max_lanes):
                    chunk = firsts[start : start + self.max_lanes]
                    units.append(
                        _WorkUnit(
                            point=chunk[0][1],
                            seeds=tuple(p.seed for _, p in chunk),
                            batched=len(chunk) > 1,
                            record_timeline=self.record_timeline,
                            indices=tuple(i for i, _ in chunk),
                            backend=self.backend,
                        )
                    )
            else:
                dups = firsts + dups
            units.extend(solo(m) for m in dups)

        for pad_key in pool_order:
            units.extend(self._pack_padded(pools[pad_key]))
        return units

    # ------------------------------------------------------------------
    def _pack_padded(
        self, members: List[Tuple[int, SweepPoint]]
    ) -> List[_WorkUnit]:
        """Pack one pad-key pool into padded batches under the waste bound.

        Lanes sort largest-population-first (stable by request order), so
        each greedy chunk pads against its own first lane; the chunk closes
        when it is full or admitting the next lane would push the padded
        agent-slot fraction past the waste ceiling. An explicit
        ``max_pad_waste`` wins; otherwise the ceiling derives from the
        cost model's dispatch-overhead estimate at the pool's largest
        scenario (:func:`derived_pad_waste`).
        """
        agents_of: Dict[int, int] = {}
        sized = []
        for i, p in members:
            if p.scenario_index not in agents_of:
                agents_of[p.scenario_index] = p.config().total_agents
            sized.append((i, p, agents_of[p.scenario_index]))
        sized.sort(key=lambda t: (-t[2], t[0]))

        waste_bound = self.max_pad_waste
        if waste_bound is None:
            waste_bound = derived_pad_waste(sized[0][1].config(), self.max_lanes)

        units: List[_WorkUnit] = []

        def emit(chunk: List[Tuple[int, SweepPoint, int]]) -> None:
            if not chunk:
                return
            rep = chunk[0][1]
            homogeneous = all(p.batch_key == rep.batch_key for _, p, _ in chunk)
            units.append(
                _WorkUnit(
                    point=rep,
                    seeds=tuple(p.seed for _, p, _ in chunk),
                    batched=len(chunk) > 1,
                    record_timeline=self.record_timeline,
                    indices=tuple(i for i, _, _ in chunk),
                    points=None
                    if homogeneous
                    else tuple(p for _, p, _ in chunk),
                    backend=self.backend,
                )
            )

        chunk: List[Tuple[int, SweepPoint, int]] = []
        filled = 0
        for atom in sized:
            if chunk:
                slot = chunk[0][2]  # pad target: the chunk's largest lane
                waste = 1.0 - (filled + atom[2]) / ((len(chunk) + 1) * slot)
                if len(chunk) >= self.max_lanes or waste > waste_bound:
                    emit(chunk)
                    chunk = []
                    filled = 0
            chunk.append(atom)
            filled += atom[2]
        emit(chunk)
        return units

    # ------------------------------------------------------------------
    def run(self, points: Sequence[SweepPoint]) -> List[RunRecord]:
        """Execute every point; records return in the requested order."""
        points = list(points)
        units = self.plan(points)
        if self.processes > 1 and len(units) > 1:
            # Padding-aware pool scheduling: dispatch heaviest-first by
            # *real* agent-steps (LPT). A padded batch's weight is the sum
            # of its lanes' real populations — lane count alone would let
            # one worker absorb every large-lane batch while the others
            # drain small fry; chunksize=1 keeps the greedy assignment.
            order = sorted(
                range(len(units)), key=lambda i: (-_unit_cost(units[i]), i)
            )
            ctx = multiprocessing.get_context(_MP_START_METHOD)
            with ctx.Pool(self.processes) as pool:
                dispatched = pool.map(
                    _execute_unit, [units[i] for i in order], chunksize=1
                )
            unit_records: List[List[RunRecord]] = [None] * len(units)
            for i, records in zip(order, dispatched):
                unit_records[i] = records
        else:
            unit_records = [_execute_unit(u) for u in units]

        # Key by request position, not by (batch_key, seed): duplicated
        # points each keep their own record and wall time.
        by_index: Dict[int, RunRecord] = {}
        for unit, records in zip(units, unit_records):
            for idx, record in zip(unit.indices, records):
                by_index[idx] = record
        if len(by_index) != len(points):
            raise ExperimentError(
                f"sweep plan lost runs: {len(points)} requested, "
                f"{len(by_index)} executed"
            )
        return [by_index[i] for i in range(len(points))]

    # ------------------------------------------------------------------
    def run_report(self, points: Sequence[SweepPoint]) -> SweepReport:
        """Like :meth:`run`, wrapped with grid metadata and total wall time."""
        start = time.perf_counter()
        records = self.run(points)
        elapsed = time.perf_counter() - start
        return SweepReport(
            n_points=len(records),
            max_lanes=self.max_lanes,
            processes=self.processes,
            wall_seconds=elapsed,
            records=list(records),
            pad_lanes=self.pad_lanes,
        )
