"""Simulation configuration.

:class:`SimulationConfig` captures everything needed to reproduce a run:
grid geometry, populations, the movement model and its parameters, the RNG
seed and the step budget. The paper's reference configuration is a 480x480
grid, populations from 1,280 to 51,200 per side, and 25,000 steps.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Optional

from .components.hooks import StepHook, hooks_from_specs
from .errors import ConfigurationError
from .grid.obstacles import ObstacleSpec
from .models.params import (
    LEMParams,
    ModelParams,
    params_from_dict,
    params_from_name,
    params_to_dict,
)

__all__ = ["SimulationConfig", "paper_config"]


@dataclass(frozen=True)
class SimulationConfig:
    """Full description of one bi-directional crossing simulation.

    Attributes
    ----------
    height, width:
        Grid dimensions in cells. The paper fixes 480x480 and requires
        multiples of the 16-cell tile edge for its shared-memory kernels;
        we validate the multiple-of-16 constraint only when the tiled
        engine is used (see :class:`repro.cuda.tiled_engine.TiledEngine`).
    n_per_side:
        Number of agents in each group (total agents = 2x this).
    steps:
        Number of synchronous simulation steps (paper: 25,000).
    seed:
        Philox master seed; every random decision in a run derives from it.
    params:
        Movement-model parameter bundle; its ``model_name`` selects the
        model ("lem", "aco", "random", "greedy").
    fill_fraction:
        Target occupancy of the initial placement band. The band height is
        ``ceil(n_per_side / (width * fill_fraction))`` unless ``init_rows``
        overrides it ("random but kept confined to a pre-defined number of
        rows").
    init_rows:
        Optional explicit band height in rows.
    cross_band:
        Rows from the far edge that count as "crossed" (paper: entering the
        opposite group's starting band). Defaults to the placement band.
    forward_priority:
        The paper's modification: an agent whose forward cell is empty
        targets it without evaluating eq. 1 / eq. 2.
    slow_fraction, slow_period:
        Heterogeneous-velocity extension (paper Section VII future work):
        a ``slow_fraction`` of agents, chosen by a keyed draw, may move
        only every ``slow_period``-th step. The default 0 reproduces the
        paper's constant-velocity crowds.
    backend:
        Array-backend name the engines execute on ("numpy" by default,
        "cupy" for the optional GPU path). The name is resolved through
        :func:`repro.backend.resolve_backend` when an engine is built, so
        a config naming an uninstalled backend stays constructible — only
        running it raises :class:`~repro.errors.BackendUnavailableError`.
        Trajectories are bit-identical across backends (keyed integer
        Philox randomness + transcendental-free decision arithmetic).
    """

    height: int = 480
    width: int = 480
    n_per_side: int = 1280
    steps: int = 25000
    seed: int = 0
    params: ModelParams = field(default_factory=LEMParams)
    fill_fraction: float = 0.8
    init_rows: Optional[int] = None
    cross_band: Optional[int] = None
    forward_priority: bool = True
    slow_fraction: float = 0.0
    slow_period: int = 2
    #: Optional static obstacle layout (walls, bottlenecks, pillars).
    obstacles: Optional[ObstacleSpec] = None
    #: Array backend the engines run on ("numpy" | "cupy" | registered name).
    backend: str = "numpy"
    #: Optional named-scenario label ("family:arg", see
    #: :mod:`repro.components.scenarios`). Part of the wire format and the
    #: cache digest when set; ``None`` (legacy index-driven configs) keeps
    #: pre-existing digests unchanged.
    scenario: Optional[str] = None
    #: Scheduled engine mutations (:class:`repro.components.hooks.StepHook`),
    #: applied deterministically before their firing step by every engine,
    #: per-lane in the batched engine. Empty for plain runs (and then
    #: omitted from the wire format, keeping pre-existing digests).
    hooks: tuple = ()

    def __post_init__(self) -> None:
        if self.height < 4 or self.width < 4:
            raise ConfigurationError(
                f"grid must be at least 4x4, got {self.height}x{self.width}"
            )
        if self.n_per_side < 1:
            raise ConfigurationError(
                f"n_per_side must be positive, got {self.n_per_side}"
            )
        if self.steps < 0:
            raise ConfigurationError(f"steps must be >= 0, got {self.steps}")
        if not (0.0 < self.fill_fraction <= 1.0):
            raise ConfigurationError(
                f"fill_fraction must be in (0, 1], got {self.fill_fraction}"
            )
        if not isinstance(self.params, ModelParams):
            raise ConfigurationError(
                f"params must be a ModelParams bundle, got {type(self.params)!r}"
            )
        self.params.validate()
        band = self.band_rows
        if band > self.height // 2:
            raise ConfigurationError(
                f"placement band of {band} rows per side does not fit a grid of "
                f"height {self.height}; reduce n_per_side or raise fill_fraction"
            )
        if self.n_per_side > band * self.width:
            raise ConfigurationError(
                f"cannot place {self.n_per_side} agents in a band of "
                f"{band}x{self.width} cells"
            )
        cross = self.cross_rows
        if not (1 <= cross <= self.height // 2):
            raise ConfigurationError(
                f"cross_band must be in [1, {self.height // 2}], got {cross}"
            )
        if not (0.0 <= self.slow_fraction <= 1.0):
            raise ConfigurationError(
                f"slow_fraction must be in [0, 1], got {self.slow_fraction}"
            )
        if self.slow_period < 2:
            raise ConfigurationError(
                f"slow_period must be >= 2, got {self.slow_period}"
            )
        if self.obstacles is not None:
            if not isinstance(self.obstacles, ObstacleSpec):
                raise ConfigurationError(
                    f"obstacles must be an ObstacleSpec, got {type(self.obstacles)!r}"
                )
            self.obstacles.validate()
        if not isinstance(self.backend, str) or not self.backend:
            raise ConfigurationError(
                f"backend must be a non-empty backend name, got {self.backend!r}"
            )
        if self.scenario is not None:
            if not isinstance(self.scenario, str) or not self.scenario.strip():
                raise ConfigurationError(
                    f"scenario must be a non-empty name or None, "
                    f"got {self.scenario!r}"
                )
        if not isinstance(self.hooks, tuple):
            # Lists arrive from callers assembling hooks incrementally;
            # coerce so the config stays hashable (cache/pad keys).
            object.__setattr__(self, "hooks", tuple(self.hooks))
        for hook in self.hooks:
            if not isinstance(hook, StepHook):
                raise ConfigurationError(
                    f"hooks must contain StepHook components, got {hook!r}"
                )
            hook.validate()

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def model_name(self) -> str:
        """Name of the movement model ("lem", "aco", ...)."""
        return self.params.model_name

    @property
    def band_rows(self) -> int:
        """Height in rows of each group's initial placement band."""
        if self.init_rows is not None:
            if self.init_rows < 1:
                raise ConfigurationError(
                    f"init_rows must be positive, got {self.init_rows}"
                )
            return self.init_rows
        return max(1, math.ceil(self.n_per_side / (self.width * self.fill_fraction)))

    @property
    def cross_rows(self) -> int:
        """Rows from the far edge that count as having crossed."""
        return self.cross_band if self.cross_band is not None else self.band_rows

    @property
    def total_agents(self) -> int:
        """Total number of agents in the environment (both groups)."""
        return 2 * self.n_per_side

    @property
    def density(self) -> float:
        """Fraction of grid cells initially occupied."""
        return self.total_agents / float(self.height * self.width)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def replace(self, **changes) -> "SimulationConfig":
        """Return a copy with ``changes`` applied, revalidated."""
        return dataclasses.replace(self, **changes)

    def with_model(self, name_or_params) -> "SimulationConfig":
        """Return a copy running a different movement model.

        Accepts a model name ("lem", "aco", "random", "greedy") or a
        :class:`~repro.models.params.ModelParams` bundle.
        """
        if isinstance(name_or_params, ModelParams):
            params = name_or_params
        else:
            params = params_from_name(str(name_or_params))
        return self.replace(params=params)

    def scaled(
        self,
        divisor: int,
        *,
        time_scaling: str = "diffusive",
        steps_override: Optional[int] = None,
    ) -> "SimulationConfig":
        """Scale the scenario down by a linear ``divisor``.

        Grid edges shrink by ``divisor`` and populations by ``divisor**2``
        (constant density). The step budget scales according to
        ``time_scaling``:

        * ``"diffusive"`` (default) — ``steps / height**2`` is preserved.
          Transport through jammed bi-directional crowds is diffusive, so
          the time for a jam-limited crossing grows with the *square* of
          the grid height; preserving the diffusive time scale keeps the
          density knees of Figure 6a at the paper's positions on scaled
          grids (calibrated empirically, see EXPERIMENTS.md).
        * ``"ballistic"`` — ``steps / height`` (the number of free-flow
          crossing times, 25,000/480 ≈ 52 in the paper) is preserved.
          Appropriate for low densities where transport stays ballistic.

        ``steps_override`` forces an explicit step budget.
        """
        if divisor < 1:
            raise ConfigurationError(f"divisor must be >= 1, got {divisor}")
        height = max(4, self.height // divisor)
        width = max(4, self.width // divisor)
        if steps_override is not None:
            steps = int(steps_override)
        elif time_scaling == "diffusive":
            steps = int(round(self.steps * (height / self.height) ** 2))
        elif time_scaling == "ballistic":
            steps = int(round(self.steps * (height / self.height)))
        else:
            raise ConfigurationError(
                f"time_scaling must be 'diffusive' or 'ballistic', got {time_scaling!r}"
            )
        return self.replace(
            height=height,
            width=width,
            n_per_side=max(1, self.n_per_side // (divisor * divisor)),
            steps=max(1, steps),
        )

    # ------------------------------------------------------------------
    # Wire format (job specs, result cache keys)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict capturing the full configuration.

        The inverse of :meth:`from_dict`; the serving layer ships job
        specs through this and the content-addressed result cache hashes
        it (:func:`repro.io.config_digest`). ``params`` carries its
        ``model_name`` explicitly (it is a class attribute, not a
        dataclass field) so the bundle class can be rebuilt. ``scenario``
        and ``hooks`` are emitted only when set — configs without them
        serialize (and therefore digest) exactly as before they existed.
        """
        params = params_to_dict(self.params)
        out = {
            "height": self.height,
            "width": self.width,
            "n_per_side": self.n_per_side,
            "steps": self.steps,
            "seed": self.seed,
            "params": params,
            "fill_fraction": self.fill_fraction,
            "init_rows": self.init_rows,
            "cross_band": self.cross_band,
            "forward_priority": self.forward_priority,
            "slow_fraction": self.slow_fraction,
            "slow_period": self.slow_period,
            "obstacles": None,
            "backend": self.backend,
        }
        if self.obstacles is not None:
            obstacles = dataclasses.asdict(self.obstacles)
            obstacles["rects"] = [list(r) for r in self.obstacles.rects]
            out["obstacles"] = obstacles
        if self.scenario is not None:
            out["scenario"] = self.scenario
        if self.hooks:
            out["hooks"] = [hook.to_dict() for hook in self.hooks]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationConfig":
        """Rebuild a config from :meth:`to_dict` output (revalidated).

        Accepts plain JSON-decoded dicts (tuples arrive as lists) and
        raises :class:`~repro.errors.ConfigurationError` on unknown
        fields, unknown model names or invalid values — the error class
        the CLI and HTTP layers already map to clean failures.
        """
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"config spec must be a JSON object, got {type(data).__name__}"
            )
        payload = dict(data)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown config fields {sorted(unknown)}; expected a subset "
                f"of {sorted(known)}"
            )
        params_spec = payload.pop("params", None)
        if params_spec is not None:
            payload["params"] = params_from_dict(params_spec)
        hooks_spec = payload.pop("hooks", None)
        if hooks_spec is not None:
            payload["hooks"] = hooks_from_specs(hooks_spec)
        obstacles_spec = payload.pop("obstacles", None)
        if obstacles_spec is not None:
            if not isinstance(obstacles_spec, dict):
                raise ConfigurationError(
                    f"obstacles must be an object, got {type(obstacles_spec).__name__}"
                )
            obstacles_spec = dict(obstacles_spec)
            obstacles_spec["rects"] = tuple(
                tuple(int(v) for v in rect)
                for rect in obstacles_spec.get("rects", ())
            )
            try:
                payload["obstacles"] = ObstacleSpec(**obstacles_spec)
            except TypeError as exc:
                raise ConfigurationError(f"bad obstacle spec: {exc}") from None
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ConfigurationError(f"bad config spec: {exc}") from None

    def describe(self) -> str:
        """One-line human-readable description of the configuration."""
        return (
            f"{self.model_name.upper()} on {self.height}x{self.width}, "
            f"{self.n_per_side} agents/side ({self.density:.1%} density), "
            f"{self.steps} steps, band={self.band_rows}, seed={self.seed}"
        )


def paper_config(
    total_agents: int = 2560,
    model: str = "lem",
    *,
    steps: int = 25000,
    seed: int = 0,
) -> SimulationConfig:
    """The paper's reference configuration for a given total population.

    ``total_agents`` is split evenly between the two groups ("equal numbers
    of individuals"), on the fixed 480x480 environment.

    >>> cfg = paper_config(2560)
    >>> (cfg.height, cfg.width, cfg.n_per_side)
    (480, 480, 1280)
    """
    if total_agents % 2:
        raise ConfigurationError(
            f"total_agents must be even (equal groups), got {total_agents}"
        )
    cfg = SimulationConfig(
        height=480,
        width=480,
        n_per_side=total_agents // 2,
        steps=steps,
        seed=seed,
    )
    return cfg.with_model(model)
