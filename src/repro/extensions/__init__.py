"""Extensions implementing the paper's Section VII future-work items.

* :class:`PanicAlarm` — crisis-mode model swap at a trigger step;
* heterogeneous velocities live in the core config
  (``SimulationConfig.slow_fraction`` / ``slow_period``) because they gate
  the engines' tour-construction stage directly.
"""

from .panic import PanicAlarm, panic_variant

__all__ = ["PanicAlarm", "panic_variant"]
