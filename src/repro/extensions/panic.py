"""Panic alarm — the paper's Section VII crisis extension.

"Another objective is to introduce a panic alarm to emulate some sort of
crisis situation." The scheduled model swap itself now lives in the
component framework as :class:`repro.components.hooks.PanicHook` — a
frozen config component every engine honours, including per-lane inside
:class:`~repro.engine.batched.BatchedEngine` and padded sweeps. Prefer
``config.replace(hooks=(PanicHook(trigger_step=...),))`` for new code.

This module keeps the legacy callback form, :class:`PanicAlarm`: a
mutable run callback attached via ``engine.run(callback=...)``. It only
reaches the solo engines (the batched engine's callback receives per-lane
count arrays, not a swappable engine), which is exactly the gap the hook
component closes.

Because the swap is a deterministic function of the step, the engine
equivalence invariant is preserved: sequential and vectorized engines with
the same alarm produce bit-identical trajectories (tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..components.hooks import panic_variant
from ..engine.base import BaseEngine, StepReport
from ..errors import ConfigurationError
from ..models.params import ModelParams

__all__ = ["PanicAlarm", "panic_variant"]


@dataclass
class PanicAlarm:
    """Engine run callback that swaps movement parameters at a step.

    >>> alarm = PanicAlarm(trigger_step=100)            # doctest: +SKIP
    >>> engine.run(callback=alarm)                      # doctest: +SKIP

    ``panic_params`` defaults to :func:`panic_variant` of the engine's
    configured parameters at trigger time. Compose with other callbacks by
    calling each in your own hook. For batched engines and padded sweeps
    use :class:`repro.components.hooks.PanicHook` instead — this callback
    form never sees a swappable engine there.
    """

    trigger_step: int
    panic_params: Optional[ModelParams] = None
    #: Set to the trigger step once fired.
    fired_at: Optional[int] = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.trigger_step < 0:
            raise ConfigurationError(
                f"trigger_step must be >= 0, got {self.trigger_step}"
            )
        if self.panic_params is not None:
            self.panic_params.validate()

    @property
    def fired(self) -> bool:
        """True once the alarm has gone off."""
        return self.fired_at is not None

    def __call__(self, engine: BaseEngine, report: StepReport) -> None:
        """Fire after the step preceding ``trigger_step`` completes."""
        if self.fired or report.step + 1 < self.trigger_step:
            return
        params = self.panic_params
        if params is None:
            params = panic_variant(engine.config.params)
        engine.swap_model(params)
        self.fired_at = report.step + 1
