"""Panic alarm — the paper's Section VII crisis extension.

"Another objective is to introduce a panic alarm to emulate some sort of
crisis situation." This module implements it as a scheduled model swap: at
the trigger step every agent switches to "panicked" movement parameters.
The panicked LEM stops waiting (the ``ceil`` always-move rule with an
aggressive draw); the panicked ACO weighs the goal heuristic harder and
lets trails evaporate faster (stampedes break lane discipline).

Because the swap is a deterministic function of the step, the engine
equivalence invariant is preserved: sequential and vectorized engines with
the same alarm produce bit-identical trajectories (tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..engine.base import BaseEngine, StepReport
from ..errors import ConfigurationError
from ..models.params import ACOParams, LEMParams, ModelParams

__all__ = ["PanicAlarm", "panic_variant"]


def panic_variant(params: ModelParams) -> ModelParams:
    """Default "panicked" counterpart of a parameter bundle.

    * LEM: the waiting behaviour disappears — agents always take the best
      reachable cell (``ceil`` rule, draw pinned near the top score);
    * ACO: goal-seeking dominates the trail (beta up) and trails decay
      fast (rho up) — panicking crowds stop following predecessors.
    """
    if isinstance(params, LEMParams):
        return params.replace(rule="ceil", mu=1.0, sigma=0.25)
    if isinstance(params, ACOParams):
        return params.replace(beta=max(3.0, params.beta), rho=min(1.0, params.rho * 5))
    raise ConfigurationError(
        f"no default panic variant for {type(params).__name__}; pass one explicitly"
    )


@dataclass
class PanicAlarm:
    """Engine run callback that swaps movement parameters at a step.

    >>> alarm = PanicAlarm(trigger_step=100)            # doctest: +SKIP
    >>> engine.run(callback=alarm)                      # doctest: +SKIP

    ``panic_params`` defaults to :func:`panic_variant` of the engine's
    configured parameters at trigger time. Compose with other callbacks by
    calling each in your own hook.
    """

    trigger_step: int
    panic_params: Optional[ModelParams] = None
    #: Set to the trigger step once fired.
    fired_at: Optional[int] = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.trigger_step < 0:
            raise ConfigurationError(
                f"trigger_step must be >= 0, got {self.trigger_step}"
            )
        if self.panic_params is not None:
            self.panic_params.validate()

    @property
    def fired(self) -> bool:
        """True once the alarm has gone off."""
        return self.fired_at is not None

    def __call__(self, engine: BaseEngine, report: StepReport) -> None:
        """Fire after the step preceding ``trigger_step`` completes."""
        if self.fired or report.step + 1 < self.trigger_step:
            return
        params = self.panic_params
        if params is None:
            params = panic_variant(engine.config.params)
        engine.swap_model(params)
        self.fired_at = report.step + 1
