"""Whole-array data-parallel engine — the GPU stand-in.

Each NumPy array lane plays the role of one CUDA thread: the scan and tour
construction stages vectorize over agents (the paper launches 8x agents
threads for tour construction; we fuse the 8 slot lanes into the trailing
axis), and the movement stage vectorizes over grid cells exactly like the
paper's per-cell movement kernel. All stages read only the synchronous
state from the start of the step, so the semantics match a kernel launch
boundary.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..agents.population import NO_FUTURE
from ..rng import Stream
from ..types import Group
from .base import ABS_STEP_COSTS, BaseEngine
from ..grid.neighborhood import ABSOLUTE_OFFSETS
from .conflict import shift, winner_rank

__all__ = ["VectorizedEngine"]


class VectorizedEngine(BaseEngine):
    """Data-parallel engine over whole-grid / whole-population arrays."""

    platform = "vectorized"

    def __init__(self, config, seed: Optional[int] = None) -> None:
        super().__init__(config, seed)
        h, w = self.env.shape
        rows, cols = self.xp.indices((h, w))
        self._rowgrid = rows.astype(np.int64)
        self._colgrid = cols.astype(np.int64)

    # ------------------------------------------------------------------
    # Stage 1: initial calculation (per-agent scan)
    # ------------------------------------------------------------------
    def _stage_scan(self, t: int) -> None:
        # One fused launch over the concatenated TOP+BOTTOM rows: the
        # per-group offset/distance/pheromone tables are gathered through
        # the ``[gslot, ...]`` stacks, and the model kernel (row-independent
        # by construction) sees both groups in one call.
        xp = self.xp
        env, pop = self.env, self.pop
        h, w = env.shape
        mat = env.mat
        idx = self._fused_idx
        if idx.size == 0:
            return
        gslot = self._fused_gslot
        rows = pop.rows[idx]
        cols = pop.cols[idx]
        off = self._offsets_stack[gslot]  # (N, 8, 2)
        nr = rows[:, None] + off[:, :, 0]
        nc = cols[:, None] + off[:, :, 1]
        inb = (nr >= 0) & (nr < h) & (nc >= 0) & (nc < w)
        # nr/nc are fresh operator results and unneeded unclipped once the
        # bounds mask exists, so the clips run in place (no allocation).
        nrc = xp.clip(nr, 0, h - 1, out=nr)
        ncc = xp.clip(nc, 0, w - 1, out=nc)
        candidates = inb & (mat[nrc, ncc] == 0)
        dist = self._dist_stack[gslot, rows]  # (N, 8)
        tau = None
        if self.pher is not None:
            tau = self.pher.stack[gslot[:, None], nrc, ncc]
        self.scan[idx] = self.model.scan_values(dist, candidates, tau)
        pop.front_empty[idx] = candidates[:, 0]

    # ------------------------------------------------------------------
    # Stage 2: tour construction (per-agent decision)
    # ------------------------------------------------------------------
    def _stage_select(self, t: int) -> int:
        # Fused tour construction: one model.select over both groups (the
        # RNG keys each row by its agent index, so the draws match the
        # per-group passes exactly). The decided count stays on-device —
        # the base step() syncs it once at the recording boundary.
        xp = self.xp
        pop = self.pop
        idx = self._fused_idx
        if idx.size == 0:
            return 0
        slots = self.model.select(self.scan[idx], self.rng, t, idx)
        if self.config.forward_priority:
            # Paper modification: the forward cell, when empty, wins
            # outright (slot 0 in 0-based numbering). ``slots`` is fresh
            # from the model kernel, so the override writes in place.
            slots[pop.front_empty[idx]] = 0
        if self._any_slow:
            valid = (slots >= 0) & self.eligible_mask(t)[idx]
        else:
            # Homogeneous velocities (the default): everyone is eligible,
            # so the all-true mask and its gather are dead dispatches.
            valid = slots >= 0
        invalid = ~valid
        # In-place masked writes on the fresh intermediates replace three
        # xp.where calls; the resulting values are identical element-wise.
        slots[invalid] = 0
        off = self._offsets_stack[self._fused_gslot, slots]  # (N, 2)
        fr = pop.rows[idx] + off[:, 0]
        fc = pop.cols[idx] + off[:, 1]
        fr[invalid] = NO_FUTURE
        fc[invalid] = NO_FUTURE
        pop.future_rows[idx] = fr
        pop.future_cols[idx] = fc
        return xp.count_nonzero(valid)

    # ------------------------------------------------------------------
    # Stage 3: movement (per-cell scatter-to-gather)
    # ------------------------------------------------------------------
    def _stage_move(self, t: int) -> int:
        xp = self.xp
        env, pop = self.env, self.pop
        h, w = env.shape
        mat, index = env.mat, env.index

        if self.pher is not None:
            self.pher.evaporate()

        empty = mat == 0
        # Fixed-shape per-step temporaries come from the engine's scratch
        # arena: zero allocating dispatches once warm, identical contents
        # (every buffer is fully overwritten before it is read).
        counts = self.scratch.take_filled("mv.counts", (h, w), np.int16, 0)
        nbuf = self.scratch.take("mv.shift", index.shape, index.dtype)
        matches: List[np.ndarray] = []
        for dr, dc in ABSOLUTE_OFFSETS:
            nidx = shift(index, dr, dc, fill=0, xp=xp, out=nbuf)
            fr = pop.future_rows[nidx]  # sentinel row 0 carries NO_FUTURE
            fc = pop.future_cols[nidx]
            match = empty & (nidx > 0) & (fr == self._rowgrid) & (fc == self._colgrid)
            matches.append(match)
            counts += match
        contested_r, contested_c = xp.nonzero(counts > 0)
        if contested_r.size == 0:
            return 0

        lanes = env.cell_lane(contested_r, contested_c)
        u = self.rng.uniform(Stream.MOVE_WINNER, t, lanes)
        pick = winner_rank(u, counts[contested_r, contested_c], xp=xp)
        pickmap = self.scratch.take_filled("mv.pickmap", (h, w), np.int64, -1)
        pickmap[contested_r, contested_c] = pick

        # Second pass over the gather directions: the candidate whose
        # cumulative rank equals the cell's pick wins.
        cum = self.scratch.take_filled("mv.cum", (h, w), np.int16, 0)
        dst_rows = []
        dst_cols = []
        agents = []
        cost_runs = []
        for d, (dr, dc) in enumerate(ABSOLUTE_OFFSETS):
            match = matches[d]
            sel = match & (cum == pickmap)
            cum += match
            rr, cc = xp.nonzero(sel)
            if rr.size:
                dst_rows.append(rr)
                dst_cols.append(cc)
                agents.append(index[rr + dr, cc + dc].astype(np.int64))
                cost_runs.append((ABS_STEP_COSTS[d], int(rr.size)))
        dst_r = xp.concatenate(dst_rows)
        dst_c = xp.concatenate(dst_cols)
        winners = xp.concatenate(agents)
        # Per-direction costs are constants, so the cost vector is built by
        # slice fills into one scratch run instead of 8 fulls + concatenate.
        move_cost = self.scratch.take("mv.cost", (int(winners.size),), np.float64)
        o = 0
        for cost, size in cost_runs:
            move_cost[o : o + size] = cost
            o += size
        src_r = pop.rows[winners]
        src_c = pop.cols[winners]

        # Execute the exchanges: destinations were empty, sources occupied,
        # and the two sets are disjoint, so plain fancy indexing is safe.
        mat[dst_r, dst_c] = pop.ids[winners]
        index[dst_r, dst_c] = winners
        mat[src_r, src_c] = 0
        index[src_r, src_c] = 0
        pop.rows[winners] = dst_r
        pop.cols[winners] = dst_c
        pop.tour[winners] += move_cost

        if self.pher is not None:
            # Fused deposit: one scatter into the (2, H, W) stack covers
            # both groups (winners hold disjoint cells; the tau_max clamp
            # is idempotent) — and drops the per-group any() host syncs.
            amounts = self.params_deposit(winners)
            gslot = (pop.ids[winners] == int(Group.BOTTOM)).astype(np.int64)
            self.pher.deposit_stacked(gslot, dst_r, dst_c, amounts)
        return int(winners.size)

    def params_deposit(self, winners: np.ndarray) -> np.ndarray:
        """Eq. 5 deposit amounts ``q / L_k`` for the winning agents.

        Reads the *live* pheromone parameters so mid-run model swaps
        (panic alarm) take effect immediately.
        """
        q = self.pher.params.deposit_q
        return q / self.pop.tour[winners]
