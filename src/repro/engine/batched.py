"""Multi-replication batched engine — whole-sweep data parallelism.

:class:`VectorizedEngine` plays one GPU launch per simulation; the paper's
evaluation, however, is a 40-scenario population sweep with repeated seeds
per point, i.e. many *independent replications* of the same grid shape.
:class:`BatchedEngine` lifts the scan / select / move kernels to a leading
batch axis so ``B`` replications advance through a single set of NumPy
whole-array stages per step — the same data-parallel move the paper makes
across agents, applied across runs.

Replication lanes are fully independent: lane ``b`` draws its randomness
with the Philox key of ``seeds[b]`` (see
:class:`repro.rng.batched.BatchedPhiloxRNG`), every stage is element-wise
or row-wise per lane, and the movement scatter touches disjoint ``(lane,
cell)`` sets. Each lane is therefore **bit-identical** to a solo
:class:`VectorizedEngine` run with the same config and seed — the property
``tests/test_engine_batched.py`` pins down trajectory-for-trajectory.

Batching wins because a small-grid simulation step is dominated by the
fixed overhead of its ~50 NumPy kernel dispatches; fusing ``B``
replications into one dispatch sequence amortises that overhead ``B``
ways (see ``benchmarks/test_bench_batched_sweep.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..agents.population import NO_FUTURE, Population
from ..config import SimulationConfig
from ..errors import EngineError
from ..grid import build_distance_tables, offsets_array, place_groups
from ..grid.environment import Environment
from ..grid.neighborhood import ABSOLUTE_OFFSETS
from ..models import build_model
from ..models.pheromone import deposit_at, evaporate_field
from ..rng import BatchedPhiloxRNG, FlatLaneRNG, PhiloxKeyedRNG, Stream
from ..types import Group
from .base import ABS_STEP_COSTS, RunResult
from .conflict import shift, winner_rank

__all__ = [
    "BatchedEngine",
    "BatchedStepReport",
    "BatchedTimedResult",
    "run_batched",
]


@dataclass(frozen=True)
class BatchedStepReport:
    """Per-step outcome counts, one entry per replication lane."""

    step: int
    decided: np.ndarray
    moved: np.ndarray
    new_crossings: np.ndarray


@dataclass
class BatchedTimedResult:
    """Per-lane :class:`RunResult` list plus shared wall-clock timing."""

    results: List[RunResult]
    wall_seconds: float
    config: SimulationConfig = field(repr=False, default=None)
    seeds: Tuple[int, ...] = ()

    @property
    def n_lanes(self) -> int:
        """Number of replication lanes in the batch."""
        return len(self.results)

    @property
    def wall_seconds_per_lane(self) -> float:
        """Amortised wall time attributable to one replication."""
        return self.wall_seconds / max(1, self.n_lanes)


class _BatchedPheromone:
    """Per-group pheromone stacks ``(B, H, W)`` (eq. 3 / eq. 5, batched)."""

    def __init__(self, n_lanes: int, height: int, width: int, params) -> None:
        self.params = params
        self.fields: Dict[Group, np.ndarray] = {
            g: np.full((n_lanes, height, width), params.tau0, dtype=np.float64)
            for g in (Group.TOP, Group.BOTTOM)
        }

    def evaporate(self) -> None:
        for f in self.fields.values():
            evaporate_field(f, self.params)

    def deposit(self, group: Group, lanes, rows, cols, amounts) -> None:
        deposit_at(
            self.fields[Group(group)],
            (np.asarray(lanes), np.asarray(rows), np.asarray(cols)),
            amounts,
            self.params,
        )


class BatchedEngine:
    """Run ``B`` independent replications in lock-step whole-array stages.

    All lanes share one :class:`~repro.config.SimulationConfig` (the grid
    shape, populations and model must match for the arrays to stack) and
    differ only in their seed. State mirrors :class:`VectorizedEngine` with
    a leading batch axis: ``mats``/``index`` are ``(B, H, W)``, the
    property-matrix fields are ``(B, n_agents + 1)`` and the scan matrix is
    ``(B, n_agents + 1, 8)``.
    """

    platform = "batched"

    def __init__(self, config: SimulationConfig, seeds: Sequence[int]) -> None:
        seeds = tuple(int(s) for s in seeds)
        if not seeds:
            raise EngineError("BatchedEngine needs at least one seed")
        if len(set(seeds)) != len(seeds):
            raise EngineError(f"replication seeds must be distinct, got {seeds}")
        self.config = config
        self.seeds = seeds
        self.n_lanes = len(seeds)
        self.rng = BatchedPhiloxRNG(seeds)
        self.model = build_model(config.params)
        self.t = 0

        h, w = config.height, config.width
        obstacle_mask = (
            config.obstacles.build(h, w) if config.obstacles is not None else None
        )
        # Placement is a pure function of (seed, group); build each lane's
        # environment with a solo keyed RNG (setup cost only) and stack.
        self.mats = np.zeros((self.n_lanes, h, w), dtype=np.int8)
        self.index = np.zeros((self.n_lanes, h, w), dtype=np.int32)
        pops: List[Population] = []
        for b, seed in enumerate(seeds):
            env = place_groups(
                h,
                w,
                config.n_per_side,
                config.band_rows,
                PhiloxKeyedRNG(seed),
                obstacles=obstacle_mask,
            )
            self.mats[b] = env.mat
            self.index[b] = env.index
            pops.append(Population.from_environment(env))

        n = pops[0].n_agents
        self.n_agents = n
        size = n + 1
        self.ids = np.stack([p.ids for p in pops])
        self.rows = np.stack([p.rows for p in pops])
        self.cols = np.stack([p.cols for p in pops])
        self.future_rows = np.full((self.n_lanes, size), NO_FUTURE, dtype=np.int64)
        self.future_cols = np.full((self.n_lanes, size), NO_FUTURE, dtype=np.int64)
        self.front_empty = np.zeros((self.n_lanes, size), dtype=bool)
        self.tour = np.zeros((self.n_lanes, size), dtype=np.float64)
        self.crossed = np.zeros((self.n_lanes, size), dtype=bool)
        self.crossed_step = np.full((self.n_lanes, size), -1, dtype=np.int64)
        self.crossed_tour = np.full((self.n_lanes, size), np.nan, dtype=np.float64)
        self.scan = np.zeros((self.n_lanes, size, 8), dtype=np.float64)

        # Agent indexing is seed-independent (top group first, then bottom),
        # so group membership vectors are shared by every lane.
        if not all(np.array_equal(self.ids[0], p.ids) for p in pops[1:]):
            raise EngineError(
                "lane group layouts diverged; agent indexing must be "
                "seed-independent for batching"
            )
        self._members: Dict[Group, np.ndarray] = {
            g: pops[0].members(g) for g in (Group.TOP, Group.BOTTOM)
        }
        self._offsets: Dict[Group, np.ndarray] = {
            g: offsets_array(g) for g in (Group.TOP, Group.BOTTOM)
        }
        # Loop-invariant select-stage inputs: the flattened lane vector and
        # the flat RNG view depend only on the static group membership.
        self._lanes_flat: Dict[Group, np.ndarray] = {
            g: np.ascontiguousarray(
                np.broadcast_to(idx, (self.n_lanes, idx.size))
            ).reshape(-1)
            for g, idx in self._members.items()
        }
        self._flat_rng: Dict[Group, FlatLaneRNG] = {
            g: self.rng.flat(idx.size)
            for g, idx in self._members.items()
            if idx.size
        }

        self.dist = build_distance_tables(h, getattr(config.params, "scan_range", 1))
        self.pher: Optional[_BatchedPheromone] = (
            _BatchedPheromone(self.n_lanes, h, w, config.params)
            if self.model.uses_pheromone
            else None
        )

        rows_idx, cols_idx = np.indices((h, w))
        self._rowgrid = rows_idx.astype(np.int64)
        self._colgrid = cols_idx.astype(np.int64)
        self._bidx = np.arange(self.n_lanes)[:, None, None]

        # Heterogeneous-velocity extension: per-lane keyed draws, identical
        # to each solo engine's mask under the matching seed.
        self._slow_mask = np.zeros((self.n_lanes, size), dtype=bool)
        if config.slow_fraction > 0.0:
            lanes = np.arange(size, dtype=np.uint64)
            u = self.rng.uniform(Stream.SPEED_CLASS, 0, lanes)
            self._slow_mask = u < config.slow_fraction
            self._slow_mask[:, 0] = False

    # ------------------------------------------------------------------
    # Extensions
    # ------------------------------------------------------------------
    def eligible_mask(self, t: int) -> np.ndarray:
        """Movement eligibility ``(B, n+1)`` at step ``t`` (velocity classes)."""
        if not self._slow_mask.any():
            return np.ones((self.n_lanes, self.n_agents + 1), dtype=bool)
        idx = np.arange(self.n_agents + 1, dtype=np.int64)
        on_beat = (t + idx) % self.config.slow_period == 0
        return ~self._slow_mask | on_beat[None, :]

    # ------------------------------------------------------------------
    # Stage 1: initial calculation (per-agent scan, all lanes)
    # ------------------------------------------------------------------
    def _stage_scan(self, t: int) -> None:
        h, w = self.config.height, self.config.width
        for group in (Group.TOP, Group.BOTTOM):
            idx = self._members[group]
            if idx.size == 0:
                continue
            rows = self.rows[:, idx]  # (B, m)
            cols = self.cols[:, idx]
            off = self._offsets[group]  # (8, 2)
            nr = rows[..., None] + off[:, 0]  # (B, m, 8)
            nc = cols[..., None] + off[:, 1]
            inb = (nr >= 0) & (nr < h) & (nc >= 0) & (nc < w)
            nrc = np.clip(nr, 0, h - 1)
            ncc = np.clip(nc, 0, w - 1)
            candidates = inb & (self.mats[self._bidx, nrc, ncc] == 0)
            dist = self.dist[group].distances(rows)  # (B, m, 8)
            tau = None
            if self.pher is not None:
                tau = self.pher.fields[group][self._bidx, nrc, ncc]
            m = idx.size
            values = self.model.scan_values(
                dist.reshape(-1, 8),
                candidates.reshape(-1, 8),
                None if tau is None else tau.reshape(-1, 8),
            )
            self.scan[:, idx, :] = values.reshape(self.n_lanes, m, 8)
            self.front_empty[:, idx] = candidates[..., 0]

    # ------------------------------------------------------------------
    # Stage 2: tour construction (per-agent decision, all lanes)
    # ------------------------------------------------------------------
    def _stage_select(self, t: int) -> np.ndarray:
        decided = np.zeros(self.n_lanes, dtype=np.int64)
        eligible = self.eligible_mask(t)
        for group in (Group.TOP, Group.BOTTOM):
            idx = self._members[group]
            if idx.size == 0:
                continue
            m = idx.size
            scan_rows = self.scan[:, idx, :].reshape(-1, 8)
            # The model's vector select runs unmodified: the flat RNG view
            # keys element i with replication i // m, so each lane's rows
            # see exactly the solo engine's draws.
            slots = self.model.select(
                scan_rows, self._flat_rng[group], t, self._lanes_flat[group]
            ).reshape(self.n_lanes, m)
            if self.config.forward_priority:
                slots = np.where(self.front_empty[:, idx], 0, slots)
            valid = (slots >= 0) & eligible[:, idx]
            safe = np.where(valid, slots, 0)
            off = self._offsets[group]
            fr = self.rows[:, idx] + off[safe, 0]
            fc = self.cols[:, idx] + off[safe, 1]
            self.future_rows[:, idx] = np.where(valid, fr, NO_FUTURE)
            self.future_cols[:, idx] = np.where(valid, fc, NO_FUTURE)
            decided += np.count_nonzero(valid, axis=1)
        return decided

    # ------------------------------------------------------------------
    # Stage 3: movement (per-cell scatter-to-gather, all lanes)
    # ------------------------------------------------------------------
    def _stage_move(self, t: int) -> np.ndarray:
        h, w = self.config.height, self.config.width
        moved = np.zeros(self.n_lanes, dtype=np.int64)

        if self.pher is not None:
            self.pher.evaporate()

        empty = self.mats == 0
        counts = np.zeros((self.n_lanes, h, w), dtype=np.int16)
        matches: List[np.ndarray] = []
        for dr, dc in ABSOLUTE_OFFSETS:
            nidx = shift(self.index, dr, dc, fill=0)
            fr = self.future_rows[self._bidx, nidx]
            fc = self.future_cols[self._bidx, nidx]
            match = empty & (nidx > 0) & (fr == self._rowgrid) & (fc == self._colgrid)
            matches.append(match)
            counts += match
        con_b, con_r, con_c = np.nonzero(counts > 0)
        if con_b.size == 0:
            return moved

        cell_lanes = con_r.astype(np.uint64) * np.uint64(w) + con_c.astype(np.uint64)
        u = self.rng.uniform_at(Stream.MOVE_WINNER, t, con_b, cell_lanes)
        pick = winner_rank(u, counts[con_b, con_r, con_c])
        pickmap = np.full((self.n_lanes, h, w), -1, dtype=np.int64)
        pickmap[con_b, con_r, con_c] = pick

        cum = np.zeros((self.n_lanes, h, w), dtype=np.int16)
        lane_parts: List[np.ndarray] = []
        dst_rows: List[np.ndarray] = []
        dst_cols: List[np.ndarray] = []
        agents: List[np.ndarray] = []
        costs: List[np.ndarray] = []
        for d, (dr, dc) in enumerate(ABSOLUTE_OFFSETS):
            match = matches[d]
            sel = match & (cum == pickmap)
            cum += match
            bb, rr, cc = np.nonzero(sel)
            if bb.size:
                lane_parts.append(bb)
                dst_rows.append(rr)
                dst_cols.append(cc)
                agents.append(self.index[bb, rr + dr, cc + dc].astype(np.int64))
                costs.append(np.full(bb.size, ABS_STEP_COSTS[d]))
        bs = np.concatenate(lane_parts)
        dst_r = np.concatenate(dst_rows)
        dst_c = np.concatenate(dst_cols)
        winners = np.concatenate(agents)
        move_cost = np.concatenate(costs)
        src_r = self.rows[bs, winners]
        src_c = self.cols[bs, winners]

        # (lane, cell) destinations were empty, sources occupied, and the
        # two sets are disjoint per lane, so fancy indexing stays safe.
        self.mats[bs, dst_r, dst_c] = self.ids[bs, winners]
        self.index[bs, dst_r, dst_c] = winners
        self.mats[bs, src_r, src_c] = 0
        self.index[bs, src_r, src_c] = 0
        self.rows[bs, winners] = dst_r
        self.cols[bs, winners] = dst_c
        self.tour[bs, winners] += move_cost

        if self.pher is not None:
            amounts = self.pher.params.deposit_q / self.tour[bs, winners]
            winner_ids = self.ids[bs, winners]
            for group in (Group.TOP, Group.BOTTOM):
                gmask = winner_ids == int(group)
                if np.any(gmask):
                    self.pher.deposit(
                        group, bs[gmask], dst_r[gmask], dst_c[gmask], amounts[gmask]
                    )
        np.add.at(moved, bs, 1)
        return moved

    # ------------------------------------------------------------------
    # Stage 4 + crossings bookkeeping
    # ------------------------------------------------------------------
    def _record_crossings(self, step: int) -> np.ndarray:
        height = self.config.height
        band = self.config.cross_rows
        top = self.ids == int(Group.TOP)
        bottom = self.ids == int(Group.BOTTOM)
        newly = (
            (top & (self.rows >= height - band)) | (bottom & (self.rows < band))
        ) & ~self.crossed
        self.crossed |= newly
        self.crossed_step[newly] = step
        self.crossed_tour[newly] = self.tour[newly]
        return np.count_nonzero(newly, axis=1)

    def _stage_support(self, t: int) -> None:
        self.future_rows.fill(NO_FUTURE)
        self.future_cols.fill(NO_FUTURE)
        self.front_empty.fill(False)
        self.scan.fill(0.0)

    # ------------------------------------------------------------------
    # Template step / run
    # ------------------------------------------------------------------
    def step(self) -> BatchedStepReport:
        """Advance every lane one synchronous step (all four stages)."""
        t = self.t
        self._stage_scan(t)
        decided = self._stage_select(t)
        moved = self._stage_move(t)
        new_crossings = self._record_crossings(t)
        self._stage_support(t)
        self.t += 1
        return BatchedStepReport(
            step=t, decided=decided, moved=moved, new_crossings=new_crossings
        )

    def run(
        self, steps: Optional[int] = None, record_timeline: bool = True
    ) -> List[RunResult]:
        """Run all lanes for ``steps`` steps; one :class:`RunResult` per lane."""
        n = self.config.steps if steps is None else int(steps)
        moved_tl: List[np.ndarray] = [] if record_timeline else None
        cross_tl: List[np.ndarray] = [] if record_timeline else None
        for _ in range(n):
            report = self.step()
            if record_timeline:
                moved_tl.append(report.moved)
                cross_tl.append(report.new_crossings)
        if record_timeline and n > 0:
            moved_mat = np.stack(moved_tl, axis=1)  # (B, steps)
            cross_mat = np.stack(cross_tl, axis=1)
        else:
            moved_mat = np.zeros((self.n_lanes, 0), dtype=np.int64)
            cross_mat = np.zeros((self.n_lanes, 0), dtype=np.int64)
        results = []
        for b, seed in enumerate(self.seeds):
            results.append(
                RunResult(
                    platform=self.platform,
                    seed=seed,
                    steps_run=n,
                    throughput_total=self.throughput(b),
                    throughput_top=self.throughput(b, Group.TOP),
                    throughput_bottom=self.throughput(b, Group.BOTTOM),
                    moved_per_step=moved_mat[b] if record_timeline else None,
                    crossings_per_step=cross_mat[b] if record_timeline else None,
                )
            )
        return results

    # ------------------------------------------------------------------
    # Introspection / verification
    # ------------------------------------------------------------------
    def throughput(self, lane: int, group: Group = None) -> int:
        """Crossed-agent count of one lane (optionally one group)."""
        crossed = self.crossed[lane]
        if group is None:
            return int(np.count_nonzero(crossed[1:]))
        return int(np.count_nonzero(crossed & (self.ids[lane] == int(Group(group)))))

    def lane_environment(self, lane: int) -> Environment:
        """Copy of one lane's environment (solo-engine comparable)."""
        env = Environment(self.config.height, self.config.width)
        env.mat[...] = self.mats[lane]
        env.index[...] = self.index[lane]
        return env

    def lane_population(self, lane: int) -> Population:
        """Copy of one lane's property matrix (solo-engine comparable)."""
        pop = Population(self.n_agents)
        pop.ids[...] = self.ids[lane]
        pop.rows[...] = self.rows[lane]
        pop.cols[...] = self.cols[lane]
        pop.future_rows[...] = self.future_rows[lane]
        pop.future_cols[...] = self.future_cols[lane]
        pop.front_empty[...] = self.front_empty[lane]
        pop.tour[...] = self.tour[lane]
        pop.crossed[...] = self.crossed[lane]
        pop.crossed_step[...] = self.crossed_step[lane]
        pop.crossed_tour[...] = self.crossed_tour[lane]
        return pop

    def lane_pheromone(self, lane: int, group: Group) -> Optional[np.ndarray]:
        """Copy of one lane's pheromone field for ``group`` (None when LEM)."""
        if self.pher is None:
            return None
        return self.pher.fields[Group(group)][lane].copy()

    def validate_state(self) -> None:
        """Cross-check env/pop invariants on every lane (test support)."""
        for b in range(self.n_lanes):
            env = self.lane_environment(b)
            env.validate()
            self.lane_population(b).validate_against(env)


def run_batched(
    config: SimulationConfig,
    seeds: Sequence[int],
    steps: Optional[int] = None,
    record_timeline: bool = True,
) -> BatchedTimedResult:
    """Build a :class:`BatchedEngine`, run it, and time the whole batch."""
    eng = BatchedEngine(config, seeds)
    start = time.perf_counter()
    results = eng.run(steps=steps, record_timeline=record_timeline)
    elapsed = time.perf_counter() - start
    return BatchedTimedResult(
        results=results,
        wall_seconds=elapsed,
        config=config,
        seeds=eng.seeds,
    )
