"""Multi-replication batched engine — whole-sweep data parallelism.

:class:`VectorizedEngine` plays one GPU launch per simulation; the paper's
evaluation, however, is a 40-scenario population sweep with repeated seeds
per point, i.e. many *independent replications*. :class:`BatchedEngine`
lifts the scan / select / move kernels to a leading batch axis so ``B``
replications advance through a single set of NumPy whole-array stages per
step — the same data-parallel move the paper makes across agents, applied
across runs.

Lanes need not share a scenario: per-agent arrays are padded to the
largest lane's population and the grids to the largest lane's shape, with
an ``active`` mask (and obstacle-sentinel padding cells) guaranteeing that
padding slots never scan, decide, move, deposit or cross. Ragged per-lane
group membership is flattened into ``(rep, agent)`` index vectors, so
every stage is element-wise or row-wise per lane and the movement scatter
touches disjoint ``(lane, cell)`` sets. Lane ``b`` draws its randomness
with the Philox key of ``seeds[b]`` (see
:class:`repro.rng.batched.BatchedPhiloxRNG`), which makes each lane
**bit-identical** to a solo :class:`VectorizedEngine` run with the same
config and seed — the property ``tests/test_engine_batched.py`` pins down
trajectory-for-trajectory, now over mixed-scenario batches too.

Batching wins because a small-grid simulation step is dominated by the
fixed overhead of its ~50 NumPy kernel dispatches; fusing ``B``
replications into one dispatch sequence amortises that overhead ``B``
ways (see ``benchmarks/test_bench_batched_sweep.py`` for same-shape lanes
and ``benchmarks/test_bench_padded_sweep.py`` for padded mixed-scenario
lanes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..agents.population import NO_FUTURE, Population
from ..backend import resolve_backend
from ..backend.profiling import ProfilingBackend
from ..config import SimulationConfig
from ..errors import EngineError
from ..grid import offsets_array
from ..grid.environment import Environment
from ..grid.neighborhood import ABSOLUTE_OFFSETS
from ..models import build_model
from ..models.pheromone import deposit_at, evaporate_field, group_slot
from ..rng import BatchedPhiloxRNG, RaggedLaneRNG, Stream
from ..types import CellState, Group
from .base import ABS_STEP_COSTS, RunResult, require_float64
from .conflict import shift, winner_rank
from .warmstate import cached_dist_stack, cached_placement

__all__ = [
    "BatchedEngine",
    "BatchedStepReport",
    "BatchedTimedResult",
    "run_batched",
]

#: Cell label written into grid padding (cells beyond a lane's real extent).
#: Any non-zero value reads as "unavailable" to every kernel, exactly like
#: a static obstacle, so padding needs no special-casing on the hot paths.
_PAD_CELL = int(CellState.OBSTACLE)


@dataclass(frozen=True)
class BatchedStepReport:
    """Per-step outcome counts, one entry per replication lane."""

    step: int
    decided: np.ndarray
    moved: np.ndarray
    new_crossings: np.ndarray


@dataclass
class BatchedTimedResult:
    """Per-lane :class:`RunResult` list plus shared wall-clock timing."""

    results: List[RunResult]
    wall_seconds: float
    #: The shared lane config for homogeneous batches; ``None`` when the
    #: lanes were padded over heterogeneous scenarios (see ``configs``).
    config: Optional[SimulationConfig] = field(repr=False, default=None)
    seeds: Tuple[int, ...] = ()
    #: Per-lane configs, aligned with ``seeds`` (always populated).
    configs: Tuple[SimulationConfig, ...] = field(repr=False, default=())

    @property
    def n_lanes(self) -> int:
        """Number of replication lanes in the batch."""
        return len(self.results)

    @property
    def wall_seconds_per_lane(self) -> float:
        """Amortised wall time attributable to one replication."""
        return self.wall_seconds / max(1, self.n_lanes)


class _BatchedPheromone:
    """Both groups' batched pheromone fields as one ``(2, B, H, W)`` stack.

    The leading axis is the group slot (TOP=0, BOTTOM=1, per
    :func:`~repro.models.pheromone.group_slot`), so whole-field
    maintenance — evaporation, lane-block clamps — is a single launch over
    both groups, and mixed-group deposits scatter once through a
    ``(gslot, lane, row, col)`` fancy index.
    """

    def __init__(
        self, n_lanes: int, height: int, width: int, params, backend=None
    ) -> None:
        self.params = params
        self.backend = resolve_backend(backend)
        xp = self.backend.xp
        self.stack: np.ndarray = xp.full(
            (2, n_lanes, height, width), params.tau0, dtype=np.float64
        )

    def field(self, group: Group) -> np.ndarray:
        """One group's ``(B, H, W)`` fields (live stack view)."""
        return self.stack[group_slot(group)]

    def evaporate(self) -> None:
        evaporate_field(self.stack, self.params, xp=self.backend.xp)

    def evaporate_lanes(self, lanes, params) -> None:
        """Eq. 3 on one parameter group's lane block only (both groups).

        Element-wise, so running it on a fancy-indexed copy and writing
        back is bit-identical to evaporating those lanes in place.
        """
        sub = self.stack[:, lanes]
        evaporate_field(sub, params, xp=self.backend.xp)
        self.stack[:, lanes] = sub

    def deposit_stacked(self, gslots, lanes, rows, cols, amounts) -> None:
        """Eq. 5 for a mixed-group winner batch: one scatter, one clamp."""
        deposit_at(
            self.stack, (gslots, lanes, rows, cols), amounts, self.params,
            backend=self.backend,
        )

    def deposit_raw_stacked(self, gslots, lanes, rows, cols, amounts) -> None:
        """Eq. 5 scatter without the tau_max clamp (heterogeneous path).

        Lanes own disjoint ``(lane, row, col)`` cells, so one scatter over
        the full stack is exact; the caller clamps each parameter group's
        lane block afterwards with its own ``tau_max``.
        """
        self.backend.scatter_add(self.stack, (gslots, lanes, rows, cols), amounts)

    def clamp_max(self, lanes, tau_max: float) -> None:
        """Apply one parameter group's upper clamp to its lane block."""
        xp = self.backend.xp
        sub = self.stack[:, lanes]
        xp.minimum(sub, tau_max, out=sub)
        self.stack[:, lanes] = sub


class BatchedEngine:
    """Run ``B`` independent replications in lock-step whole-array stages.

    ``config`` is either one :class:`~repro.config.SimulationConfig` shared
    by every lane (the homogeneous case — lanes differ only in their seed)
    or a sequence of per-lane configs aligned with ``seeds`` (the padded
    heterogeneous case). Lanes may differ in population, grid shape,
    placement band and extension knobs; they must share the movement-model
    parameters and the step budget (the batch advances in lock-step).

    State mirrors :class:`VectorizedEngine` with a leading batch axis,
    padded to the largest lane: ``mats``/``index`` are ``(B, Hmax, Wmax)``
    with obstacle-sentinel padding cells, the property-matrix fields are
    ``(B, n_max + 1)`` and the scan matrix is ``(B, n_max + 1, 8)``. The
    ``active`` mask marks each lane's live agent slots; padding slots carry
    the sentinel ID 0 and never enter any stage.
    """

    platform = "batched"

    def __init__(
        self,
        config: Union[SimulationConfig, Sequence[SimulationConfig]],
        seeds: Sequence[int],
    ) -> None:
        seeds = tuple(int(s) for s in seeds)
        if not seeds:
            raise EngineError("BatchedEngine needs at least one seed")
        if isinstance(config, SimulationConfig):
            if len(set(seeds)) != len(seeds):
                raise EngineError(f"replication seeds must be distinct, got {seeds}")
            configs: Tuple[SimulationConfig, ...] = tuple(config for _ in seeds)
        else:
            configs = tuple(config)
            if not all(isinstance(c, SimulationConfig) for c in configs):
                raise EngineError("per-lane configs must be SimulationConfig")
            if len(configs) != len(seeds):
                raise EngineError(
                    f"need one config per lane, got {len(configs)} configs "
                    f"for {len(seeds)} seeds"
                )
            for i in range(len(seeds)):
                for j in range(i):
                    if seeds[i] == seeds[j] and configs[i] == configs[j]:
                        raise EngineError(
                            f"replication lanes must be distinct (config, seed) "
                            f"pairs; lanes {j} and {i} repeat seed {seeds[i]}"
                        )
        rep_cfg = configs[0]
        for c in configs[1:]:
            if c.params != rep_cfg.params:
                raise EngineError(
                    "batched lanes must share the movement-model parameters"
                )
            if c.steps != rep_cfg.steps:
                raise EngineError(
                    "batched lanes must share the step budget "
                    f"(got {rep_cfg.steps} and {c.steps})"
                )
            if c.backend != rep_cfg.backend:
                raise EngineError(
                    "batched lanes must share the array backend "
                    f"(got {rep_cfg.backend!r} and {c.backend!r})"
                )
        self.config = rep_cfg
        self.configs = configs
        self.seeds = seeds
        self.n_lanes = len(seeds)
        self.backend = resolve_backend(rep_cfg.backend)
        require_float64(self.backend)
        xp = self.xp = self.backend.xp
        #: Per-engine scratch arena for the fixed-shape step temporaries
        #: (see ScratchArena's overwrite contract).
        self.scratch = self.backend.scratch_arena()
        self.rng = BatchedPhiloxRNG(seeds, backend=self.backend)
        self.model = build_model(rep_cfg.params, backend=self.backend)
        self.t = 0

        # Per-lane geometry, padded to the largest lane. Host copies drive
        # the (pure-Python) setup logic; device mirrors feed the kernels.
        heights_host = np.array([c.height for c in configs], dtype=np.int64)
        widths_host = np.array([c.width for c in configs], dtype=np.int64)
        self._heights = self.backend.from_host(heights_host)
        self._widths = self.backend.from_host(widths_host)
        self._widths_u64 = self.backend.from_host(widths_host.astype(np.uint64))
        self._cross_rows = self.backend.from_host(
            np.array([c.cross_rows for c in configs], dtype=np.int64)
        )
        self.h_max = int(heights_host.max())
        self.w_max = int(widths_host.max())

        # Placement is a pure function of (config, seed, group); build each
        # lane's environment with a solo keyed RNG on the host (setup cost
        # only), stack into padded host arrays, and upload the whole batch
        # in one transfer. Padding cells read as obstacles.
        mats_host = np.full(
            (self.n_lanes, self.h_max, self.w_max), _PAD_CELL, dtype=np.int8
        )
        index_host = np.zeros((self.n_lanes, self.h_max, self.w_max), dtype=np.int32)
        pops: List[Population] = []
        for b, (cfg, seed) in enumerate(zip(configs, seeds)):
            # Warm-state reuse: placement is a pure function of
            # (geometry, seed), and the cached pair is only *read* here
            # (copied into the padded device buffers), so a repeat launch
            # skips the host placement entirely — bit-identically.
            env, pop = cached_placement(cfg, seed)
            mats_host[b, : cfg.height, : cfg.width] = env.mat
            index_host[b, : cfg.height, : cfg.width] = env.index
            pops.append(pop)
        self.mats = self.backend.from_host(mats_host)
        self.index = self.backend.from_host(index_host)

        lane_agents_host = np.array([p.n_agents for p in pops], dtype=np.int64)
        self.lane_agents = self.backend.from_host(lane_agents_host)
        self.n_agents = int(lane_agents_host.max())
        size = self.n_agents + 1
        #: Live-slot mask: ``active[b, i]`` iff agent ``i`` exists in lane
        #: ``b`` (the sentinel row 0 and padding slots are inactive).
        self.active = (
            xp.arange(size)[None, :] <= self.lane_agents[:, None]
        ) & (xp.arange(size)[None, :] > 0)

        ids_host = np.zeros((self.n_lanes, size), dtype=np.int8)
        rows_host = np.zeros((self.n_lanes, size), dtype=np.int64)
        cols_host = np.zeros((self.n_lanes, size), dtype=np.int64)
        for b, p in enumerate(pops):
            end = p.n_agents + 1
            ids_host[b, :end] = p.ids
            rows_host[b, :end] = p.rows
            cols_host[b, :end] = p.cols
        self.ids = self.backend.from_host(ids_host)
        self.rows = self.backend.from_host(rows_host)
        self.cols = self.backend.from_host(cols_host)
        self.future_rows = xp.full((self.n_lanes, size), NO_FUTURE, dtype=np.int64)
        self.future_cols = xp.full((self.n_lanes, size), NO_FUTURE, dtype=np.int64)
        self.front_empty = xp.zeros((self.n_lanes, size), dtype=bool)
        self.tour = xp.zeros((self.n_lanes, size), dtype=np.float64)
        self.crossed = xp.zeros((self.n_lanes, size), dtype=bool)
        self.crossed_step = xp.full((self.n_lanes, size), -1, dtype=np.int64)
        self.crossed_tour = xp.full((self.n_lanes, size), np.nan, dtype=np.float64)
        self.scan = xp.zeros((self.n_lanes, size, 8), dtype=np.float64)

        # Ragged group membership, flattened lane-major into parallel
        # (replication, agent-index) vectors. Agent indexing is top group
        # first within each lane, so membership is ragged across lanes as
        # soon as populations differ.
        self._rep: Dict[Group, np.ndarray] = {}
        self._agent: Dict[Group, np.ndarray] = {}
        self._ragged_rng: Dict[Group, RaggedLaneRNG] = {}
        for g in (Group.TOP, Group.BOTTOM):
            reps: List[np.ndarray] = []
            members: List[np.ndarray] = []
            for b, p in enumerate(pops):
                idx = p.members(g)
                reps.append(np.full(idx.size, b, dtype=np.intp))
                members.append(idx)
            self._rep[g] = self.backend.from_host(
                np.concatenate(reps) if reps else np.empty(0, np.intp)
            )
            self._agent[g] = self.backend.from_host(
                np.concatenate(members) if members else np.empty(0, np.int64)
            )
            if self._agent[g].size:
                self._ragged_rng[g] = self.rng.ragged(self._rep[g])
        self._offsets: Dict[Group, np.ndarray] = {
            g: self.backend.from_host(offsets_array(g))
            for g in (Group.TOP, Group.BOTTOM)
        }

        # Fused-group vectors (TOP rows then BOTTOM rows): scan/select run
        # as ONE whole-batch launch over the concatenation — the model
        # kernels are row-independent and the ragged RNG keys row i by
        # (seeds[rep[i]], agent[i]), so the fused pass draws exactly the
        # per-group passes' variates (golden-parity pinned).
        xp_ = self.backend.xp
        self._rep_all = xp_.concatenate(
            [self._rep[Group.TOP], self._rep[Group.BOTTOM]]
        )
        self._agent_all = xp_.concatenate(
            [self._agent[Group.TOP], self._agent[Group.BOTTOM]]
        )
        self._gslot_all = xp_.concatenate(
            [
                xp_.zeros(int(self._rep[Group.TOP].size), dtype=np.int64),
                xp_.ones(int(self._rep[Group.BOTTOM].size), dtype=np.int64),
            ]
        )
        self._ragged_rng_all: Optional[RaggedLaneRNG] = (
            self.rng.ragged(self._rep_all) if self._rep_all.size else None
        )
        self._offsets_stack = xp_.stack(
            [self._offsets[Group.TOP], self._offsets[Group.BOTTOM]]
        )

        # Per-lane distance tables stacked to (2, B, Hmax, 8) — group slot
        # leading, matching the pheromone stack; rows beyond a lane's
        # height carry inf (never candidates). Tables are pure functions of
        # (height, scan_range), so duplicate heights share one host build;
        # the stack uploads once.
        scan_range = getattr(rep_cfg.params, "scan_range", 1)
        self._dist_stack = cached_dist_stack(
            tuple(int(h) for h in heights_host), scan_range, self.backend
        )

        self.pher: Optional[_BatchedPheromone] = (
            _BatchedPheromone(
                self.n_lanes, self.h_max, self.w_max, rep_cfg.params, self.backend
            )
            if self.model.uses_pheromone
            else None
        )

        rows_idx, cols_idx = xp.indices((self.h_max, self.w_max))
        self._rowgrid = rows_idx.astype(np.int64)
        self._colgrid = cols_idx.astype(np.int64)
        self._bidx = xp.arange(self.n_lanes)[:, None, None]

        # Paper-modification flag, per lane (host bool short-circuits the
        # per-step branch without a device sync).
        fwd_host = np.array([c.forward_priority for c in configs], dtype=bool)
        self._forward_priority = self.backend.from_host(fwd_host)
        self._any_forward_priority = bool(fwd_host.any())

        # Heterogeneous-velocity extension: per-lane keyed draws, identical
        # to each solo engine's mask under the matching seed.
        self._slow_mask = xp.zeros((self.n_lanes, size), dtype=bool)
        slow_fractions = np.array([c.slow_fraction for c in configs])
        self._any_slow = bool(np.any(slow_fractions > 0.0))
        self._slow_periods = self.backend.from_host(
            np.array([c.slow_period for c in configs], dtype=np.int64)
        )
        if self._any_slow:
            lanes = xp.arange(size, dtype=np.uint64)
            u = self.rng.uniform(Stream.SPEED_CLASS, 0, lanes)
            self._slow_mask = (
                u < self.backend.from_host(slow_fractions)[:, None]
            ) & self.active

        # Per-lane movement-model partitioning (step-hook support). Lanes
        # start homogeneous (the constructor enforces shared params); a
        # hook's swap_lane_model may split them into parameter groups,
        # after which each stage runs the shared fast path per group over
        # that group's rows — bit-identical because every model kernel is
        # row-independent and the ragged RNG keys each row by its own
        # lane.
        self._scan_range = int(scan_range)
        self._lane_params: List = [c.params for c in configs]
        self._models = {rep_cfg.params: self.model}
        self._refresh_param_groups()

        # Step-hook schedule: (fire_step, lane, config-order) — each hook
        # mutates only its own lane, so cross-lane order is immaterial and
        # per-lane order matches the solo engine's.
        self._pending_hooks = sorted(
            ((hook.fire_step(), lane, idx, hook)
             for lane, cfg in enumerate(configs)
             for idx, hook in enumerate(cfg.hooks)),
            key=lambda entry: entry[:3],
        )

    def _refresh_param_groups(self) -> None:
        """Rebuild the params → lanes partition after a lane swap."""
        groups: List[Tuple] = []  # (params, model, host lane list)
        order: Dict = {}
        lane_gid = np.zeros(self.n_lanes, dtype=np.int64)
        for lane, params in enumerate(self._lane_params):
            gid = order.get(params)
            if gid is None:
                gid = order[params] = len(groups)
                groups.append((params, self._models[params], []))
            groups[gid][2].append(lane)
            lane_gid[lane] = gid
        self._param_groups = [
            (params, model, self.backend.from_host(np.array(lanes, dtype=np.intp)))
            for params, model, lanes in groups
        ]
        self._lane_pg = self.backend.from_host(lane_gid)
        self._homogeneous = len(groups) == 1
        if self._homogeneous:
            # All lanes share one bundle again (possibly after every lane
            # swapped to the same variant): restore the single-model fast
            # path exactly as the constructor set it up.
            params, model, _ = self._param_groups[0]
            self.model = model
            if self.pher is not None:
                self.pher.params = params
        if self.pher is not None:
            self._deposit_q = self.backend.from_host(
                np.array(
                    [getattr(p, "deposit_q", 0.0) for p in self._lane_params],
                    dtype=np.float64,
                )
            )

    # ------------------------------------------------------------------
    # Step hooks
    # ------------------------------------------------------------------
    def _apply_due_hooks(self, t: int) -> None:
        """Fire every scheduled hook whose firing step has arrived."""
        while self._pending_hooks and self._pending_hooks[0][0] <= t:
            _, lane, _, hook = self._pending_hooks.pop(0)
            hook.apply_lane(self, lane)

    def swap_lane_model(self, lane: int, params) -> None:
        """Swap one lane's movement model mid-run (panic-alarm extension).

        The batched counterpart of :meth:`BaseEngine.swap_model`,
        restricted to swaps that keep the batch's shared state valid: the
        new bundle must keep the constructor's ``scan_range`` (the
        distance stacks are shared) and the engine's pheromone mode (the
        ``(B, H, W)`` stacks exist for every lane or none). The default
        :func:`~repro.components.hooks.panic_variant` bundles satisfy
        both.
        """
        lane = int(lane)
        if not (0 <= lane < self.n_lanes):
            raise EngineError(
                f"lane must be in [0, {self.n_lanes}), got {lane}"
            )
        params.validate()
        if params == self._lane_params[lane]:
            return
        if int(getattr(params, "scan_range", 1)) != self._scan_range:
            raise EngineError(
                "batched lanes cannot change scan_range mid-run "
                f"(batch built with {self._scan_range}, swap wants "
                f"{getattr(params, 'scan_range', 1)})"
            )
        model = self._models.get(params)
        if model is None:
            model = build_model(params, backend=self.backend)
            self._models[params] = model
        if model.uses_pheromone != (self.pher is not None):
            raise EngineError(
                "batched lanes cannot change pheromone use mid-run "
                f"(swap to {model.name!r} on a "
                f"{'pheromone' if self.pher is not None else 'pheromone-free'} "
                "batch)"
            )
        self._lane_params[lane] = params
        self._refresh_param_groups()

    # ------------------------------------------------------------------
    # Extensions
    # ------------------------------------------------------------------
    def eligible_mask(self, t: int) -> np.ndarray:
        """Movement eligibility ``(B, n+1)`` at step ``t`` (velocity classes)."""
        xp = self.xp
        if not self._any_slow:
            return xp.ones((self.n_lanes, self.n_agents + 1), dtype=bool)
        idx = xp.arange(self.n_agents + 1, dtype=np.int64)
        on_beat = (t + idx[None, :]) % self._slow_periods[:, None] == 0
        return ~self._slow_mask | on_beat

    # ------------------------------------------------------------------
    # Stage 1: initial calculation (per-agent scan, all lanes)
    # ------------------------------------------------------------------
    def _stage_scan(self, t: int) -> None:
        # One fused launch over every lane's TOP+BOTTOM rows: per-group
        # tables are gathered through the group-slot stacks, so the whole
        # batch scans in a single dispatch sequence.
        xp = self.xp
        rep = self._rep_all
        agent = self._agent_all
        if rep.size == 0:
            return
        gslot = self._gslot_all
        rows = self.rows[rep, agent]  # (N,)
        cols = self.cols[rep, agent]
        off = self._offsets_stack[gslot]  # (N, 8, 2)
        nr = rows[:, None] + off[:, :, 0]  # (N, 8)
        nc = cols[:, None] + off[:, :, 1]
        h = self._heights[rep][:, None]
        w = self._widths[rep][:, None]
        inb = (nr >= 0) & (nr < h) & (nc >= 0) & (nc < w)
        # nr/nc are fresh operator results and unneeded unclipped once the
        # bounds mask exists, so the clips run in place (no allocation).
        nrc = xp.clip(nr, 0, self.h_max - 1, out=nr)
        ncc = xp.clip(nc, 0, self.w_max - 1, out=nc)
        rcol = rep[:, None]
        candidates = inb & (self.mats[rcol, nrc, ncc] == 0)
        dist = self._dist_stack[gslot, rep, rows]  # (N, 8)
        tau = None
        if self.pher is not None:
            tau = self.pher.stack[gslot[:, None], rcol, nrc, ncc]
        if self._homogeneous:
            values = self.model.scan_values(dist, candidates, tau)
        else:
            # Partition the concatenated rows by parameter group;
            # scan_values is row-independent, so per-group calls over
            # row subsets are bit-identical to one shared call.
            values = xp.empty(dist.shape, dtype=np.float64)
            pg = self._lane_pg[rep]
            for gid, (_params, model, _lanes) in enumerate(self._param_groups):
                sel = pg == gid
                if not bool(xp.any(sel)):
                    continue
                values[sel] = model.scan_values(
                    dist[sel],
                    candidates[sel],
                    tau[sel] if tau is not None else None,
                )
        self.scan[rep, agent, :] = values
        self.front_empty[rep, agent] = candidates[:, 0]

    # ------------------------------------------------------------------
    # Stage 2: tour construction (per-agent decision, all lanes)
    # ------------------------------------------------------------------
    def _stage_select(self, t: int) -> np.ndarray:
        # Fused tour construction over the whole batch: one model.select
        # (the fused ragged RNG keys row i with replication rep[i], so
        # each lane's rows see exactly the solo engine's draws), one
        # future-coordinate write, one per-lane bincount.
        xp = self.xp
        rep = self._rep_all
        agent = self._agent_all
        if rep.size == 0:
            return xp.zeros(self.n_lanes, dtype=np.int64)
        scan_rows = self.scan[rep, agent]  # (N, 8)
        if self._homogeneous:
            slots = self.model.select(scan_rows, self._ragged_rng_all, t, agent)
        else:
            # Per-group select over row subsets: the subset ragged RNG
            # still keys row i by rep[i], so every agent draws the
            # same variates as in the shared call (and the solo run).
            slots = xp.full(rep.size, -1, dtype=np.int64)
            pg = self._lane_pg[rep]
            for gid, (_params, model, _lanes) in enumerate(self._param_groups):
                sel = pg == gid
                if not bool(xp.any(sel)):
                    continue
                slots[sel] = model.select(
                    scan_rows[sel], self.rng.ragged(rep[sel]), t, agent[sel]
                )
        if self._any_forward_priority:
            # ``slots`` is fresh (model kernel output or the hetero fill
            # buffer), so the forward override writes in place.
            slots[self.front_empty[rep, agent] & self._forward_priority[rep]] = 0
        if self._any_slow:
            valid = (slots >= 0) & self.eligible_mask(t)[rep, agent]
        else:
            # Homogeneous velocities (the default): everyone is eligible,
            # so the all-true mask and its gather are dead dispatches.
            valid = slots >= 0
        invalid = ~valid
        # In-place masked writes on the fresh intermediates replace three
        # xp.where calls; the resulting values are identical element-wise.
        slots[invalid] = 0
        off = self._offsets_stack[self._gslot_all, slots]  # (N, 2)
        fr = self.rows[rep, agent] + off[:, 0]
        fc = self.cols[rep, agent] + off[:, 1]
        fr[invalid] = NO_FUTURE
        fc[invalid] = NO_FUTURE
        self.future_rows[rep, agent] = fr
        self.future_cols[rep, agent] = fc
        return xp.bincount(rep[valid], minlength=self.n_lanes)

    # ------------------------------------------------------------------
    # Stage 3: movement (per-cell scatter-to-gather, all lanes)
    # ------------------------------------------------------------------
    def _stage_move(self, t: int) -> np.ndarray:
        xp = self.xp
        moved = xp.zeros(self.n_lanes, dtype=np.int64)

        if self.pher is not None:
            if self._homogeneous:
                self.pher.evaporate()
            else:
                for _params, _model, lanes in self._param_groups:
                    self.pher.evaporate_lanes(lanes, _params)

        # Padding cells are never empty (obstacle sentinel), so neither the
        # destination set nor the candidate gathers can leave a lane's real
        # grid region.
        empty = self.mats == 0
        # Fixed-shape per-step temporaries come from the engine's scratch
        # arena: zero allocating dispatches once warm, identical contents
        # (every buffer is fully overwritten before it is read).
        counts = self.scratch.take_filled(
            "mv.counts", (self.n_lanes, self.h_max, self.w_max), np.int16, 0
        )
        nbuf = self.scratch.take("mv.shift", self.index.shape, self.index.dtype)
        matches: List[np.ndarray] = []
        for dr, dc in ABSOLUTE_OFFSETS:
            nidx = shift(self.index, dr, dc, fill=0, xp=xp, out=nbuf)
            fr = self.future_rows[self._bidx, nidx]
            fc = self.future_cols[self._bidx, nidx]
            match = empty & (nidx > 0) & (fr == self._rowgrid) & (fc == self._colgrid)
            matches.append(match)
            counts += match
        con_b, con_r, con_c = xp.nonzero(counts > 0)
        if con_b.size == 0:
            return moved

        # Cell lanes use each replication's *real* width so the winner draw
        # matches the solo engine's ``Environment.cell_lane`` keying.
        cell_lanes = con_r.astype(np.uint64) * self._widths_u64[con_b] + con_c.astype(
            np.uint64
        )
        u = self.rng.uniform_at(Stream.MOVE_WINNER, t, con_b, cell_lanes)
        pick = winner_rank(u, counts[con_b, con_r, con_c], xp=xp)
        pickmap = self.scratch.take_filled(
            "mv.pickmap", (self.n_lanes, self.h_max, self.w_max), np.int64, -1
        )
        pickmap[con_b, con_r, con_c] = pick

        cum = self.scratch.take_filled(
            "mv.cum", (self.n_lanes, self.h_max, self.w_max), np.int16, 0
        )
        lane_parts: List[np.ndarray] = []
        dst_rows: List[np.ndarray] = []
        dst_cols: List[np.ndarray] = []
        agents: List[np.ndarray] = []
        cost_runs: List[Tuple[float, int]] = []
        for d, (dr, dc) in enumerate(ABSOLUTE_OFFSETS):
            match = matches[d]
            sel = match & (cum == pickmap)
            cum += match
            bb, rr, cc = xp.nonzero(sel)
            if bb.size:
                lane_parts.append(bb)
                dst_rows.append(rr)
                dst_cols.append(cc)
                agents.append(self.index[bb, rr + dr, cc + dc].astype(np.int64))
                cost_runs.append((ABS_STEP_COSTS[d], int(bb.size)))
        bs = xp.concatenate(lane_parts)
        dst_r = xp.concatenate(dst_rows)
        dst_c = xp.concatenate(dst_cols)
        winners = xp.concatenate(agents)
        # Per-direction costs are constants, so the cost vector is built by
        # slice fills into one scratch run instead of 8 fulls + concatenate.
        move_cost = self.scratch.take("mv.cost", (int(winners.size),), np.float64)
        o = 0
        for cost, size in cost_runs:
            move_cost[o : o + size] = cost
            o += size
        src_r = self.rows[bs, winners]
        src_c = self.cols[bs, winners]

        # (lane, cell) destinations were empty, sources occupied, and the
        # two sets are disjoint per lane, so fancy indexing stays safe.
        self.mats[bs, dst_r, dst_c] = self.ids[bs, winners]
        self.index[bs, dst_r, dst_c] = winners
        self.mats[bs, src_r, src_c] = 0
        self.index[bs, src_r, src_c] = 0
        self.rows[bs, winners] = dst_r
        self.cols[bs, winners] = dst_c
        self.tour[bs, winners] += move_cost

        if self.pher is not None:
            # Fused deposit: one scatter into the (2, B, H, W) stack covers
            # both groups (winner cells are disjoint per lane, the tau_max
            # clamp is idempotent) — no per-group any() host syncs.
            gslot = (self.ids[bs, winners] == int(Group.BOTTOM)).astype(np.int64)
            if self._homogeneous:
                amounts = self.pher.params.deposit_q / self.tour[bs, winners]
                self.pher.deposit_stacked(gslot, bs, dst_r, dst_c, amounts)
            else:
                # Per-lane deposit scale, raw scatter (lanes own disjoint
                # cells), then each parameter group's own tau_max clamp on
                # its lane block — values only exceed tau_max through
                # deposits, so clamping after the scatter matches the
                # homogeneous (and solo) clamp-per-deposit behaviour.
                amounts = self._deposit_q[bs] / self.tour[bs, winners]
                self.pher.deposit_raw_stacked(gslot, bs, dst_r, dst_c, amounts)
                for _params, _model, lanes in self._param_groups:
                    self.pher.clamp_max(lanes, _params.tau_max)
        self.backend.scatter_add(moved, bs, 1)
        return moved

    # ------------------------------------------------------------------
    # Stage 4 + crossings bookkeeping
    # ------------------------------------------------------------------
    def _record_crossings(self, step: int) -> np.ndarray:
        heights = self._heights[:, None]
        band = self._cross_rows[:, None]
        top = self.ids == int(Group.TOP)
        bottom = self.ids == int(Group.BOTTOM)
        newly = (
            (top & (self.rows >= heights - band)) | (bottom & (self.rows < band))
        ) & ~self.crossed
        self.crossed |= newly
        self.crossed_step[newly] = step
        self.crossed_tour[newly] = self.tour[newly]
        return self.xp.count_nonzero(newly, axis=1)

    def _stage_support(self, t: int) -> None:
        self.future_rows.fill(NO_FUTURE)
        self.future_cols.fill(NO_FUTURE)
        self.front_empty.fill(False)
        self.scan.fill(0.0)

    # ------------------------------------------------------------------
    # Template step / run
    # ------------------------------------------------------------------
    def step(self) -> BatchedStepReport:
        """Advance every lane one synchronous step (all four stages)."""
        t = self.t
        if self._pending_hooks:
            self._apply_due_hooks(t)
        self._stage_scan(t)
        decided = self._stage_select(t)
        moved = self._stage_move(t)
        new_crossings = self._record_crossings(t)
        self._stage_support(t)
        self.t += 1
        return BatchedStepReport(
            step=t, decided=decided, moved=moved, new_crossings=new_crossings
        )

    def run(
        self,
        steps: Optional[int] = None,
        record_timeline: bool = True,
        callback=None,
    ) -> List[RunResult]:
        """Run all lanes for ``steps`` steps; one :class:`RunResult` per lane.

        With ``record_timeline=True`` the per-step counters stream into a
        preallocated ``(steps, B)`` buffer on the compute device (no
        per-step Python list growth, no end-of-run re-stack — peak memory
        is one buffer, written once) and transfer to the host in a single
        round-trip when the results are assembled — the recording
        boundary. ``record_timeline=False`` skips the buffers entirely;
        sweeps that only need totals should use it.

        ``callback(engine, report)`` is invoked after every step with the
        :class:`BatchedStepReport` (per-lane count arrays) — the hook the
        metric-streaming layer attaches to. Callbacks must treat engine
        state as read-only (the bit-identity guarantee assumes it); on a
        GPU backend a callback that reads the report's arrays forces a
        per-step device sync, so leave it unset on hot paths.
        """
        n = self.config.steps if steps is None else int(steps)
        xp = self.xp
        if record_timeline and n > 0:
            moved_buf = xp.zeros((n, self.n_lanes), dtype=np.int64)
            cross_buf = xp.zeros((n, self.n_lanes), dtype=np.int64)
        else:
            moved_buf = cross_buf = None
        for i in range(n):
            report = self.step()
            if moved_buf is not None:
                moved_buf[i] = report.moved
                cross_buf[i] = report.new_crossings
            if callback is not None:
                callback(self, report)
        if moved_buf is not None:
            # One batched transfer at the recording boundary; on backends
            # with stream support (CuPy) both copies overlap on a side
            # stream into pinned staging buffers behind a single fence.
            moved_host, cross_host = self.backend.to_host_many(
                (moved_buf, cross_buf)
            )
            moved_mat = moved_host.T  # (B, steps)
            cross_mat = cross_host.T
        else:
            moved_mat = np.zeros((self.n_lanes, 0), dtype=np.int64)
            cross_mat = np.zeros((self.n_lanes, 0), dtype=np.int64)
        results = []
        for b, seed in enumerate(self.seeds):
            results.append(
                RunResult(
                    platform=self.platform,
                    seed=seed,
                    steps_run=n,
                    throughput_total=self.throughput(b),
                    throughput_top=self.throughput(b, Group.TOP),
                    throughput_bottom=self.throughput(b, Group.BOTTOM),
                    moved_per_step=moved_mat[b] if record_timeline else None,
                    crossings_per_step=cross_mat[b] if record_timeline else None,
                )
            )
        return results

    # ------------------------------------------------------------------
    # Introspection / verification
    # ------------------------------------------------------------------
    @property
    def padded_fraction(self) -> float:
        """Fraction of agent slots that are padding (0.0 when homogeneous)."""
        total = self.n_lanes * self.n_agents
        return 1.0 - float(self.lane_agents.sum()) / total if total else 0.0

    def lane_config(self, lane: int) -> SimulationConfig:
        """The :class:`SimulationConfig` backing one lane."""
        return self.configs[lane]

    def throughput(self, lane: int, group: Group = None) -> int:
        """Crossed-agent count of one lane (optionally one group)."""
        xp = self.xp
        crossed = self.crossed[lane]
        if group is None:
            return int(xp.count_nonzero(crossed[1:]))
        return int(xp.count_nonzero(crossed & (self.ids[lane] == int(Group(group)))))

    def lane_environment(self, lane: int) -> Environment:
        """Host copy of one lane's environment (solo-engine comparable)."""
        cfg = self.configs[lane]
        env = Environment(cfg.height, cfg.width)
        env.mat[...] = self.backend.to_host(
            self.mats[lane, : cfg.height, : cfg.width]
        )
        env.index[...] = self.backend.to_host(
            self.index[lane, : cfg.height, : cfg.width]
        )
        return env

    def lane_population(self, lane: int) -> Population:
        """Host copy of one lane's property matrix (solo-engine comparable)."""
        n = int(self.lane_agents[lane])
        end = n + 1
        pop = Population(n)
        to_host = self.backend.to_host
        pop.ids[...] = to_host(self.ids[lane, :end])
        pop.rows[...] = to_host(self.rows[lane, :end])
        pop.cols[...] = to_host(self.cols[lane, :end])
        pop.future_rows[...] = to_host(self.future_rows[lane, :end])
        pop.future_cols[...] = to_host(self.future_cols[lane, :end])
        pop.front_empty[...] = to_host(self.front_empty[lane, :end])
        pop.tour[...] = to_host(self.tour[lane, :end])
        pop.crossed[...] = to_host(self.crossed[lane, :end])
        pop.crossed_step[...] = to_host(self.crossed_step[lane, :end])
        pop.crossed_tour[...] = to_host(self.crossed_tour[lane, :end])
        return pop

    def lane_pheromone(self, lane: int, group: Group) -> Optional[np.ndarray]:
        """Host copy of one lane's pheromone field (None when LEM)."""
        if self.pher is None:
            return None
        cfg = self.configs[lane]
        return self.backend.to_host(
            self.pher.field(group)[lane, : cfg.height, : cfg.width]
        ).copy()

    def validate_state(self) -> None:
        """Cross-check env/pop invariants on every lane (test support)."""
        xp = self.xp
        for b in range(self.n_lanes):
            env = self.lane_environment(b)
            env.validate()
            self.lane_population(b).validate_against(env)
            # Padding slots must stay inert: sentinel IDs, no futures, no
            # tour, no crossings.
            pad = ~self.active[b]
            pad[0] = False  # the sentinel row is legitimately inactive
            if bool(xp.any(self.ids[b, pad] != 0)):
                raise AssertionError("padding agent slot acquired an ID")
            if bool(xp.any(self.future_rows[b, pad] != NO_FUTURE)) or bool(
                xp.any(self.future_cols[b, pad] != NO_FUTURE)
            ):
                raise AssertionError("padding agent slot decided a move")
            if bool(xp.any(self.tour[b, pad] != 0.0)):
                raise AssertionError("padding agent slot accumulated tour length")
            if bool(xp.any(self.crossed[b, pad])):
                raise AssertionError("padding agent slot crossed")
            cfg = self.configs[b]
            if bool(xp.any(self.mats[b, cfg.height :, :] != _PAD_CELL)) or bool(
                xp.any(self.mats[b, :, cfg.width :] != _PAD_CELL)
            ):
                raise AssertionError("grid padding lost its sentinel label")


def run_batched(
    config: Union[SimulationConfig, Sequence[SimulationConfig]],
    seeds: Sequence[int],
    steps: Optional[int] = None,
    record_timeline: bool = True,
    callback=None,
    engine: str = "batched",
) -> BatchedTimedResult:
    """Build a batched engine, run it, and time the whole batch.

    ``config`` may be one shared config or a per-lane sequence aligned with
    ``seeds`` (padded heterogeneous batching). ``callback`` is forwarded
    to :meth:`BatchedEngine.run` (per-step metrics hooks). ``engine``
    picks the execution strategy: ``"batched"`` (whole-array, the default)
    or ``"tiled"`` (the shared-memory-faithful
    :class:`~repro.cuda.batched_tiled.BatchedTiledEngine`); both produce
    bit-identical per-lane trajectories.
    """
    if engine == "batched":
        eng = BatchedEngine(config, seeds)
    elif engine == "tiled":
        # Deferred import: repro.cuda.batched_tiled subclasses this module.
        from ..cuda.batched_tiled import BatchedTiledEngine  # noqa: PLC0415

        eng = BatchedTiledEngine(config, seeds)
    else:
        raise EngineError(
            f"unknown batched engine {engine!r}; choose 'batched' or 'tiled'"
        )
    if isinstance(eng.backend, ProfilingBackend):
        # Counting backend: start the measured region at the run loop so
        # the metric sink's per-step dispatch deltas are exact from step 0.
        eng.backend.reset()
    start = time.perf_counter()
    results = eng.run(
        steps=steps, record_timeline=record_timeline, callback=callback
    )
    # Fence queued device work so the wall time covers execution, not just
    # kernel launches (no-op on the CPU backend).
    eng.backend.synchronize()
    elapsed = time.perf_counter() - start
    homogeneous = all(c == eng.configs[0] for c in eng.configs[1:])
    return BatchedTimedResult(
        results=results,
        wall_seconds=elapsed,
        config=eng.configs[0] if homogeneous else None,
        seeds=eng.seeds,
        configs=eng.configs,
    )
