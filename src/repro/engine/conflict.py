"""Scatter-to-gather conflict resolution helpers (paper IV.d, Figure 4).

Several agents may target the same empty cell in the same step. Instead of
serialising the writes with atomics, the paper inverts the problem: each
*empty cell* gathers the set of neighbouring agents whose FUTURE
coordinates point at it and picks one winner uniformly at random. These
helpers implement the pieces shared by the vectorized and tiled engines.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..grid.neighborhood import ABSOLUTE_OFFSETS

__all__ = ["shift", "winner_rank", "DIRECTION_INDEX"]

#: Map from (src - dst) offset to the absolute gather-direction index, i.e.
#: the position of the *source* cell relative to the destination.
DIRECTION_INDEX: Dict[Tuple[int, int], int] = {
    off: d for d, off in enumerate(ABSOLUTE_OFFSETS)
}


def shift(arr: np.ndarray, dr: int, dc: int, fill=0, xp=np, out=None) -> np.ndarray:
    """Return ``out`` with ``out[..., i, j] = arr[..., i + dr, j + dc]``.

    Cells whose source falls outside the array get ``fill``. This is the
    whole-array analogue of reading a neighbour through the shared-memory
    halo: direction ``d`` of the gather reads the agent standing at
    ``cell + offset[d]``. The grid occupies the last two axes; any leading
    axes (e.g. the batch axis of :class:`repro.engine.batched.BatchedEngine`)
    shift lane-wise. ``xp`` is the array namespace of ``arr``.

    ``out`` (same shape/dtype as ``arr``, may not alias it) reuses a
    scratch buffer instead of allocating; the engines pass one arena
    buffer for all eight gather directions, turning the hottest per-step
    allocation site into zero allocating dispatches.
    """
    h, w = arr.shape[-2:]
    if out is None:
        out = xp.full_like(arr, fill)
    else:
        out.fill(fill)
    r0, r1 = max(0, -dr), min(h, h - dr)
    c0, c1 = max(0, -dc), min(w, w - dc)
    if r0 < r1 and c0 < c1:
        out[..., r0:r1, c0:c1] = arr[..., r0 + dr : r1 + dr, c0 + dc : c1 + dc]
    return out


def winner_rank(u: np.ndarray, counts: np.ndarray, xp=np) -> np.ndarray:
    """Uniform winner index in ``[0, counts)`` from uniforms in ``(0, 1)``.

    ``floor(u * k)`` clamped to ``k - 1`` (the clamp only matters in the
    measure-zero limit ``u -> 1``); identical arithmetic on scalar and
    vector paths (and across array backends). The clamp runs in place on
    the intermediate ``k - 1`` array (fresh by construction), so the call
    performs no allocating namespace dispatch beyond the gather itself.
    """
    k = xp.asarray(counts, dtype=np.int64)
    pick = (xp.asarray(u, dtype=np.float64) * k).astype(np.int64)
    hi = k - 1
    if getattr(hi, "ndim", 0) == 0:
        # 0-d inputs: numpy arithmetic on 0-d arrays returns scalars,
        # which cannot be ``out=`` targets. The engines always pass
        # vectors, so this path only serves scalar callers.
        return xp.minimum(pick, xp.maximum(hi, 0))
    xp.maximum(hi, 0, out=hi)
    xp.minimum(pick, hi, out=hi)
    return hi
