"""Warm-state reuse: process-level caches for pure setup products.

Launch-heavy workloads (the executor pool's benchmark bursts, parameter
sweeps re-running the same scenario over many seeds) rebuild the same
engine setup artefacts over and over: agent placement is a pure function
of ``(geometry, seed)`` and the distance tables are a pure function of
``(height, scan_range)``. Rebuilding them dominates warm launch latency
once the step loop itself is allocation-free.

This module keeps small bounded LRU caches of those products, keyed by
value (geometry digest + seed / backend name), so a worker process that
executes the same-geometry launch twice pays the setup cost once and only
resets per-seed state. Two invariants make this bit-exact:

* every cached value is the output of a **pure** function of its key —
  :func:`~repro.grid.placement.place_groups` with a fresh keyed RNG and
  :func:`~repro.grid.build_distance_tables` — so a hit returns exactly
  the arrays a cold build would produce;
* cached arrays are **read-only by contract**: the batched engine copies
  placement into its padded device buffers, and distance stacks are only
  ever gathered from. Callers that mutate (the solo engines own their
  environment) must request ``copy=True``.

The caches are per-process (each pool worker warms independently) and
instrumented: :func:`warmstate_stats` feeds the service ``/stats``
surface and the BENCH warm-launch section.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Tuple

import numpy as np

from ..agents.population import Population
from ..grid import build_distance_tables, place_groups
from ..rng import PhiloxKeyedRNG

__all__ = [
    "cached_placement",
    "cached_dist_tables",
    "cached_dist_stack",
    "warmstate_stats",
    "reset_warmstate",
    "WARMSTATE_MAXSIZE",
]

#: Entries kept per cache before least-recently-used eviction. Placement
#: entries are the largest (two (H, W) grids + a property matrix per
#: (geometry, seed)); 64 covers a 40-scenario sweep's working set.
WARMSTATE_MAXSIZE = 64


class _LRU:
    """A tiny thread-safe LRU with hit/miss/eviction counters."""

    def __init__(self, maxsize: int) -> None:
        self.maxsize = int(maxsize)
        self._data: "OrderedDict" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key):
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = self.misses = self.evictions = 0


_placements = _LRU(WARMSTATE_MAXSIZE)
_dist_tables = _LRU(WARMSTATE_MAXSIZE)
_dist_stacks = _LRU(WARMSTATE_MAXSIZE)


def _placement_key(config, seed: int):
    """Geometry digest + seed: everything placement depends on, by value.

    ``config.obstacles`` is a frozen, hashable spec (or ``None``), so the
    whole key hashes; two configs that differ only in step budget, model
    parameters or backend share placement entries.
    """
    return (
        int(config.height),
        int(config.width),
        int(config.n_per_side),
        int(config.band_rows),
        config.obstacles,
        int(seed),
    )


def cached_placement(config, seed: int, copy: bool = False):
    """The host ``(Environment, Population)`` placement for one lane.

    Placement is a pure function of the geometry key and seed (it draws
    only from ``Stream.PLACEMENT`` of a fresh keyed RNG), so a cache hit
    is bit-identical to a cold build. The returned pair is **shared and
    read-only** unless ``copy=True``, which hands back deep copies for
    callers that mutate their environment in place (the solo engines).
    """
    key = _placement_key(config, int(seed))
    pair = _placements.get(key)
    if pair is None:
        obstacle_mask = (
            config.obstacles.build(config.height, config.width)
            if config.obstacles is not None
            else None
        )
        env = place_groups(
            config.height,
            config.width,
            config.n_per_side,
            config.band_rows,
            PhiloxKeyedRNG(int(seed)),
            obstacles=obstacle_mask,
        )
        pair = (env, Population.from_environment(env))
        _placements.put(key, pair)
    env, pop = pair
    if copy:
        return env.copy(), pop.copy()
    return env, pop


def cached_dist_tables(height: int, scan_range: int, backend) -> Dict:
    """One height's group distance tables on ``backend`` (read-only).

    The tables are constant lookup data — every consumer gathers from
    them and mid-run model swaps *replace* the mapping rather than
    mutating it — so sharing one instance per (height, scan_range,
    backend) is safe.
    """
    key = (int(height), int(scan_range), backend.name)
    tables = _dist_tables.get(key)
    if tables is None:
        tables = build_distance_tables(int(height), int(scan_range), backend=backend)
        _dist_tables.put(key, tables)
    return tables


def cached_dist_stack(heights: Tuple[int, ...], scan_range: int, backend):
    """The batched ``(2, B, Hmax, 8)`` distance stack (read-only device data).

    Keyed by the per-lane height tuple, so heterogeneous batches with the
    same lane layout share one upload; rows beyond a lane's height carry
    ``inf`` exactly as the cold build writes them.
    """
    heights = tuple(int(h) for h in heights)
    key = (heights, int(scan_range), backend.name)
    stack = _dist_stacks.get(key)
    if stack is None:
        from ..models.pheromone import group_slot
        from ..types import Group

        h_max = max(heights)
        by_height = {
            h: build_distance_tables(h, int(scan_range)) for h in set(heights)
        }
        dist_host = np.full(
            (2, len(heights), h_max, 8), np.inf, dtype=np.float64
        )
        for g in (Group.TOP, Group.BOTTOM):
            for b, h in enumerate(heights):
                dist_host[group_slot(g), b, :h] = by_height[h][g].table
        stack = backend.from_host(dist_host)
        _dist_stacks.put(key, stack)
    return stack


def warmstate_stats() -> Dict[str, int]:
    """Flat counters for /stats, ``repro status`` and the BENCH report."""
    out: Dict[str, int] = {}
    for name, cache in (
        ("placement", _placements),
        ("dist_tables", _dist_tables),
        ("dist_stacks", _dist_stacks),
    ):
        out[f"{name}_hits"] = cache.hits
        out[f"{name}_misses"] = cache.misses
        out[f"{name}_evictions"] = cache.evictions
        out[f"{name}_entries"] = len(cache)
    return out


def reset_warmstate() -> None:
    """Drop every cache and zero the counters (test isolation hook)."""
    _placements.clear()
    _dist_tables.clear()
    _dist_stacks.clear()
