"""Sequential reference engine — the single-threaded CPU stand-in.

Processes agents and contested cells one at a time in plain Python loops,
the way the paper's CPU baseline does, with two deliberate properties:

* **bit-identical trajectories** — the decision arithmetic is a scalar
  transcription of the vectorized kernels (IEEE-754 doubles reproduce the
  exact same bits when the same operation sequence is replayed), and the
  keyed Philox draws are pre-generated per step with the same
  ``(stream, step, lane)`` keys the vectorized engine uses;
* **scalar execution character** — every agent decision and every contested
  cell is resolved inside a Python loop, making this the slow per-agent
  platform against which the data-parallel engine's speedup (Fig. 5b/5c)
  is measured.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..agents.population import NO_FUTURE
from ..backend import resolve_backend
from ..config import SimulationConfig
from ..errors import EngineError
from ..rng import Stream
from ..types import Group
from .base import ABS_STEP_COSTS, BaseEngine
from .conflict import DIRECTION_INDEX

__all__ = ["SequentialEngine"]


class SequentialEngine(BaseEngine):
    """Scalar per-agent / per-cell reference implementation."""

    platform = "sequential"

    def __init__(self, config: SimulationConfig, seed: Optional[int] = None) -> None:
        # The scalar loops read every cell and agent one element at a time;
        # on a device backend each read would be a host round-trip, so this
        # reference engine is host-only by design.
        if resolve_backend(config.backend).capabilities.is_gpu:
            raise EngineError(
                "the sequential reference engine is host-only; use "
                "backend='numpy' or a whole-array engine for device backends"
            )
        super().__init__(config, seed)
        # Python-native lookup tables: identical float values (tolist is
        # exact), much cheaper to index from interpreted loops.
        self._dist_list = {
            g: self.dist[g].table.tolist() for g in (Group.TOP, Group.BOTTOM)
        }
        self._off_list = {
            g: [tuple(map(int, off)) for off in self._offsets[g]]
            for g in (Group.TOP, Group.BOTTOM)
        }
        n = self.pop.n_agents
        #: Scan rows as Python lists (mirrored into ``self.scan`` for API
        #: parity with the other engines).
        self._scan_rows: List[List[float]] = [[0.0] * 8 for _ in range(n + 1)]

    def _on_model_swapped(self) -> None:
        """Refresh the Python-native distance lookup after a model swap."""
        self._dist_list = {
            g: self.dist[g].table.tolist() for g in (Group.TOP, Group.BOTTOM)
        }

    # ------------------------------------------------------------------
    # Stage 1: initial calculation
    # ------------------------------------------------------------------
    def _stage_scan(self, t: int) -> None:
        env, pop = self.env, self.pop
        h, w = env.shape
        mat_l = env.mat.tolist()
        tau_l = None
        if self.pher is not None:
            tau_l = {
                g: self.pher.field(g).tolist() for g in (Group.TOP, Group.BOTTOM)
            }
        ids_l = pop.ids.tolist()
        rows_l = pop.rows.tolist()
        cols_l = pop.cols.tolist()
        front: List[bool] = [False] * (pop.n_agents + 1)
        model = self.model

        for a in range(1, pop.n_agents + 1):
            group = Group(ids_l[a])
            row = rows_l[a]
            col = cols_l[a]
            offsets = self._off_list[group]
            dist_row = self._dist_list[group][row]
            tau_field = tau_l[group] if tau_l is not None else None
            scan_row = self._scan_rows[a]
            for s in range(8):
                dr, dc = offsets[s]
                r = row + dr
                c = col + dc
                if 0 <= r < h and 0 <= c < w and mat_l[r][c] == 0:
                    tau = tau_field[r][c] if tau_field is not None else 0.0
                    scan_row[s] = model.scan_value_scalar(dist_row[s], tau)
                    if s == 0:
                        front[a] = True
                else:
                    scan_row[s] = 0.0
        pop.front_empty[:] = front
        # Mirror into the shared scan matrix so cross-engine inspection and
        # the support-stage reset behave uniformly.
        self.scan[1:] = self._scan_rows[1:]

    # ------------------------------------------------------------------
    # Stage 2: tour construction
    # ------------------------------------------------------------------
    def _stage_select(self, t: int) -> int:
        pop = self.pop
        model = self.model
        variates = model.scalar_prepare(self.rng, t, pop.n_agents)
        ids_l = pop.ids.tolist()
        rows_l = pop.rows.tolist()
        cols_l = pop.cols.tolist()
        front_l = pop.front_empty.tolist()
        forward_priority = self.config.forward_priority

        fut_r: List[int] = [NO_FUTURE] * (pop.n_agents + 1)
        fut_c: List[int] = [NO_FUTURE] * (pop.n_agents + 1)
        eligible = self.eligible_mask(t).tolist()
        decided = 0
        for a in range(1, pop.n_agents + 1):
            if not eligible[a]:
                continue
            if forward_priority and front_l[a]:
                slot = 0
            else:
                slot = model.select_scalar(self._scan_rows[a], a, variates)
            if slot >= 0:
                dr, dc = self._off_list[Group(ids_l[a])][slot]
                fut_r[a] = rows_l[a] + dr
                fut_c[a] = cols_l[a] + dc
                decided += 1
        pop.future_rows[:] = fut_r
        pop.future_cols[:] = fut_c
        return decided

    # ------------------------------------------------------------------
    # Stage 3: movement
    # ------------------------------------------------------------------
    def _stage_move(self, t: int) -> int:
        env, pop = self.env, self.pop
        w = env.width
        mat, index = env.mat, env.index

        if self.pher is not None:
            self.pher.evaporate()

        # Gather phase: group candidate agents per destination cell. Every
        # future cell was empty when scanned and nothing has moved since, so
        # each key below is an empty cell; candidates are kept in absolute
        # gather-direction order, matching the vectorized sweep.
        fut_r = pop.future_rows.tolist()
        fut_c = pop.future_cols.tolist()
        rows_l = pop.rows.tolist()
        cols_l = pop.cols.tolist()
        pending: Dict[int, List[Tuple[int, int]]] = {}
        for a in range(1, pop.n_agents + 1):
            fr = fut_r[a]
            if fr == NO_FUTURE:
                continue
            fc = fut_c[a]
            d = DIRECTION_INDEX[(rows_l[a] - fr, cols_l[a] - fc)]
            key = fr * w + fc
            if key in pending:
                pending[key].append((d, a))
            else:
                pending[key] = [(d, a)]

        if not pending:
            return 0
        # One batched draw for all contested cells, keyed by cell lane —
        # the same keys the vectorized engine uses.
        lanes = np.fromiter(pending.keys(), dtype=np.uint64, count=len(pending))
        uniforms = self.rng.uniform(Stream.MOVE_WINNER, t, lanes).tolist()

        deposit_q = self.pher.params.deposit_q if self.pher is not None else 0.0
        moved = 0
        for (key, cands), u in zip(pending.items(), uniforms):
            cands.sort()  # ascending direction index
            k = len(cands)
            pick = int(u * k)
            if pick >= k:  # u -> 1 rounding guard, same clamp as winner_rank
                pick = k - 1
            d, a = cands[pick]
            fr, fc = divmod(key, w)
            src_r = rows_l[a]
            src_c = cols_l[a]
            mat[fr, fc] = pop.ids[a]
            index[fr, fc] = a
            mat[src_r, src_c] = 0
            index[src_r, src_c] = 0
            pop.rows[a] = fr
            pop.cols[a] = fc
            tour = float(pop.tour[a]) + ABS_STEP_COSTS[d]
            pop.tour[a] = tour
            if self.pher is not None:
                self.pher.deposit_scalar(
                    Group(int(pop.ids[a])), fr, fc, deposit_q / tour
                )
            moved += 1
        return moved
