"""Engine base class: the four-stage synchronous step pipeline.

Every engine executes the paper's kernel sequence each step:

1. **initial calculation** (scan): per agent, find the empty neighbour
   cells and fill the agent's scan-matrix row (eq. 1 inputs / eq. 2
   numerators);
2. **tour construction** (select): per agent, decide the future cell —
   forward if the front cell is empty, else the model's probabilistic rule;
3. **agent movement**: per *empty cell*, gather the agents that target it,
   pick one winner uniformly (the scatter-to-gather transform), execute the
   moves, update tours, pheromones and crossing bookkeeping;
4. **support**: reset the scan matrix and the future coordinates.

Engines differ only in *how* the stages execute (Python loops, whole-array
NumPy, or per-tile NumPy with halos); the keyed RNG makes their outputs
bit-identical.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..agents import Population
from ..backend import resolve_backend
from ..config import SimulationConfig
from ..errors import EngineError
from ..grid import offsets_array
from ..models import PheromoneField, build_model
from ..rng import PhiloxKeyedRNG, Stream
from ..types import Group
from .warmstate import cached_dist_tables, cached_placement

__all__ = ["BaseEngine", "StepReport", "RunResult", "require_float64"]


def require_float64(backend) -> None:
    """Reject backends without exact double precision (shared engine guard).

    The eq. 1/eq. 2 decision arithmetic requires float64 for the
    bit-identity guarantee; engines call this once at construction.
    """
    if not backend.capabilities.supports_float64:
        raise EngineError(
            f"backend {backend.name!r} lacks float64 support; the "
            "eq. 1/eq. 2 decision arithmetic requires exact double "
            "precision for the bit-identity guarantee"
        )

#: Euclidean cost of a move in each absolute gather direction
#: (NW, N, NE, W, E, SW, S, SE) — the constant-memory tour-increment table.
ABS_STEP_COSTS = (
    1.4142135623730951,
    1.0,
    1.4142135623730951,
    1.0,
    1.0,
    1.4142135623730951,
    1.0,
    1.4142135623730951,
)


@dataclass(frozen=True)
class StepReport:
    """Per-step outcome summary returned by :meth:`BaseEngine.step`."""

    step: int
    #: Agents that decided on a future cell in tour construction.
    decided: int
    #: Agents that actually moved (gather winners).
    moved: int
    #: Agents newly entering the opposite band this step.
    new_crossings: int


@dataclass
class RunResult:
    """Outcome of :meth:`BaseEngine.run`."""

    platform: str
    seed: int
    steps_run: int
    throughput_total: int
    throughput_top: int
    throughput_bottom: int
    moved_per_step: Optional[np.ndarray]
    crossings_per_step: Optional[np.ndarray]

    @property
    def total_agents(self) -> int:
        """Total moved+unmoved population implied by the run (for ratios)."""
        return self.throughput_total  # pragma: no cover - legacy alias


class BaseEngine(abc.ABC):
    """Common state construction and the step/run template."""

    #: Platform tag, mirrors the paper's CPU/GPU split.
    platform: str = "base"

    def __init__(self, config: SimulationConfig, seed: Optional[int] = None) -> None:
        self.config = config
        self.seed = int(config.seed if seed is None else seed)
        #: Resolved array backend; every stage's array math routes through
        #: ``self.xp`` so the same kernels run on NumPy or CuPy.
        self.backend = resolve_backend(config.backend)
        require_float64(self.backend)
        self.xp = self.backend.xp
        #: Per-engine scratch arena: reusable step-loop buffers keyed by
        #: stage-local names (see ScratchArena's overwrite contract).
        self.scratch = self.backend.scratch_arena()
        self.rng = PhiloxKeyedRNG(self.seed, backend=self.backend)
        self.model = build_model(config.params, backend=self.backend)

        # Data preparation stage (paper IV.a): environment + index matrix,
        # property matrix, distance tables (constant memory), pheromone and
        # scan matrices. Obstacles (extension) are carved out before agents
        # are placed. Placement runs on the host with a fresh keyed RNG
        # (Stream.PLACEMENT draws depend only on the seed, so this matches
        # any backend bit for bit); the finished grid is then moved onto
        # the backend device — the data-upload step of the paper's
        # pipeline, and the last host round-trip before recording.
        # Warm-state reuse (launch bursts): the cached placement is a pure
        # function of (geometry, seed) — ``copy=True`` hands back a private
        # deep copy because the engine mutates its environment in place.
        host_env, _ = cached_placement(config, self.seed, copy=True)
        self.env = host_env.to_backend(self.backend)
        self.pop = Population.from_environment(self.env)
        self.dist = cached_dist_tables(
            config.height,
            getattr(config.params, "scan_range", 1),
            self.backend,
        )
        self.pher: Optional[PheromoneField] = (
            PheromoneField(config.height, config.width, config.params, self.backend)
            if self.model.uses_pheromone
            else None
        )
        #: Scan matrix: one row per agent plus the sentinel 0th row.
        self.scan = self.xp.zeros((self.pop.n_agents + 1, 8), dtype=np.float64)
        self.t = 0

        # Group membership is static; cache the per-group index vectors and
        # slot-offset arrays once.
        self._members: Dict[Group, np.ndarray] = {
            g: self.pop.members(g) for g in (Group.TOP, Group.BOTTOM)
        }
        self._offsets: Dict[Group, np.ndarray] = {
            g: self.backend.from_host(offsets_array(g))
            for g in (Group.TOP, Group.BOTTOM)
        }

        # Fused-group caches: the whole-array engines run scan/select as
        # ONE launch over the concatenated TOP-then-BOTTOM rows instead of
        # one pass per group. ``_fused_gslot`` maps each row to its
        # pheromone-stack slot (see models.pheromone.group_slot); the
        # ``(2, 8, 2)`` offset stack and ``(2, H, 8)`` distance stack make
        # every per-group table gather a single ``[gslot, ...]`` fancy
        # index. Row order within the concatenation is irrelevant: the
        # model kernels are row-independent and the RNG keys each row by
        # its agent index, so the fused pass is bit-identical to the
        # per-group passes (tests/test_backend_parity.py pins this).
        m_top, m_bot = self._members[Group.TOP], self._members[Group.BOTTOM]
        self._fused_idx = self.xp.concatenate([m_top, m_bot])
        self._fused_gslot = self.xp.concatenate(
            [
                self.xp.zeros(int(m_top.size), dtype=np.int64),
                self.xp.ones(int(m_bot.size), dtype=np.int64),
            ]
        )
        self._offsets_stack = self.xp.stack(
            [self._offsets[Group.TOP], self._offsets[Group.BOTTOM]]
        )
        self._dist_stack = self._build_dist_stack()

        # Heterogeneous-velocity extension (paper Section VII future work):
        # a keyed draw per agent marks the slow class; slow agents are
        # movement-eligible only every ``slow_period``-th step (staggered by
        # agent index so the crowd does not pulse in lockstep).
        self._slow_mask = self.xp.zeros(self.pop.n_agents + 1, dtype=bool)
        if config.slow_fraction > 0.0:
            lanes = self.xp.arange(self.pop.n_agents + 1, dtype=np.uint64)
            u = self.rng.uniform(Stream.SPEED_CLASS, 0, lanes)
            self._slow_mask = u < config.slow_fraction
            self._slow_mask[0] = False
        # The mask is static; the host flag spares a per-step device sync.
        self._any_slow = bool(self._slow_mask.any())

        # Step-hook schedule (components framework): hooks fire once,
        # before their firing step executes, in (fire_step, config-order)
        # order — a pure function of the step counter, so hooked runs are
        # bit-identical across engines.
        self._pending_hooks = sorted(
            ((hook.fire_step(), idx, hook) for idx, hook in enumerate(config.hooks)),
            key=lambda entry: entry[:2],
        )

    def _apply_due_hooks(self, t: int) -> None:
        """Fire every scheduled hook whose firing step has arrived."""
        while self._pending_hooks and self._pending_hooks[0][0] <= t:
            _, _, hook = self._pending_hooks.pop(0)
            hook.apply(self)

    # ------------------------------------------------------------------
    # Extensions
    # ------------------------------------------------------------------
    def eligible_mask(self, t: int) -> np.ndarray:
        """Movement eligibility per agent at step ``t`` (velocity classes).

        Fast agents are always eligible; slow agents only when
        ``(t + index) % slow_period == 0``. With ``slow_fraction = 0``
        (default) everyone is always eligible.
        """
        if not self._any_slow:
            return self.xp.ones(self.pop.n_agents + 1, dtype=bool)
        idx = self.xp.arange(self.pop.n_agents + 1, dtype=np.int64)
        on_beat = (t + idx) % self.config.slow_period == 0
        return ~self._slow_mask | on_beat

    def swap_model(self, params) -> None:
        """Swap the movement model mid-run (panic-alarm extension).

        The environment, populations and — when both models use it — the
        pheromone field carry over; switching to a pheromone-free model
        discards the field (a subsequent switch back starts from tau0).
        """
        from ..models import PheromoneField, build_model

        params.validate()
        model = build_model(params, backend=self.backend)
        if model.uses_pheromone:
            if self.pher is None:
                self.pher = PheromoneField(
                    self.config.height, self.config.width, params, self.backend
                )
            else:
                self.pher.params = params
        else:
            self.pher = None
        self.model = model
        new_range = getattr(params, "scan_range", 1)
        if new_range != self.dist[Group.TOP].scan_range:
            self.dist = cached_dist_tables(
                self.config.height, new_range, self.backend
            )
            self._dist_stack = self._build_dist_stack()
        self._on_model_swapped()

    def _build_dist_stack(self) -> np.ndarray:
        """Both groups' distance tables as one ``(2, H, 8)`` device stack."""
        return self.xp.stack(
            [self.dist[Group.TOP].table, self.dist[Group.BOTTOM].table]
        )

    def _on_model_swapped(self) -> None:
        """Hook for engines that cache model-derived lookups."""

    # ------------------------------------------------------------------
    # Template step
    # ------------------------------------------------------------------
    def step(self) -> StepReport:
        """Run one synchronous simulation step (all four stages)."""
        t = self.t
        if self._pending_hooks:
            self._apply_due_hooks(t)
        self._stage_scan(t)
        decided = self._stage_select(t)
        moved = self._stage_move(t)
        new_crossings = self.pop.record_crossings(
            self.config.height, self.config.cross_rows, t
        )
        self._stage_support(t)
        self.t += 1
        # ``decided``/``moved`` may arrive as 0-d device scalars (the
        # whole-array stages accumulate on-device); the report build is the
        # per-step recording boundary, so the host sync happens here, once.
        return StepReport(
            step=t,
            decided=int(decided),
            moved=int(moved),
            new_crossings=int(new_crossings),
        )

    def run(
        self,
        steps: Optional[int] = None,
        callback: Optional[Callable[["BaseEngine", StepReport], None]] = None,
        record_timeline: bool = True,
    ) -> RunResult:
        """Run ``steps`` steps (default: the configured budget).

        ``callback(engine, report)`` is invoked after every step; use it for
        metrics hooks and recorders. With ``record_timeline=True`` the
        per-step counters stream into preallocated ``(steps,)`` host
        buffers (the recording boundary); ``record_timeline=False`` skips
        the buffers entirely — the fast path for sweeps that only need
        totals.
        """
        n = self.config.steps if steps is None else int(steps)
        moved_tl = np.zeros(n, dtype=np.int64) if record_timeline else None
        cross_tl = np.zeros(n, dtype=np.int64) if record_timeline else None
        for i in range(n):
            report = self.step()
            if record_timeline:
                moved_tl[i] = report.moved
                cross_tl[i] = report.new_crossings
            if callback is not None:
                callback(self, report)
        return RunResult(
            platform=self.platform,
            seed=self.seed,
            steps_run=n,
            throughput_total=self.pop.crossed_count(),
            throughput_top=self.pop.crossed_count(Group.TOP),
            throughput_bottom=self.pop.crossed_count(Group.BOTTOM),
            moved_per_step=moved_tl,
            crossings_per_step=cross_tl,
        )

    # ------------------------------------------------------------------
    # Stage implementations supplied by subclasses
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _stage_scan(self, t: int) -> None:
        """Initial calculation phase: fill the scan matrix and FRONT CELL."""

    @abc.abstractmethod
    def _stage_select(self, t: int) -> int:
        """Tour construction: set FUTURE ROW/COLUMN; return #agents deciding."""

    @abc.abstractmethod
    def _stage_move(self, t: int) -> int:
        """Agent movement via scatter-to-gather; return #agents moved."""

    def _stage_support(self, t: int) -> None:
        """Support kernel: reset the scan matrix and future coordinates."""
        self.pop.reset_futures()
        self.scan.fill(0.0)

    # ------------------------------------------------------------------
    # Introspection / verification
    # ------------------------------------------------------------------
    def throughput(self) -> int:
        """Number of agents that have crossed so far."""
        return self.pop.crossed_count()

    def validate_state(self) -> None:
        """Cross-check env/pop invariants (used liberally in tests)."""
        self.env.validate()
        self.pop.validate_against(self.env)

    def state_equals(self, other: "BaseEngine") -> bool:
        """Exact state equality with another engine (any platform)."""
        if not self.env.equals(other.env):
            return False
        if not self.pop.equals(other.pop):
            return False
        if (self.pher is None) != (other.pher is None):
            return False
        if self.pher is not None and not self.pher.equals(other.pher):
            return False
        return True
