"""Simulation driver: engine registry, timed runs, and step hooks.

This is the highest-level entry point most users need::

    from repro import SimulationConfig, run_simulation
    result = run_simulation(SimulationConfig(height=64, width=64,
                                             n_per_side=200, steps=500))
    print(result.throughput_total)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Type


from ..backend import resolve_backend
from ..backend.profiling import (
    PROFILE_PREFIX,
    DispatchProfile,
    ProfilingBackend,
)
from ..config import SimulationConfig
from ..errors import EngineError
from .base import BaseEngine, RunResult, StepReport
from .sequential import SequentialEngine
from .vectorized import VectorizedEngine

__all__ = [
    "ENGINE_REGISTRY",
    "available_engines",
    "build_engine",
    "run_simulation",
    "TimedRunResult",
]


def _registry() -> Dict[str, Type[BaseEngine]]:
    reg: Dict[str, Type[BaseEngine]] = {
        "sequential": SequentialEngine,
        "vectorized": VectorizedEngine,
    }
    # The tiled engine lives in repro.cuda (it needs the tiling substrate);
    # import lazily so repro.engine has no dependency on repro.cuda.
    try:
        from ..cuda.tiled_engine import TiledEngine

        reg["tiled"] = TiledEngine
    except ImportError:  # pragma: no cover - only during partial installs
        pass
    return reg


#: Engine name -> class. "sequential" is the CPU stand-in, "vectorized" the
#: GPU stand-in, "tiled" the shared-memory-faithful GPU emulation.
ENGINE_REGISTRY: Dict[str, Type[BaseEngine]] = {}


def available_engines() -> Dict[str, Type[BaseEngine]]:
    """Return the engine registry, populating it on first use."""
    if not ENGINE_REGISTRY:
        ENGINE_REGISTRY.update(_registry())
    return ENGINE_REGISTRY


def build_engine(
    config: SimulationConfig,
    engine: str = "vectorized",
    seed: Optional[int] = None,
    backend: Optional[str] = None,
) -> BaseEngine:
    """Instantiate an engine by name for ``config``.

    ``backend`` overrides ``config.backend`` (an array-backend name such
    as "numpy" or "cupy"); the engine resolves it through
    :func:`repro.backend.resolve_backend`, so an unavailable backend
    raises :class:`~repro.errors.BackendUnavailableError` here.
    """
    registry = available_engines()
    try:
        cls = registry[engine]
    except KeyError:
        raise EngineError(
            f"unknown engine {engine!r}; available: {sorted(registry)}"
        ) from None
    if backend is not None:
        config = config.replace(backend=str(backend))
    return cls(config, seed=seed)


@dataclass
class TimedRunResult:
    """A :class:`RunResult` plus wall-clock timing (paper Fig. 5 inputs).

    ``profile`` carries the run's dispatch profile when the run executed
    on a counting backend (``run_simulation(profile=True)`` or an
    explicit ``"profile[:inner]"`` backend name); ``None`` otherwise.
    """

    result: RunResult
    wall_seconds: float
    config: SimulationConfig = field(repr=False, default=None)
    profile: Optional[DispatchProfile] = field(repr=False, default=None)

    @property
    def seconds_per_step(self) -> float:
        """Mean wall time per simulation step."""
        return self.wall_seconds / max(1, self.result.steps_run)

    @property
    def throughput_total(self) -> int:
        """Convenience passthrough."""
        return self.result.throughput_total


def run_simulation(
    config: SimulationConfig,
    engine: str = "vectorized",
    seed: Optional[int] = None,
    steps: Optional[int] = None,
    callback: Optional[Callable[[BaseEngine, StepReport], None]] = None,
    record_timeline: bool = True,
    backend: Optional[str] = None,
    profile: bool = False,
    tracer=None,
) -> TimedRunResult:
    """Build an engine, run it, and return the result with wall timing.

    ``profile=True`` wraps the configured backend in the dispatch-counting
    :class:`~repro.backend.ProfilingBackend` (``"profile:<inner>"``) and
    returns the run's :class:`~repro.backend.DispatchProfile` on
    ``TimedRunResult.profile`` — construction-time dispatches land in the
    profile's ``setup``, the run loop in ``counts``. Counting does not
    perturb the trajectory: a profiled run is bit-identical to an
    unprofiled one.

    ``tracer`` (a :class:`repro.obs.Tracer`) records two spans around
    the same boundaries the wall clock already measures: ``warm_backend``
    over backend resolution + engine construction, and ``engine.run``
    over the run loop + device fence, with step/agent counts as attrs.
    Like profiling, tracing only *reads* timing — trajectories are
    bit-identical with or without it.
    """
    if profile:
        base = str(backend if backend is not None else config.backend)
        if base != PROFILE_PREFIX and not base.startswith(PROFILE_PREFIX + ":"):
            base = f"{PROFILE_PREFIX}:{base}"
        backend = base
        # Zero stale counters (the instance is cached per name) so the
        # setup snapshot below covers only this engine's construction.
        resolve_backend(base).reset()
    warm_span = tracer.start("warm_backend") if tracer is not None else None
    eng = build_engine(config, engine=engine, seed=seed, backend=backend)
    if warm_span is not None:
        tracer.finish(warm_span)
    setup = None
    if isinstance(eng.backend, ProfilingBackend):
        # Counting backend (whether via profile=True or an explicit
        # "profile[:inner]" config): the measured region is the run loop,
        # so per-step figures — and the metric sink's per-step deltas —
        # exclude one-off construction uploads.
        setup = eng.backend.snapshot()
        eng.backend.reset()
    run_span = (
        tracer.start("engine.run", engine=engine, agents=config.total_agents)
        if tracer is not None
        else None
    )
    start = time.perf_counter()
    result = eng.run(steps=steps, callback=callback, record_timeline=record_timeline)
    # Fence queued device work so the wall time covers execution, not just
    # kernel launches (no-op on the CPU backend).
    eng.backend.synchronize()
    elapsed = time.perf_counter() - start
    if run_span is not None:
        run_span.attrs["steps"] = result.steps_run
        tracer.finish(run_span)
    run_profile = None
    if isinstance(eng.backend, ProfilingBackend):
        run_profile = DispatchProfile(
            counts=eng.backend.snapshot(),
            steps=result.steps_run,
            setup=setup,
        )
    return TimedRunResult(
        result=result, wall_seconds=elapsed, config=config, profile=run_profile
    )
