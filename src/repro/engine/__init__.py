"""Simulation engines: sequential (CPU), vectorized (GPU) and the driver."""

from .base import ABS_STEP_COSTS, BaseEngine, RunResult, StepReport
from .batched import (
    BatchedEngine,
    BatchedStepReport,
    BatchedTimedResult,
    run_batched,
)
from .conflict import DIRECTION_INDEX, shift, winner_rank
from .sequential import SequentialEngine
from .simulation import (
    TimedRunResult,
    available_engines,
    build_engine,
    run_simulation,
)
from .vectorized import VectorizedEngine
from .warmstate import reset_warmstate, warmstate_stats

__all__ = [
    "reset_warmstate",
    "warmstate_stats",
    "BaseEngine",
    "SequentialEngine",
    "VectorizedEngine",
    "BatchedEngine",
    "StepReport",
    "BatchedStepReport",
    "RunResult",
    "TimedRunResult",
    "BatchedTimedResult",
    "run_batched",
    "ABS_STEP_COSTS",
    "DIRECTION_INDEX",
    "shift",
    "winner_rank",
    "available_engines",
    "build_engine",
    "run_simulation",
]
