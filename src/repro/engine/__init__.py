"""Simulation engines: sequential (CPU), vectorized (GPU) and the driver."""

from .base import ABS_STEP_COSTS, BaseEngine, RunResult, StepReport
from .conflict import DIRECTION_INDEX, shift, winner_rank
from .sequential import SequentialEngine
from .simulation import (
    TimedRunResult,
    available_engines,
    build_engine,
    run_simulation,
)
from .vectorized import VectorizedEngine

__all__ = [
    "BaseEngine",
    "SequentialEngine",
    "VectorizedEngine",
    "StepReport",
    "RunResult",
    "TimedRunResult",
    "ABS_STEP_COSTS",
    "DIRECTION_INDEX",
    "shift",
    "winner_rank",
    "available_engines",
    "build_engine",
    "run_simulation",
]
