"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — package, device and scenario summary;
* ``run`` — one simulation with a rendered snapshot and metrics;
* ``figures`` — regenerate the paper's tables/figures into a directory;
* ``occupancy`` — the CC 2.0 occupancy calculator;
* ``speedup`` — the modelled Fig 5c curve.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .config import SimulationConfig
from .engine import run_simulation
from .experiments import SCALES, occupancy_table, run_all, table1_hardware
from .io import render_engine
from .metrics import efficiency_report, lane_order_parameter

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "GPU-accelerated nature-inspired bi-directional pedestrian "
            "movement (Dutta, McLeod & Friesen, IPPS 2014 reproduction)"
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package, device and scenario summary")

    run_p = sub.add_parser("run", help="run one simulation")
    run_p.add_argument("--model", default="lem", choices=["lem", "aco", "random", "greedy"])
    run_p.add_argument("--engine", default="vectorized",
                       choices=["sequential", "vectorized", "tiled"])
    run_p.add_argument("--height", type=int, default=64)
    run_p.add_argument("--width", type=int, default=64)
    run_p.add_argument("--agents", type=int, default=256, help="agents per side")
    run_p.add_argument("--steps", type=int, default=500)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--render", action="store_true", help="print the final grid")

    fig_p = sub.add_parser("figures", help="regenerate the paper's figures")
    fig_p.add_argument("--outdir", default="results")
    fig_p.add_argument("--scale", default="quick", choices=sorted(SCALES))
    fig_p.add_argument("--seeds", type=int, default=2, help="repetitions per point")

    occ_p = sub.add_parser("occupancy", help="CC 2.0 occupancy calculator")
    occ_p.add_argument("--threads", type=int, default=256)
    occ_p.add_argument("--registers", type=int, default=20)
    occ_p.add_argument("--shared", type=int, default=0)

    spd_p = sub.add_parser("speedup", help="modelled Fig 5c speedup curve")
    spd_p.add_argument("--points", type=int, default=8)

    notes_p = sub.add_parser(
        "notes", help="Section IV implementation-notes table per kernel"
    )
    notes_p.add_argument("--agents", type=int, default=25600, help="total agents")
    notes_p.add_argument("--model", default="aco", choices=["lem", "aco"])
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "info":
        from .cuda import GTX_560_TI_448, I7_930

        print(f"repro {__version__} — bi-directional pedestrian movement")
        print()
        print(table1_hardware())
        print()
        print("scales:")
        for name, scale in SCALES.items():
            print(f"  {name:>9s}: {scale.description}")
        return 0

    if args.command == "run":
        cfg = SimulationConfig(
            height=args.height,
            width=args.width,
            n_per_side=args.agents,
            steps=args.steps,
            seed=args.seed,
        ).with_model(args.model)
        print(cfg.describe())
        out = run_simulation(cfg, engine=args.engine)
        res = out.result
        eng = out  # TimedRunResult
        print(
            f"{res.platform}: {res.throughput_total}/{cfg.total_agents} crossed "
            f"in {res.steps_run} steps ({out.wall_seconds:.2f}s wall, "
            f"{out.seconds_per_step * 1e3:.2f} ms/step)"
        )
        return 0

    if args.command == "figures":
        seeds = tuple(range(args.seeds))
        report = run_all(
            args.outdir,
            scale=args.scale,
            fig6a_seeds=seeds,
            fig6b_seeds_cpu=tuple(100 + s for s in seeds),
            fig6b_seeds_gpu=tuple(200 + s for s in seeds),
        )
        print(f"figures written to {args.outdir}/")
        print(f"Fig 6a overall ACO gain: {report.fig6a_overall_gain:+.1%} (paper +39.6%)")
        print(f"Fig 6b platform p-value: {report.fig6b_pvalue:.4f} (paper 0.6145)")
        return 0

    if args.command == "occupancy":
        from .cuda import occupancy

        occ = occupancy(args.threads, args.registers, args.shared)
        print(
            f"{args.threads} threads/block, {args.registers} regs/thread, "
            f"{args.shared} B shared/block:"
        )
        print(
            f"  {occ.active_blocks_per_sm} blocks/SM, "
            f"{occ.active_warps_per_sm} warps/SM, occupancy {occ.occupancy:.0%} "
            f"(limited by {occ.limiter})"
        )
        print()
        print(occupancy_table())
        return 0

    if args.command == "notes":
        from .cuda import implementation_report

        print(implementation_report(total_agents=args.agents, model=args.model))
        return 0

    if args.command == "speedup":
        from .cuda import paper_speedup_curve
        from .experiments import paper_scenarios

        scenarios = paper_scenarios()
        stride = max(1, len(scenarios) // args.points)
        counts = [s.total_agents for s in scenarios[::stride]]
        for n, s in paper_speedup_curve(counts):
            print(f"  {n:>7d} agents: {s:5.2f}x")
        return 0

    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
