"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — package, device and scenario summary;
* ``run`` — one simulation with a rendered snapshot and metrics;
* ``sweep`` — a batched scenario x model x seed grid (``--smoke`` for the
  CI fast path);
* ``serve`` — long-running simulation service (HTTP, micro-batching,
  result cache, optional ``--analytics-db`` run persistence);
* ``submit`` / ``status`` — clients for a running ``repro serve``;
* ``trace`` — render a finished job's span tree (phase timings) from a
  live service or straight from an analytics SQLite file;
* ``analytics`` — query a run store (live service or SQLite file):
  run listings, ASCII fundamental diagrams, and ``--latency`` phase
  percentiles;
* ``figures`` — regenerate the paper's tables/figures into a directory;
* ``occupancy`` — the CC 2.0 occupancy calculator;
* ``speedup`` — the modelled Fig 5c curve.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .config import SimulationConfig
from .experiments import SCALES, occupancy_table, run_all, table1_hardware
from .io import render_engine
from .metrics import efficiency_report, lane_order_parameter

__all__ = ["main", "build_parser"]


def _cache_size(value: str):
    """argparse type for ``--cache-size``: entries or suffixed bytes.

    A bare integer is an entry budget ("500" = 500 results); a value
    with a byte suffix is a byte budget ("64MB", "2gb", "512kb"). Both
    return a ``(kind, amount)`` pair the serve command maps onto
    :class:`~repro.service.cache.ResultCache` budgets.
    """
    spec = value.strip().lower()
    units = {"gb": 1024**3, "mb": 1024**2, "kb": 1024, "b": 1}
    for suffix, mult in units.items():  # longest suffixes first
        if spec.endswith(suffix):
            try:
                amount = int(float(spec[: -len(suffix)].strip()) * mult)
            except ValueError:
                amount = 0
            if amount < 1:
                raise argparse.ArgumentTypeError(
                    f"bad --cache-size {value!r} (expected e.g. '500' "
                    f"entries or '64MB' bytes)"
                )
            return ("bytes", amount)
    try:
        amount = int(spec)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad --cache-size {value!r} (expected e.g. '500' entries or "
            f"'64MB' bytes)"
        ) from None
    if amount < 1:
        raise argparse.ArgumentTypeError(
            f"--cache-size must be positive, got {value!r}"
        )
    return ("entries", amount)


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "GPU-accelerated nature-inspired bi-directional pedestrian "
            "movement (Dutta, McLeod & Friesen, IPPS 2014 reproduction)"
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package, device and scenario summary")

    run_p = sub.add_parser("run", help="run one simulation")
    run_p.add_argument("--model", default="lem", choices=["lem", "aco", "random", "greedy"])
    run_p.add_argument("--engine", default="vectorized",
                       choices=["sequential", "vectorized", "tiled"])
    run_p.add_argument(
        "--backend",
        default="numpy",
        help="array backend: numpy (default) or cupy (GPU; needs repro[gpu])",
    )
    run_p.add_argument("--height", type=int, default=64)
    run_p.add_argument("--width", type=int, default=64)
    run_p.add_argument("--agents", type=int, default=256, help="agents per side")
    run_p.add_argument("--steps", type=int, default=500)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="named scenario ('paper:2', 'boarding:30x7', 'crossing:40x40'); "
        "overrides --height/--width/--agents/--steps",
    )
    run_p.add_argument(
        "--scale",
        default="quick",
        choices=sorted(SCALES),
        help="step-budget scale for --scenario runs",
    )
    run_p.add_argument("--render", action="store_true", help="print the final grid")
    run_p.add_argument(
        "--trace",
        action="store_true",
        help="time the run's phases (warm_backend, engine.run) as tracing "
        "spans and print the span tree; the trajectory is unchanged",
    )
    run_p.add_argument(
        "--profile-dispatch",
        action="store_true",
        help="count array-namespace dispatches (kernel-launch analogue) "
        "through a profiling backend and print the per-step profile; "
        "the trajectory is unchanged",
    )

    swp_p = sub.add_parser(
        "sweep", help="batched scenario x model x seed sweep"
    )
    swp_p.add_argument(
        "--scenarios",
        default="1-4",
        help="scenario indices: comma list and/or ranges, e.g. '1,3,5-8'",
    )
    swp_p.add_argument(
        "--scenario",
        default=None,
        metavar="NAMES",
        help="named scenarios instead of --scenarios indices: comma list, "
        "'family:*' wildcards allowed (e.g. 'boarding:30x7,crossing:*')",
    )
    swp_p.add_argument("--seeds", type=int, default=4, help="seeds per point (0..N-1)")
    swp_p.add_argument(
        "--models",
        default="lem,aco",
        help="comma-separated movement models",
    )
    swp_p.add_argument(
        "--engines",
        default="vectorized",
        help="comma-separated engines (seed batching needs 'vectorized')",
    )
    swp_p.add_argument("--scale", default="quick", choices=sorted(SCALES))
    swp_p.add_argument("--lanes", type=int, default=8,
                       help="max replications per batched launch")
    swp_p.add_argument(
        "--pad-lanes",
        action="store_true",
        help="fuse mixed-scenario points into padded batches "
        "(same model/engine/scale, populations padded to the largest lane)",
    )
    swp_p.add_argument(
        "--pad-waste",
        type=float,
        default=None,
        metavar="FRAC",
        help="max padded-slot fraction per fused batch (default: derived "
        "from the cost model's dispatch-overhead estimate)",
    )
    swp_p.add_argument(
        "--backend",
        default="numpy",
        help="array backend: numpy (default) or cupy (GPU; needs repro[gpu])",
    )
    swp_p.add_argument("--processes", type=int, default=1,
                       help="worker processes for heterogeneous points")
    swp_p.add_argument("--out", default=None,
                       help="directory for sweep.json + sweep.txt (optional)")
    swp_p.add_argument(
        "--smoke",
        action="store_true",
        help="CI fast path: tiny grid, 2 scenarios x 2 models x 2 seeds",
    )
    swp_p.add_argument(
        "--trace",
        action="store_true",
        help="trace the sweep (plan + per-launch phase spans) and print "
        "the span tree after the summary; results are unchanged",
    )

    srv_p = sub.add_parser(
        "serve", help="run the simulation service (micro-batching + cache)"
    )
    srv_p.add_argument("--host", default="127.0.0.1")
    srv_p.add_argument("--port", type=int, default=8177,
                       help="TCP port (0 binds an ephemeral port)")
    srv_p.add_argument(
        "--state-dir",
        default=".repro-service",
        help="job log + result cache directory (resumes a prior queue)",
    )
    srv_p.add_argument("--lanes", type=int, default=8,
                       help="max jobs fused per batched launch")
    srv_p.add_argument(
        "--no-pad-lanes",
        action="store_true",
        help="only fuse jobs with identical configs (padding is on by default)",
    )
    srv_p.add_argument(
        "--pad-waste",
        type=float,
        default=None,
        metavar="FRAC",
        help="max padded-slot fraction per fused batch (default: derived "
        "from the cost model's dispatch-overhead estimate)",
    )
    srv_p.add_argument(
        "--tick",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="micro-batching window: queued jobs are drained every tick",
    )
    srv_p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="engine worker processes: 1 runs launches serially on the "
        "tick thread, N>1 executes each tick's launches concurrently on "
        "a persistent pool (results stay bit-identical)",
    )
    srv_p.add_argument(
        "--cache-size",
        type=_cache_size,
        default=None,
        metavar="N|BYTES",
        help="result-cache budget with LRU eviction: an entry count "
        "('500') or a byte budget with suffix ('64MB', '2gb'); "
        "default: unbounded",
    )
    srv_p.add_argument(
        "--analytics-db",
        default=None,
        metavar="PATH",
        help="SQLite run store: persist every executed job, stream "
        "per-step metrics (GET /jobs/<id>/stream) and serve the "
        "/analytics endpoints; default: disabled",
    )
    srv_p.add_argument(
        "--record-timeline",
        action="store_true",
        help="record per-step timelines into every job result "
        "(moved/crossings per step); large results travel from pool "
        "workers via the zero-copy shared-memory transport",
    )

    sbm_p = sub.add_parser("submit", help="submit a job to a running service")
    sbm_p.add_argument("--host", default="127.0.0.1")
    sbm_p.add_argument("--port", type=int, default=8177)
    sbm_p.add_argument("--model", default="lem",
                       choices=["lem", "aco", "random", "greedy"])
    sbm_p.add_argument("--engine", default="vectorized",
                       choices=["sequential", "vectorized", "tiled"])
    sbm_p.add_argument(
        "--backend",
        default="numpy",
        help="array backend: numpy (default) or cupy (GPU; needs repro[gpu])",
    )
    sbm_p.add_argument("--height", type=int, default=64)
    sbm_p.add_argument("--width", type=int, default=64)
    sbm_p.add_argument("--agents", type=int, default=256, help="agents per side")
    sbm_p.add_argument("--steps", type=int, default=500)
    sbm_p.add_argument("--seed", type=int, default=0)
    sbm_p.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="named scenario ('paper:2', 'boarding:30x7', 'crossing:40x40'); "
        "overrides --height/--width/--agents/--steps",
    )
    sbm_p.add_argument(
        "--scale",
        default="quick",
        choices=sorted(SCALES),
        help="step-budget scale for --scenario submissions",
    )
    sbm_p.add_argument(
        "--burst",
        type=int,
        default=1,
        metavar="N",
        help="submit N copies with seeds seed..seed+N-1 in one request "
        "(lands in a single micro-batch)",
    )
    sbm_p.add_argument(
        "--priority",
        type=int,
        default=0,
        metavar="P",
        help="scheduling priority (higher drains first; the planner "
        "packs high-priority lanes before fill lanes)",
    )
    sbm_p.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="optional urgency hint: among equal priorities, sooner "
        "deadlines drain first",
    )
    sbm_p.add_argument("--wait", action="store_true",
                       help="poll until the submitted job(s) finish")
    sbm_p.add_argument("--timeout", type=float, default=120.0,
                       help="--wait deadline in seconds")

    sts_p = sub.add_parser("status", help="service stats / job status")
    sts_p.add_argument("--host", default="127.0.0.1")
    sts_p.add_argument("--port", type=int, default=8177)
    sts_p.add_argument("--job", default=None, metavar="JOB_ID",
                       help="show one job instead of service stats")
    sts_p.add_argument(
        "--follow",
        default=None,
        metavar="JOB_ID",
        help="stream a job's per-step metrics live (needs a service "
        "running with --analytics-db)",
    )
    sts_p.add_argument("--json", action="store_true",
                       help="print raw JSON (for scripts)")

    trc_p = sub.add_parser(
        "trace", help="render a finished job's span tree (phase timings)"
    )
    trc_p.add_argument("job_id", metavar="JOB_ID")
    trc_p.add_argument("--host", default="127.0.0.1")
    trc_p.add_argument("--port", type=int, default=8177)
    trc_p.add_argument(
        "--db",
        default=None,
        metavar="PATH",
        help="read spans from an analytics SQLite file instead of a live "
        "service (offline)",
    )
    trc_p.add_argument("--json", action="store_true",
                       help="print the raw span payload (for scripts)")

    ana_p = sub.add_parser(
        "analytics", help="query persisted runs and fundamental diagrams"
    )
    ana_src = ana_p.add_mutually_exclusive_group()
    ana_src.add_argument(
        "--db",
        default=None,
        metavar="PATH",
        help="query a SQLite run store file directly (offline)",
    )
    ana_src.add_argument("--host", default=None,
                         help="query a running service instead of a file")
    ana_p.add_argument("--port", type=int, default=8177)
    ana_p.add_argument(
        "--scenario",
        default=None,
        metavar="LABEL",
        help="restrict to one scenario label: a named scenario "
        "('boarding:30x7') or an HxW grid geometry ('64x64')",
    )
    ana_p.add_argument("--limit", type=int, default=20,
                       help="max run rows to list (default 20)")
    ana_p.add_argument(
        "--diagram",
        action="store_true",
        help="render the fundamental diagram (density vs mean flow) as "
        "an ASCII plot instead of listing runs",
    )
    ana_p.add_argument(
        "--latency",
        action="store_true",
        help="summarize per-phase latency percentiles (p50/p90/p99) "
        "instead of listing runs: from persisted spans with --db, from "
        "the live histogram summary with --host",
    )
    ana_p.add_argument("--json", action="store_true",
                       help="print raw JSON (for scripts)")

    fig_p = sub.add_parser("figures", help="regenerate the paper's figures")
    fig_p.add_argument("--outdir", default="results")
    fig_p.add_argument("--scale", default="quick", choices=sorted(SCALES))
    fig_p.add_argument("--seeds", type=int, default=2, help="repetitions per point")

    occ_p = sub.add_parser("occupancy", help="CC 2.0 occupancy calculator")
    occ_p.add_argument("--threads", type=int, default=256)
    occ_p.add_argument("--registers", type=int, default=20)
    occ_p.add_argument("--shared", type=int, default=0)

    spd_p = sub.add_parser("speedup", help="modelled Fig 5c speedup curve")
    spd_p.add_argument("--points", type=int, default=8)

    notes_p = sub.add_parser(
        "notes", help="Section IV implementation-notes table per kernel"
    )
    notes_p.add_argument("--agents", type=int, default=25600, help="total agents")
    notes_p.add_argument("--model", default="aco", choices=["lem", "aco"])
    return parser


def _parse_scenarios(spec: str) -> List[int]:
    """Parse '1,3,5-8' style scenario index lists."""
    out: List[int] = []
    try:
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "-" in part:
                lo, hi = part.split("-", 1)
                out.extend(range(int(lo), int(hi) + 1))
            else:
                out.append(int(part))
    except ValueError:
        raise SystemExit(
            f"error: bad --scenarios value {spec!r} "
            "(expected comma list and/or ranges, e.g. '1,3,5-8')"
        ) from None
    if not out:
        raise SystemExit(f"error: no scenario indices in {spec!r}")
    return out


def _cmd_sweep(args) -> int:
    """The ``repro sweep`` subcommand body."""
    import os

    from .errors import ReproError
    from .experiments.sweep import (
        SweepRunner,
        named_sweep_points,
        smoke_sweep_points,
        sweep_grid,
    )
    from .io import write_json_record, write_text_table

    # --pad-waste overrides; None lets the runner derive the ceiling from
    # the cost model's dispatch-overhead estimate.
    pad_waste = args.pad_waste
    executor = None
    tracer = sweep_span = None
    if args.trace:
        from .obs import Tracer

        tracer = Tracer()
        sweep_span = tracer.start("sweep")
    try:
        if args.smoke:
            if args.scenario:
                # Named smoke leg: the requested families at tiny scale.
                points = named_sweep_points(
                    args.scenario, seeds=(0, 1), models=("lem",), scale="tiny"
                )
            else:
                points = smoke_sweep_points()
            runner = SweepRunner(
                max_lanes=2,
                processes=1,
                pad_lanes=args.pad_lanes,
                max_pad_waste=pad_waste,
                backend=args.backend,
                tracer=tracer,
            )
        else:
            seeds = tuple(range(args.seeds))
            models = tuple(m for m in args.models.split(",") if m)
            engines = tuple(e for e in args.engines.split(",") if e)
            for label, values in (
                ("--seeds", seeds),
                ("--models", models),
                ("--engines", engines),
            ):
                if not values:
                    print(f"error: {label} selects no runs")
                    return 2
            if args.scenario:
                points = named_sweep_points(
                    args.scenario,
                    seeds=seeds,
                    models=models,
                    engines=engines,
                    scale=args.scale,
                )
            else:
                points = sweep_grid(
                    scenario_indices=_parse_scenarios(args.scenarios),
                    seeds=seeds,
                    models=models,
                    engines=engines,
                    scale=args.scale,
                )
            runner = SweepRunner(
                max_lanes=args.lanes,
                processes=args.processes,
                pad_lanes=args.pad_lanes,
                max_pad_waste=pad_waste,
                backend=args.backend,
                tracer=tracer,
            )
            if args.processes > 1:
                # One persistent pool shared across every chunk of the
                # grid (workers stay warm between launches); created
                # after the runner so a bad backend fails fast first.
                from .exec import ExecutorPool, warm_backend

                executor = ExecutorPool(
                    args.processes,
                    initializer=warm_backend,
                    initargs=(args.backend,),
                )
                runner.executor = executor
        report = runner.run_report(points)
    except ReproError as exc:
        print(f"error: {exc}")
        return 2
    finally:
        if executor is not None:
            executor.close()

    if sweep_span is not None:
        sweep_span.attrs["runs"] = report.n_points
        tracer.finish(sweep_span)

    packing = ", padded lanes" if report.pad_lanes else ""
    print(
        f"sweep: {report.n_points} runs in {report.wall_seconds:.2f}s "
        f"(lanes<={report.max_lanes}, processes={report.processes}{packing})"
    )
    by_point = {}
    for r in report.records:
        key = (r.scenario or r.scenario_index, r.model, r.engine)
        by_point.setdefault(key, []).append(r)
    for (k, model, engine), recs in sorted(
        by_point.items(), key=lambda item: (str(item[0][0]),) + item[0][1:]
    ):
        mean_tp = sum(r.throughput for r in recs) / len(recs)
        print(
            f"  scenario {str(k):>14s} {model:>6s}/{engine}: "
            f"mean throughput {mean_tp:8.1f} over {len(recs)} seeds"
        )
    if report.n_points and report.total_throughput == 0:
        print("warning: no agent crossed in any run (grid too short?)")

    if tracer is not None:
        from .obs import render_trace

        print()
        print(render_trace(tracer.wire(), title=f"trace {tracer.trace_id}"))

    if args.smoke and not args.scenario and report.total_throughput == 0:
        # The smoke grid is sized so agents always cross; zero means the
        # pipeline is broken, so fail the CI job loudly. Named families
        # are exempt: a congested workload (a 1-cell boarding aisle) can
        # legitimately finish its tiny step budget with zero crossings.
        return 1
    if args.smoke and args.scenario and not report.records:
        print("error: named smoke sweep produced no records")
        return 1

    if args.out:
        os.makedirs(args.out, exist_ok=True)
        write_json_record(os.path.join(args.out, "sweep.json"), report)
        write_text_table(
            os.path.join(args.out, "sweep.txt"),
            {
                "scenario": [r.scenario_index for r in report.records],
                "total_agents": [r.total_agents for r in report.records],
                "model_is_aco": [
                    1 if r.model == "aco" else 0 for r in report.records
                ],
                "seed": [r.seed for r in report.records],
                "throughput": [r.throughput for r in report.records],
                "wall_s": [r.wall_seconds for r in report.records],
            },
            header_comment=(
                f"repro sweep: {report.n_points} runs, "
                f"lanes<={report.max_lanes}, processes={report.processes}"
            ),
        )
        print(f"records written to {args.out}/sweep.json and {args.out}/sweep.txt")
    return 0


def _cmd_serve(args) -> int:
    """The ``repro serve`` subcommand body."""
    from .errors import ReproError
    from .service import ServiceServer, SimulationService

    cache_entries = cache_bytes = None
    if args.cache_size is not None:
        kind, amount = args.cache_size
        if kind == "entries":
            cache_entries = amount
        else:
            cache_bytes = amount
    try:
        service = SimulationService(
            args.state_dir,
            max_lanes=args.lanes,
            pad_lanes=not args.no_pad_lanes,
            max_pad_waste=args.pad_waste,
            record_timeline=args.record_timeline,
            workers=args.workers,
            cache_entries=cache_entries,
            cache_bytes=cache_bytes,
            analytics_db=args.analytics_db,
        )
        server = ServiceServer(
            service, host=args.host, port=args.port, tick_interval=args.tick
        )
    except ReproError as exc:
        print(f"error: {exc}")
        return 2
    resumed = service.stats.resumed
    resumed_note = f", resumed {resumed} queued job(s)" if resumed else ""
    analytics_note = (
        f", analytics: {args.analytics_db}" if args.analytics_db else ""
    )
    print(
        f"repro service on http://{server.host}:{server.port} "
        f"(state: {args.state_dir}, lanes<={args.lanes}, "
        f"workers={args.workers}, tick {args.tick:g}s"
        f"{resumed_note}{analytics_note})"
    )
    from .service.http import ROUTES

    print(
        "endpoints: "
        + ", ".join(f"{method} {path}" for method, path, _ in ROUTES)
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down (queued jobs resume on restart)")
        server.shutdown()
    return 0


def _cmd_submit(args) -> int:
    """The ``repro submit`` subcommand body."""
    import json

    from .errors import ReproError
    from .service.client import submit_jobs, wait_for_jobs

    try:
        if args.burst < 1:
            print(f"error: --burst must be >= 1, got {args.burst}")
            return 2
        if args.scenario:
            from .components.scenarios import build_scenario

            base = build_scenario(
                args.scenario,
                model=args.model,
                scale=args.scale,
                seed=args.seed,
            ).replace(backend=args.backend)
        else:
            base = SimulationConfig(
                height=args.height,
                width=args.width,
                n_per_side=args.agents,
                steps=args.steps,
                seed=args.seed,
                backend=args.backend,
            ).with_model(args.model)
        specs = [
            {
                "config": base.replace(seed=args.seed + k).to_dict(),
                "engine": args.engine,
                "priority": args.priority,
                "deadline_s": args.deadline,
            }
            for k in range(args.burst)
        ]
        jobs = submit_jobs(specs, host=args.host, port=args.port)
        for job in jobs:
            print(f"{job['job_id']} {job['state']} digest={job['digest'][:12]}")
        if not args.wait:
            return 0
        finished = wait_for_jobs(
            [j["job_id"] for j in jobs],
            host=args.host,
            port=args.port,
            timeout=args.timeout,
        )
    except ReproError as exc:
        print(f"error: {exc}")
        return 2
    failed = 0
    for job_id, job in finished.items():
        if job["state"] == "failed":
            failed += 1
            print(f"{job_id} failed: {job.get('error')}")
        else:
            result = job.get("result") or {}
            via = "cache" if job.get("cache_hit") else f"{job.get('lanes', 1)} lane(s)"
            print(
                f"{job_id} done: {result.get('throughput_total')} crossed "
                f"in {result.get('steps_run')} steps (via {via})"
            )
    if failed:
        print(json.dumps({"failed_jobs": failed}))
        return 1
    return 0


def _cmd_status(args) -> int:
    """The ``repro status`` subcommand body."""
    import json

    from .errors import ReproError
    from .service.client import get_job, get_stats, iter_job_stream

    if args.follow:
        try:
            for event, payload in iter_job_stream(
                args.follow, host=args.host, port=args.port
            ):
                if args.json:
                    print(json.dumps({"event": event, **payload}))
                elif event == "metrics":
                    lane = payload.get("lane_index")
                    lane_note = "" if lane is None else f" lanes {lane:.3f}"
                    print(
                        f"step {payload['step']:>5d}: "
                        f"{payload['moved']} moved, "
                        f"{payload['crossed_total']} crossed, "
                        f"gridlock {payload['gridlock_fraction']:.3f}"
                        f"{lane_note}"
                    )
                else:
                    print(
                        f"{payload['job_id']} {payload['state']} "
                        f"({payload['steps_streamed']} steps streamed)"
                    )
        except ReproError as exc:
            print(f"error: {exc}")
            return 2
        return 0

    try:
        if args.job:
            payload = get_job(args.job, host=args.host, port=args.port)
        else:
            payload = get_stats(host=args.host, port=args.port)
    except ReproError as exc:
        print(f"error: {exc}")
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if args.job:
        print(f"{payload['job_id']}: {payload['state']}")
        if payload.get("error"):
            print(f"  error: {payload['error']}")
        if payload.get("deadline_missed"):
            print(
                f"  deadline missed after "
                f"{payload.get('queue_wait_s', 0.0):.3f}s in queue"
            )
        result = payload.get("result")
        if result:
            via = (
                "cache"
                if payload.get("cache_hit")
                else f"{payload.get('lanes', 1)} lane(s)"
            )
            print(
                f"  {result['throughput_total']} crossed in "
                f"{result['steps_run']} steps (via {via})"
            )
        return 0
    jobs = payload.get("jobs", {})
    job_note = ", ".join(f"{n} {state}" for state, n in sorted(jobs.items()))
    print(
        f"jobs: {payload['submitted']} submitted this run"
        + (f" ({job_note})" if job_note else "")
    )
    print(
        f"launches: {payload['engine_launches']} "
        f"({payload['multi_lane_batches']} multi-lane, "
        f"{payload['padded_batches']} padded, {payload['solo_runs']} solo, "
        f"largest batch {payload['largest_batch']}, "
        f"peak concurrency {payload.get('peak_concurrent_launches', 0)} "
        f"on {payload.get('workers', 1)} worker(s))"
    )
    print(
        f"cache: {payload['cache_hits']} hits, {payload['coalesced']} "
        f"coalesced, {payload['cache_entries']} entries "
        f"({payload.get('cache_bytes', 0)} bytes, "
        f"{payload.get('cache_evictions', 0)} evicted) on disk"
    )
    transport = payload.get("transport")
    if transport:
        print(
            f"transport: {transport['shm_results']} shm / "
            f"{transport['inline_results']} inline results "
            f"({transport['shm_payload_bytes']} bytes zero-copy, "
            f"{transport['segments_in_flight']} segment(s) in flight of "
            f"{transport['segments_created']} created, "
            f"{transport['segment_reclaims']} reclaimed, "
            f"{transport['oversize_spills']} spilled)"
        )
    e2e = (payload.get("latency") or {}).get("end_to_end")
    if e2e:
        print(
            f"latency: p50 {e2e['p50'] * 1e3:.1f} ms, "
            f"p90 {e2e['p90'] * 1e3:.1f} ms, "
            f"p99 {e2e['p99'] * 1e3:.1f} ms end-to-end "
            f"over {e2e['count']} traced job(s)"
        )
    if payload.get("deadline_missed"):
        print(
            f"deadlines: {payload['deadline_missed']} job(s) exceeded "
            f"their deadline waiting in queue"
        )
    return 0


def _cmd_trace(args) -> int:
    """The ``repro trace`` subcommand body."""
    import json

    from .errors import ReproError
    from .obs import render_trace

    try:
        if args.db is not None:
            import os

            if not os.path.exists(args.db):
                print(f"error: no analytics store at {args.db!r}")
                return 2
            from .analytics import RunStore

            store = RunStore(args.db)
            try:
                spans = store.spans(args.job_id)
            finally:
                store.close()
            if not spans:
                print(
                    f"error: no spans for job {args.job_id!r} in {args.db} "
                    "(was the service run with --analytics-db and tracing?)"
                )
                return 2
            trace_id = next(
                (s["trace_id"] for s in spans if s.get("trace_id")), ""
            )
            payload = {
                "job_id": args.job_id,
                "trace_id": trace_id,
                "spans": spans,
            }
        else:
            from .service.client import get_job_trace

            payload = get_job_trace(args.job_id, host=args.host, port=args.port)
            spans = payload.get("spans", [])
    except ReproError as exc:
        print(f"error: {exc}")
        return 2

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    state = payload.get("state")
    title = f"job {args.job_id}" + (f" [{state}]" if state else "")
    trace_id = payload.get("trace_id") or ""
    if trace_id:
        title += f"  trace {trace_id[:16]}"
    print(render_trace(spans, title=title))
    return 0


def _phase_sort_key(name: str):
    """Order latency rows pipeline-first: job root, then PHASES, then rest."""
    from .obs import PHASES, ROOT_SPAN

    if name == ROOT_SPAN:
        return (0, 0, name)
    if name in PHASES:
        return (1, PHASES.index(name), name)
    return (2, 0, name)


def _latency_report(args) -> int:
    """``repro analytics --latency``: per-phase percentile table."""
    import json

    from .errors import ReproError
    from .obs import ROOT_SPAN, percentile

    try:
        if args.host is not None:
            from .service.client import get_stats

            latency = get_stats(
                host=args.host, port=args.port
            ).get("latency") or {}
            rows = []
            e2e = latency.get("end_to_end")
            if e2e:
                rows.append(("end-to-end", e2e))
            phases = latency.get("phases") or {}
            for name in sorted(phases, key=_phase_sort_key):
                rows.append((name, phases[name]))
            source = f"http://{args.host}:{args.port} (histogram estimate)"
            if args.json:
                print(json.dumps(latency, indent=2, sort_keys=True))
                return 0
        else:
            db = args.db or ".repro-service/analytics.sqlite"
            import os

            if not os.path.exists(db):
                print(f"error: no analytics store at {db!r} (see --db)")
                return 2
            from .analytics import RunStore

            store = RunStore(db)
            try:
                durations = store.phase_latency(scenario=args.scenario)
            finally:
                store.close()
            rows = []
            for name in sorted(durations, key=_phase_sort_key):
                values = durations[name]
                rows.append(
                    (
                        "end-to-end" if name == ROOT_SPAN else name,
                        {
                            "count": len(values),
                            "p50": percentile(values, 0.50),
                            "p90": percentile(values, 0.90),
                            "p99": percentile(values, 0.99),
                            "mean": sum(values) / len(values),
                        },
                    )
                )
            source = f"{db} (persisted spans)"
            if args.json:
                print(json.dumps(dict(rows), indent=2, sort_keys=True))
                return 0
    except ReproError as exc:
        print(f"error: {exc}")
        return 2

    if not rows:
        print("no latency samples yet (run traced jobs first)")
        return 1
    print(f"phase latency from {source}:")
    print(f"  {'phase':<14s} {'count':>6s} {'p50':>10s} {'p90':>10s} {'p99':>10s}")
    for name, stats in rows:
        print(
            f"  {name:<14s} {stats['count']:>6d}"
            f" {stats['p50'] * 1e3:>8.1f}ms"
            f" {stats['p90'] * 1e3:>8.1f}ms"
            f" {stats['p99'] * 1e3:>8.1f}ms"
        )
    return 0


def _fd_ascii(points: List[dict], scenario: Optional[str]) -> str:
    """ASCII fundamental diagram from /analytics/fundamental-diagram rows."""
    from .io.asciiplot import line_plot

    # One series per movement model so LEM/ACO separate visually, the
    # paper's Fig 6a contrast.
    by_model: dict = {}
    for p in points:
        by_model.setdefault(p["model"], []).append(p)
    xs = [p["density"] for p in points]
    series = {}
    for model, rows in sorted(by_model.items()):
        dens = {round(p["density"], 12): p["flow"] for p in rows}
        series[model] = [dens.get(round(x, 12), float("nan")) for x in xs]
    label = f" ({scenario})" if scenario else ""
    return line_plot(
        series,
        x=xs,
        title=f"fundamental diagram{label}: mean flow vs density",
        xlabel="density (agents/cell)",
        ylabel="flow (crossings/step)",
    )


def _cmd_analytics(args) -> int:
    """The ``repro analytics`` subcommand body."""
    import json

    from .errors import ReproError

    if args.latency:
        return _latency_report(args)

    try:
        if args.host is not None:
            from .service.client import (
                get_analytics_runs,
                get_fundamental_diagram,
            )

            runs_payload = get_analytics_runs(
                host=args.host,
                port=args.port,
                scenario=args.scenario,
                limit=args.limit,
            )
            runs = runs_payload.get("runs", [])
            scenarios = runs_payload.get("scenarios", [])
            points = get_fundamental_diagram(
                host=args.host, port=args.port, scenario=args.scenario
            )
        else:
            db = args.db or ".repro-service/analytics.sqlite"
            import os

            if not os.path.exists(db):
                print(f"error: no analytics store at {db!r} (see --db)")
                return 2
            from .analytics import RunStore

            store = RunStore(db)
            try:
                runs = store.runs(scenario=args.scenario, limit=args.limit)
                scenarios = store.scenarios()
                points = store.fundamental_diagram(scenario=args.scenario)
            finally:
                store.close()
    except ReproError as exc:
        print(f"error: {exc}")
        return 2

    if args.json:
        print(
            json.dumps(
                {"runs": runs, "scenarios": scenarios, "points": points},
                indent=2,
                sort_keys=True,
            )
        )
        return 0

    if args.diagram:
        if not points:
            print("no completed runs to plot (submit jobs to a service "
                  "running with --analytics-db first)")
            return 1
        print(_fd_ascii(points, args.scenario))
        print(f"{len(points)} completed run(s) plotted")
        return 0

    scope = f" in {args.scenario}" if args.scenario else ""
    print(f"{len(runs)} run(s){scope}; scenarios: "
          + (", ".join(scenarios) if scenarios else "none"))
    for r in runs:
        flow = r.get("flow")
        flow_note = "" if flow is None else f" flow {flow:.2f}/step"
        print(
            f"  {r['run_id']:>12s} {r['scenario']:>9s} {r['model']:>6s}"
            f"/{r['engine']} agents={r['agents']} status={r['status']}"
            f"{flow_note}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "info":
        print(f"repro {__version__} — bi-directional pedestrian movement")
        print()
        print(table1_hardware())
        print()
        print("scales:")
        for name, scale in SCALES.items():
            print(f"  {name:>9s}: {scale.description}")
        return 0

    if args.command == "run":
        import time

        from .backend import resolve_backend
        from .backend.profiling import (
            PROFILE_PREFIX,
            DispatchProfile,
            ProfilingBackend,
        )
        from .engine import build_engine
        from .errors import ReproError

        backend_name = args.backend
        if args.profile_dispatch and not backend_name.startswith(PROFILE_PREFIX):
            backend_name = f"{PROFILE_PREFIX}:{backend_name}"
        try:
            if args.scenario:
                from .components.scenarios import build_scenario

                cfg = build_scenario(
                    args.scenario,
                    model=args.model,
                    scale=args.scale,
                    seed=args.seed,
                ).replace(backend=backend_name)
            else:
                cfg = SimulationConfig(
                    height=args.height,
                    width=args.width,
                    n_per_side=args.agents,
                    steps=args.steps,
                    seed=args.seed,
                    backend=backend_name,
                ).with_model(args.model)
            print(cfg.describe())
            if args.profile_dispatch:
                # The instance is cached per name; zero stale counters so
                # the setup snapshot covers only this engine's construction.
                resolve_backend(backend_name).reset()
            tracer = root_span = None
            if args.trace:
                from .obs import Tracer

                tracer = Tracer()
                root_span = tracer.start(
                    "run", model=args.model, engine=args.engine
                )
            if tracer is not None:
                with tracer.span("warm_backend"):
                    eng = build_engine(cfg, engine=args.engine)
            else:
                eng = build_engine(cfg, engine=args.engine)
            setup = None
            if isinstance(eng.backend, ProfilingBackend):
                setup = eng.backend.snapshot()
                eng.backend.reset()
            run_span = None
            if tracer is not None:
                run_span = tracer.start(
                    "engine.run", engine=args.engine, agents=cfg.total_agents
                )
            start = time.perf_counter()
            res = eng.run(record_timeline=False)
            wall = time.perf_counter() - start
            if run_span is not None:
                run_span.attrs["steps"] = res.steps_run
                tracer.finish(run_span)
                tracer.finish(root_span)
            profile = None
            if isinstance(eng.backend, ProfilingBackend):
                profile = DispatchProfile(
                    counts=eng.backend.snapshot(),
                    steps=res.steps_run,
                    setup=setup,
                )
        except ReproError as exc:
            print(f"error: {exc}")
            return 2
        print(
            f"{res.platform}: {res.throughput_total}/{cfg.total_agents} crossed "
            f"in {res.steps_run} steps ({wall:.2f}s wall, "
            f"{wall / max(1, res.steps_run) * 1e3:.2f} ms/step)"
        )
        eff = efficiency_report(eng)
        print(
            f"lane order {lane_order_parameter(eng.backend.to_host(eng.env.mat)):.3f}, "
            f"mean crossed tour {eff.mean_tour_crossed:.1f}"
        )
        if profile is not None:
            print()
            print(profile.describe())
        if tracer is not None:
            from .obs import render_trace

            print()
            print(render_trace(tracer.wire(), title=f"trace {tracer.trace_id}"))
        if args.render:
            print(render_engine(eng))
        return 0

    if args.command == "sweep":
        return _cmd_sweep(args)

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "submit":
        return _cmd_submit(args)

    if args.command == "status":
        return _cmd_status(args)

    if args.command == "trace":
        return _cmd_trace(args)

    if args.command == "analytics":
        return _cmd_analytics(args)

    if args.command == "figures":
        seeds = tuple(range(args.seeds))
        report = run_all(
            args.outdir,
            scale=args.scale,
            fig6a_seeds=seeds,
            fig6b_seeds_cpu=tuple(100 + s for s in seeds),
            fig6b_seeds_gpu=tuple(200 + s for s in seeds),
        )
        print(f"figures written to {args.outdir}/")
        print(f"Fig 6a overall ACO gain: {report.fig6a_overall_gain:+.1%} (paper +39.6%)")
        print(f"Fig 6b platform p-value: {report.fig6b_pvalue:.4f} (paper 0.6145)")
        return 0

    if args.command == "occupancy":
        from .cuda import occupancy

        occ = occupancy(args.threads, args.registers, args.shared)
        print(
            f"{args.threads} threads/block, {args.registers} regs/thread, "
            f"{args.shared} B shared/block:"
        )
        print(
            f"  {occ.active_blocks_per_sm} blocks/SM, "
            f"{occ.active_warps_per_sm} warps/SM, occupancy {occ.occupancy:.0%} "
            f"(limited by {occ.limiter})"
        )
        print()
        print(occupancy_table())
        return 0

    if args.command == "notes":
        from .cuda import implementation_report

        print(implementation_report(total_agents=args.agents, model=args.model))
        return 0

    if args.command == "speedup":
        from .cuda import paper_speedup_curve
        from .experiments import paper_scenarios

        scenarios = paper_scenarios()
        stride = max(1, len(scenarios) // args.points)
        counts = [s.total_agents for s in scenarios[::stride]]
        for n, s in paper_speedup_curve(counts):
            print(f"  {n:>7d} agents: {s:5.2f}x")
        return 0

    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
