"""Flow and density profiles of the bi-directional crowd.

Diagnostics for analysing *why* a scenario jams: per-row occupancy by
group, the instantaneous flux across the midline, and the fundamental
diagram sample (density vs flow) per step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..engine.base import BaseEngine, StepReport
from ..types import Group

__all__ = ["row_density_profile", "midline_flux", "FlowRecorder"]


def row_density_profile(engine: BaseEngine) -> Dict[Group, np.ndarray]:
    """Fraction of each row's cells occupied by each group."""
    mat = engine.env.mat
    width = engine.env.width
    return {
        g: (mat == int(g)).sum(axis=1).astype(np.float64) / width
        for g in (Group.TOP, Group.BOTTOM)
    }


def midline_flux(before_rows: np.ndarray, after_rows: np.ndarray, ids: np.ndarray, midline: int) -> int:
    """Signed agent count crossing ``midline`` in one step.

    TOP agents crossing downwards count +1, BOTTOM agents crossing upwards
    count +1 (both are "productive" flux); reverse crossings count -1.
    """
    before_side = before_rows >= midline
    after_side = after_rows >= midline
    moved_down = (~before_side) & after_side
    moved_up = before_side & (~after_side)
    top = ids == int(Group.TOP)
    bottom = ids == int(Group.BOTTOM)
    productive = int(np.count_nonzero(moved_down & top)) + int(
        np.count_nonzero(moved_up & bottom)
    )
    counter = int(np.count_nonzero(moved_up & top)) + int(
        np.count_nonzero(moved_down & bottom)
    )
    return productive - counter


@dataclass
class FlowRecorder:
    """Engine callback recording per-step movement rate and midline flux."""

    midline: int = -1
    move_rate: List[float] = None
    flux: List[int] = None
    _prev_rows: np.ndarray = None

    def __post_init__(self) -> None:
        self.move_rate = []
        self.flux = []

    def __call__(self, engine: BaseEngine, report: StepReport) -> None:
        """Record after each step."""
        pop = engine.pop
        if self.midline < 0:
            self.midline = engine.env.height // 2
        self.move_rate.append(report.moved / pop.n_agents)
        if self._prev_rows is not None:
            self.flux.append(
                midline_flux(self._prev_rows, pop.rows, pop.ids, self.midline)
            )
        self._prev_rows = pop.rows.copy()

    @property
    def mean_move_rate(self) -> float:
        """Average fraction of agents moving per step."""
        return float(np.mean(self.move_rate)) if self.move_rate else 0.0
