"""Gridlock detection.

The paper observes that "beyond the total population of 51,200, the
throughput of pedestrians becomes insignificant (total gridlock)". The
detector flags a run as gridlocked when the movement rate stays below a
threshold for a sustained window, and reports when that first happened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..engine.base import BaseEngine, StepReport

__all__ = ["GridlockDetector", "is_gridlocked"]


def is_gridlocked(
    moved_per_step: np.ndarray,
    n_agents: int,
    rate_threshold: float = 0.01,
    window: int = 50,
) -> bool:
    """True when the trailing ``window`` steps all moved < threshold agents."""
    moved = np.asarray(moved_per_step, dtype=np.float64)
    if moved.size < window or n_agents <= 0:
        return False
    tail = moved[-window:] / n_agents
    return bool(np.all(tail < rate_threshold))


@dataclass
class GridlockDetector:
    """Engine callback detecting the onset of sustained immobility."""

    rate_threshold: float = 0.01
    window: int = 50
    moved: List[int] = None
    onset_step: Optional[int] = None
    _quiet: int = 0

    def __post_init__(self) -> None:
        self.moved = []

    def __call__(self, engine: BaseEngine, report: StepReport) -> None:
        """Record after each step; latches the first gridlock onset."""
        self.moved.append(report.moved)
        rate = report.moved / max(1, engine.pop.n_agents)
        if rate < self.rate_threshold:
            self._quiet += 1
            if self._quiet >= self.window and self.onset_step is None:
                self.onset_step = report.step - self.window + 1
        else:
            self._quiet = 0

    @property
    def gridlocked(self) -> bool:
        """True when a sustained immobile window was observed."""
        return self.onset_step is not None
