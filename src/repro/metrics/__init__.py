"""Crowd metrics: throughput, flow, lanes, gridlock and efficiency."""

from .efficiency import EfficiencyReport, detour_factor, efficiency_report
from .flow import FlowRecorder, midline_flux, row_density_profile
from .gridlock import GridlockDetector, is_gridlocked
from .lanes import band_segregation, column_occupancies, lane_order_parameter
from .stream import StepMetrics, gridlock_fraction, step_metrics
from .throughput import ThroughputSummary, ThroughputTracker

__all__ = [
    "ThroughputTracker",
    "ThroughputSummary",
    "FlowRecorder",
    "row_density_profile",
    "midline_flux",
    "lane_order_parameter",
    "column_occupancies",
    "band_segregation",
    "GridlockDetector",
    "is_gridlocked",
    "detour_factor",
    "EfficiencyReport",
    "efficiency_report",
    "StepMetrics",
    "gridlock_fraction",
    "step_metrics",
]
