"""Lane formation metrics.

Bi-directional crowds self-organise into direction-segregated lanes
(Helbing's "self-organizing pedestrian movement", the paper's [24], is the
phenomenon its pheromone trails emulate). The standard order parameter
measures column-wise segregation of the two groups: 0 for perfectly mixed
columns, 1 for columns occupied by a single direction.
"""

from __future__ import annotations

import numpy as np

from ..engine.base import BaseEngine
from ..types import Group

__all__ = ["lane_order_parameter", "column_occupancies", "band_segregation"]


def column_occupancies(mat: np.ndarray) -> tuple:
    """Per-column agent counts ``(n_top, n_bottom)``."""
    n_top = (mat == int(Group.TOP)).sum(axis=0).astype(np.float64)
    n_bottom = (mat == int(Group.BOTTOM)).sum(axis=0).astype(np.float64)
    return n_top, n_bottom


def lane_order_parameter(mat: np.ndarray) -> float:
    """Column-segregation order parameter in [0, 1].

    ``phi = <((n1 - n2) / (n1 + n2))^2>`` over occupied columns — the
    classic bi-directional lane index (Blue & Adler's measure family; the
    paper's [4], [5]). Empty columns are excluded; returns 0.0 when no
    column is occupied.
    """
    n_top, n_bottom = column_occupancies(np.asarray(mat))
    total = n_top + n_bottom
    occupied = total > 0
    if not np.any(occupied):
        return 0.0
    ratio = (n_top[occupied] - n_bottom[occupied]) / total[occupied]
    return float(np.mean(ratio * ratio))


def band_segregation(engine: BaseEngine, n_bands: int = 8) -> np.ndarray:
    """Lane order parameter evaluated per horizontal band of rows.

    Splits the grid into ``n_bands`` stacked bands and computes the lane
    index inside each, localising where lanes form (typically the central
    conflict region).
    """
    mat = engine.env.mat
    height = mat.shape[0]
    if n_bands < 1 or n_bands > height:
        raise ValueError(f"n_bands must be in [1, {height}], got {n_bands}")
    edges = np.linspace(0, height, n_bands + 1, dtype=np.int64)
    return np.array(
        [
            lane_order_parameter(mat[edges[i] : edges[i + 1]])
            for i in range(n_bands)
        ]
    )
