"""Per-step metric records — the unit the streaming layer ships.

The paper's headline artifacts are flow curves: throughput over time
(Fig. 5/6) and the density/flow relationship across populations. A
:class:`StepMetrics` record carries one step of one run's contribution
to those curves — movement counts, crossing counts, the gridlock
fraction and the lane-formation order parameter — in a flat,
JSON-ready shape that the analytics store persists and the service
streams over SSE while the engine is still running.

Every field is *derived from* engine state and never written back, so
attaching a metrics stream to a run cannot perturb its trajectory: the
streamed ``moved``/``new_crossings`` columns are bit-identical to the
``moved_per_step``/``crossings_per_step`` timelines a non-streaming run
records at completion (``tests/test_metric_stream.py`` pins this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .lanes import lane_order_parameter

__all__ = ["StepMetrics", "gridlock_fraction", "step_metrics"]


def gridlock_fraction(moved: int, total_agents: int) -> float:
    """Fraction of the population that did *not* move this step.

    1.0 is total gridlock (nobody moved — the paper's ">51,200 agents"
    regime), 0.0 is free flow. Complements the movement *rate* used by
    :class:`~repro.metrics.gridlock.GridlockDetector`.
    """
    if total_agents <= 0:
        return 0.0
    return 1.0 - moved / total_agents


@dataclass(frozen=True)
class StepMetrics:
    """One step of one run, as streamed and persisted.

    ``run_id`` names the run in the analytics store (the service uses
    the job id). ``lane_index`` is the column-segregation order
    parameter (:func:`~repro.metrics.lanes.lane_order_parameter`);
    ``None`` when lane-index sampling was disabled or skipped at this
    step.
    """

    run_id: str
    step: int
    #: Agents that moved this step (gather winners).
    moved: int
    #: Agents newly entering the opposite band this step.
    new_crossings: int
    #: Cumulative crossings up to and including this step.
    crossed_total: int
    #: Fraction of the population that did not move this step.
    gridlock_fraction: float
    #: Lane-formation order parameter in [0, 1] (None = not sampled).
    lane_index: Optional[float] = None
    #: Array-namespace dispatches this step (None unless the run executes
    #: on a counting backend — see ``repro.backend.profiling``).
    dispatch_ops: Optional[int] = None

    def to_row(self) -> tuple:
        """The analytics store's column order (see ``RunStore``)."""
        return (
            self.run_id,
            self.step,
            self.moved,
            self.new_crossings,
            self.crossed_total,
            self.gridlock_fraction,
            self.lane_index,
            self.dispatch_ops,
        )

    def to_dict(self) -> dict:
        """JSON-ready dict (the SSE wire shape)."""
        return {
            "run_id": self.run_id,
            "step": self.step,
            "moved": self.moved,
            "new_crossings": self.new_crossings,
            "crossed_total": self.crossed_total,
            "gridlock_fraction": self.gridlock_fraction,
            "lane_index": self.lane_index,
            "dispatch_ops": self.dispatch_ops,
        }


def step_metrics(
    run_id: str,
    step: int,
    moved: int,
    new_crossings: int,
    crossed_total: int,
    total_agents: int,
    mat=None,
    dispatch_ops: Optional[int] = None,
) -> StepMetrics:
    """Assemble one record from raw per-step counters.

    ``mat`` is an optional *host* grid matrix; when given, the
    lane-formation index is computed from it (the only metric that
    needs grid state rather than counters). ``dispatch_ops`` is the
    step's namespace-dispatch count when a counting backend is attached.
    """
    return StepMetrics(
        run_id=run_id,
        step=int(step),
        moved=int(moved),
        new_crossings=int(new_crossings),
        crossed_total=int(crossed_total),
        gridlock_fraction=gridlock_fraction(int(moved), int(total_agents)),
        lane_index=None if mat is None else lane_order_parameter(mat),
        dispatch_ops=None if dispatch_ops is None else int(dispatch_ops),
    )
