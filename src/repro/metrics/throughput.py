"""Throughput metrics (paper Section VI).

"We define throughput of pedestrians as the number of pedestrians able to
cross the environment and reach the other side and the number of time steps
required." The tracker hooks into an engine run and records cumulative
crossings per step per group, yielding both quantities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..engine.base import BaseEngine, StepReport
from ..types import Group

__all__ = ["ThroughputTracker", "ThroughputSummary"]


@dataclass
class ThroughputSummary:
    """Final throughput figures of one run."""

    total_agents: int
    crossed_total: int
    crossed_top: int
    crossed_bottom: int
    steps: int
    #: Step at which half of the final crossings had occurred (-1 if none).
    half_crossing_step: int
    #: Mean first-crossing step over agents that crossed (nan if none).
    mean_crossing_step: float

    @property
    def fraction(self) -> float:
        """Crossed fraction of the population."""
        return self.crossed_total / self.total_agents if self.total_agents else 0.0


class ThroughputTracker:
    """Per-step crossing recorder; use as an engine run callback.

    >>> tracker = ThroughputTracker()
    >>> # engine.run(callback=tracker)   # doctest: +SKIP
    """

    def __init__(self) -> None:
        self.new_crossings: List[int] = []
        self._engine: Optional[BaseEngine] = None

    def __call__(self, engine: BaseEngine, report: StepReport) -> None:
        """Engine callback signature."""
        self._engine = engine
        self.new_crossings.append(report.new_crossings)

    @property
    def cumulative(self) -> np.ndarray:
        """Cumulative crossings per step."""
        return np.cumsum(np.asarray(self.new_crossings, dtype=np.int64))

    def summary(self) -> ThroughputSummary:
        """Summarise after the run completes."""
        if self._engine is None:
            raise RuntimeError("tracker has not observed any steps")
        eng = self._engine
        pop = eng.pop
        crossed_steps = pop.crossed_step[pop.crossed]
        cum = self.cumulative
        total_crossed = int(cum[-1]) if cum.size else 0
        half_step = -1
        if total_crossed > 0:
            half_step = int(np.searchsorted(cum, (total_crossed + 1) // 2))
        return ThroughputSummary(
            total_agents=pop.n_agents,
            crossed_total=pop.crossed_count(),
            crossed_top=pop.crossed_count(Group.TOP),
            crossed_bottom=pop.crossed_count(Group.BOTTOM),
            steps=len(self.new_crossings),
            half_crossing_step=half_step,
            mean_crossing_step=float(crossed_steps.mean())
            if crossed_steps.size
            else float("nan"),
        )
