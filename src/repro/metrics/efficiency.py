"""Movement efficiency metrics.

"Least effort" is the paper's organising idea; these metrics quantify it:
the detour factor compares each crossed agent's accumulated tour length
with the straight-line distance it had to cover, and the mean tour length
feeds the eq. 5 deposits' sanity checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..engine.base import BaseEngine
from ..types import Group

__all__ = ["detour_factor", "EfficiencyReport", "efficiency_report"]


def _detour_from_host(
    crossed: np.ndarray,
    crossed_tour: np.ndarray,
    cfg,
    group_mask: Optional[np.ndarray] = None,
) -> float:
    """Detour factor from host copies of the crossing columns."""
    mask = crossed.copy()
    if group_mask is not None:
        mask &= group_mask
    mask[0] = False
    if not np.any(mask):
        return float("nan")
    min_distance = max(1.0, cfg.height - cfg.cross_rows - (cfg.band_rows - 1) / 2.0)
    return float(np.mean(crossed_tour[mask] / min_distance))


def detour_factor(engine: BaseEngine, group: Optional[Group] = None) -> float:
    """Mean ratio of tour length *at crossing* to the expected straight path.

    The tour length is captured when each agent first enters the opposite
    band (wall jiggling after arrival does not count as detour). The
    straight-path reference is the crossing distance of the band's mean
    starting row: ``height - cross_rows - (band_rows - 1) / 2``. A factor
    of ~1.0 means straight least-effort crossings. Returns ``nan`` when
    nothing crossed.
    """
    # Recording boundary: metrics are host-side, so bring the relevant
    # property-matrix columns back through the engine's backend first.
    to_host = engine.backend.to_host
    pop = engine.pop
    return _detour_from_host(
        to_host(pop.crossed),
        to_host(pop.crossed_tour),
        engine.config,
        to_host(pop.group_mask(group)) if group is not None else None,
    )


@dataclass(frozen=True)
class EfficiencyReport:
    """Aggregate efficiency figures for one finished run."""

    mean_tour_crossed: float
    mean_tour_all: float
    detour_factor: float
    crossed_fraction: float


def efficiency_report(engine: BaseEngine) -> EfficiencyReport:
    """Build an :class:`EfficiencyReport` from a finished engine.

    Reads the property matrix through the engine's backend (one host
    round-trip per column — the recording boundary), so device-resident
    engines report without relying on implicit array conversion.
    """
    to_host = engine.backend.to_host
    pop = engine.pop
    crossed_host = to_host(pop.crossed)
    crossed_tour_host = to_host(pop.crossed_tour)
    crossed = crossed_host.copy()
    crossed[0] = False
    tours = to_host(pop.tour)[1:]
    return EfficiencyReport(
        mean_tour_crossed=float(crossed_tour_host[crossed].mean())
        if crossed.any()
        else float("nan"),
        mean_tour_all=float(tours.mean()) if tours.size else float("nan"),
        detour_factor=_detour_from_host(
            crossed_host, crossed_tour_host, engine.config
        ),
        crossed_fraction=pop.crossed_count() / pop.n_agents,
    )
