"""Unified execution layer: one persistent worker pool for all dispatch.

``repro.exec`` is the subsystem both parallel callers share:

* :class:`ExecutorPool` — persistent forkserver/spawn worker processes
  with LPT + priority scheduling, per-launch failure isolation (a
  crashed worker fails only its own batch and is respawned) and
  future-based results;
* :class:`LaunchWork` / :func:`execute_launch` — the declarative engine
  launch payload (per-lane configs) that the sweep runner's planned
  units and the service scheduler's micro-batches both reduce to;
* :data:`MP_START_METHOD` — the forward-compatible start-method choice
  (formerly ``repro.experiments.sweep._MP_START_METHOD``).

The sweep (:class:`repro.experiments.sweep.SweepRunner`) submits a whole
planned grid and gathers futures in request order; the service
(:class:`repro.service.scheduler.BatchScheduler` with ``workers > 1``)
submits each tick's launches concurrently and resolves jobs as batches
finish. Results are bit-identical either way — a work item is nothing
but configs, so where it runs cannot change what it computes.
"""

from .pool import MP_START_METHOD, ExecutorPool
from .shm import SEGMENT_PREFIX, SHM_MAX_BYTES, SHM_THRESHOLD_BYTES
from .work import (
    LaunchOutcome,
    LaunchWork,
    execute_launch,
    launch_cost,
    warm_backend,
)

__all__ = [
    "MP_START_METHOD",
    "SEGMENT_PREFIX",
    "SHM_THRESHOLD_BYTES",
    "SHM_MAX_BYTES",
    "ExecutorPool",
    "LaunchWork",
    "LaunchOutcome",
    "execute_launch",
    "launch_cost",
    "warm_backend",
]
