"""Zero-copy launch-result transport over POSIX shared memory.

The executor pool's legacy transport pickles every result into one byte
blob and pushes it through a multiprocessing queue: the worker serialises
the full timeline arrays, the pipe carries every byte, and the parent
deserialises into fresh heap copies — three traversals of the payload per
launch. This module replaces the array bytes with a shared-memory hop:

* the **worker** pickles the payload with protocol 5 and a
  ``buffer_callback``, so NumPy hands the array *buffers* out of band;
  the buffers are copied once into a pooled :class:`SharedMemory`
  segment and the queue carries only the pickle *head* (object structure
  + dtypes + shapes — a few hundred bytes, independent of array length)
  plus the segment name and span table;
* the **parent** attaches the segment and rebuilds the payload with
  ``pickle.loads(head, buffers=...)`` over memoryview slices — the
  reconstructed arrays are *views into the segment*, no copy;
* segments are **recycled**: when every reconstructed array has been
  garbage-collected, the pool sends a release message down the owning
  worker's task pipe and the worker parks the segment for its next
  result. A crashed worker's segments are unlinked by the pool's reaper
  (:class:`~repro.errors.WorkerCrashError` path), so SIGKILL leaks
  nothing.

Results below :data:`SHM_THRESHOLD_BYTES` (header-dominated anyway) and
above :data:`SHM_MAX_BYTES` (see the oversize-spill regression test), as
well as payloads whose buffers are not contiguous, fall back to the
legacy in-band pickle — bit-for-bit the behaviour the pool always had.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import pickle
from multiprocessing import shared_memory
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "SHM_THRESHOLD_BYTES",
    "SHM_MAX_BYTES",
    "SEGMENT_PREFIX",
    "SegmentWriter",
    "attach_segment",
    "decode_payload",
    "iter_payload_arrays",
]

#: Results whose out-of-band buffers total fewer bytes than this ship
#: in-band: the pickle head dominates and a segment round-trip would be
#: pure overhead.
SHM_THRESHOLD_BYTES = 32 * 1024

#: Hard per-result segment cap. Larger results spill to the legacy
#: in-band pickle path instead of growing unbounded shared mappings.
SHM_MAX_BYTES = 256 * 1024 * 1024

#: Buffer alignment inside a segment (cache line; keeps reconstructed
#: array views aligned for vectorised consumers).
_ALIGN = 64

#: Segment name prefix — greppable in /dev/shm, used by the leak tests.
SEGMENT_PREFIX = "repro-shm"


def _align(n: int) -> int:
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


class _AttachedSegment(shared_memory.SharedMemory):
    """Parent-side attachment whose destructor tolerates live views.

    ``SharedMemory.__del__`` closes the mapping; with reconstructed
    arrays still exporting buffers that raises BufferError. GC order
    between the pool (which holds the wrapper) and the result arrays
    (which hold only the mapping's buffer) is arbitrary, so the wrapper
    can legitimately die first — and then *leaving the mapping open* is
    the correct outcome: the views need it until process exit. Explicit
    ``close()`` calls (the pool's drain path) still propagate
    BufferError and are retried there.
    """

    def __del__(self):  # noqa: D105
        try:
            super().__del__()
        except BufferError:
            pass


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment by name.

    On CPython < 3.13 attaching re-registers the segment with the
    resource tracker. Because pool workers are spawned by the pool's own
    process, parent and workers share ONE tracker process, so the
    re-registration is an idempotent no-op (the cache is a set) and
    every ``unlink`` unregisters the single entry exactly once. Keeping
    the registration is deliberate: if the whole process tree dies
    before the pool's own reclamation runs, the tracker unlinks whatever
    is left, so ``/dev/shm`` cannot leak.
    """
    return _AttachedSegment(name=name)


class SegmentWriter:
    """Worker-side segment pool: encode results, recycle released segments.

    One writer lives in each worker process. ``encode`` returns the
    message tuple to put on the result queue; ``release`` parks a segment
    the parent has finished with for reuse; ``close`` unlinks everything
    still owned (worker shutdown).
    """

    #: Released segments kept for reuse before excess ones are unlinked.
    MAX_FREE = 4

    def __init__(
        self,
        threshold: int = SHM_THRESHOLD_BYTES,
        max_bytes: int = SHM_MAX_BYTES,
    ) -> None:
        self.threshold = int(threshold)
        self.max_bytes = int(max_bytes)
        self._counter = itertools.count()
        #: name -> SharedMemory for every segment this worker owns.
        self._owned: Dict[str, shared_memory.SharedMemory] = {}
        #: Subset of owned segments currently free for reuse.
        self._free: List[str] = []
        self.spills = 0  # oversize results sent through the legacy path
        self.created = 0

    # -- segment management -------------------------------------------
    def _take(self, nbytes: int) -> shared_memory.SharedMemory:
        """A free segment of at least ``nbytes``, else a fresh one."""
        for i, name in enumerate(self._free):
            seg = self._owned[name]
            if seg.size >= nbytes:
                self._free.pop(i)
                return seg
        name = f"{SEGMENT_PREFIX}-{os.getpid()}-{next(self._counter)}"
        seg = shared_memory.SharedMemory(create=True, size=nbytes, name=name)
        self._owned[seg.name] = seg
        self.created += 1
        return seg

    def release(self, name: str) -> None:
        """Parent is done with ``name``: park it for the next result."""
        if name not in self._owned:
            return
        self._free.append(name)
        while len(self._free) > self.MAX_FREE:
            drop = self._free.pop(0)
            seg = self._owned.pop(drop)
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - parent raced us
                pass

    def close(self) -> None:
        """Unlink every owned segment (worker shutdown path)."""
        for seg in self._owned.values():
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already reclaimed
                pass
        self._owned.clear()
        self._free.clear()

    # -- encoding ------------------------------------------------------
    def encode(self, task_id: int, ok: bool, payload: Any) -> Tuple:
        """Build the result-queue message for ``payload``.

        Returns ``("shm", task_id, ok, head, name, spans, total)`` when
        the payload's array buffers ride a segment, or
        ``("inline", task_id, ok, payload)`` on the legacy path (small
        result, oversize spill, non-contiguous buffers, failures) — the
        worker loop pickles the whole message exactly as before.
        """
        if not ok:
            # Exceptions are tiny and must never depend on segment
            # plumbing to surface.
            return ("inline", task_id, False, payload)
        buffers: List[pickle.PickleBuffer] = []
        try:
            head = pickle.dumps(payload, protocol=5, buffer_callback=buffers.append)
            views = [b.raw() for b in buffers]
        except Exception:
            # Non-contiguous buffer or a pickling quirk: legacy path.
            return ("inline", task_id, ok, payload)
        total = sum(_align(v.nbytes) for v in views)
        if not views or total < self.threshold:
            return ("inline", task_id, ok, payload)
        if total > self.max_bytes:
            self.spills += 1
            return ("inline", task_id, ok, payload)
        seg = self._take(total)
        spans: List[Tuple[int, int]] = []
        offset = 0
        for view in views:
            n = view.nbytes
            seg.buf[offset : offset + n] = view.cast("B")
            spans.append((offset, n))
            offset = _align(offset + n)
        return ("shm", task_id, ok, head, seg.name, spans, total)


def decode_payload(
    head: bytes, seg: shared_memory.SharedMemory, spans
) -> Any:
    """Rebuild a payload whose array buffers live in ``seg`` (zero-copy).

    The reconstructed NumPy arrays are views over the segment's mapping;
    the caller owns keeping ``seg`` alive until they are collected (the
    pool does this with per-array finalizers).
    """
    buffers = [memoryview(seg.buf)[off : off + n] for off, n in spans]
    return pickle.loads(head, buffers=buffers)


def iter_payload_arrays(obj: Any, _seen: Optional[set] = None) -> Iterator[np.ndarray]:
    """Yield every ndarray reachable from a result payload.

    Walks the containers launch results are actually made of —
    dataclasses, dicts, lists/tuples/sets — which is exactly the shape of
    :class:`~repro.exec.work.LaunchOutcome` and of ad-hoc test payloads.
    The pool attaches its segment-release finalizers to these arrays.
    """
    if _seen is None:
        _seen = set()
    if id(obj) in _seen:
        return
    _seen.add(id(obj))
    if isinstance(obj, np.ndarray):
        yield obj
        return
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        for f in dataclasses.fields(obj):
            yield from iter_payload_arrays(getattr(obj, f.name), _seen)
        return
    if isinstance(obj, dict):
        for v in obj.values():
            yield from iter_payload_arrays(v, _seen)
        return
    if isinstance(obj, (list, tuple, set, frozenset)):
        for v in obj:
            yield from iter_payload_arrays(v, _seen)
