"""The unit of pool work: one engine launch, described declaratively.

Both dispatch layers — the sweep runner's offline grids and the service
scheduler's online micro-batches — reduce their planned
:class:`~repro.planner.PlannedBatch` groups to the same executable
payload: a tuple of per-lane :class:`~repro.config.SimulationConfig`
(seeds included) plus how to launch them. :class:`LaunchWork` is that
payload, :func:`execute_launch` runs it (in-process or inside an
:class:`~repro.exec.pool.ExecutorPool` worker), and
:func:`launch_cost` prices it for LPT scheduling.

Because a work item is nothing but configs, results inherit the batched
engine's bit-identity guarantee unchanged: the same ``LaunchWork``
produces the same trajectories whether it runs on the caller's thread,
a pool worker, or is split differently across workers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..analytics import MetricStream, MetricStreamSpec
from ..backend import resolve_backend
from ..config import SimulationConfig
from ..engine import run_batched, run_simulation
from ..engine.base import RunResult
from ..obs import TraceSpec, Tracer

__all__ = ["LaunchWork", "LaunchOutcome", "execute_launch", "launch_cost", "warm_backend"]


@dataclass(frozen=True)
class LaunchWork:
    """One engine launch: per-lane configs plus launch shape.

    ``configs`` carries one fully-resolved config per lane — each lane's
    seed lives in its config, so the item is self-contained and pickles
    into a pool worker without side channels.

    ``batched`` selects :func:`~repro.engine.run_batched` (requires
    >= 2 lanes); ``mixed`` passes the whole per-lane config list to the
    batched engine (padded heterogeneous lanes) instead of one shared
    config plus a seed stack. Non-batched work runs each config through
    a solo :func:`~repro.engine.run_simulation` on ``engine``.

    ``metrics`` optionally names a per-step metric stream (a picklable
    :class:`~repro.analytics.MetricStreamSpec`, one run id per lane).
    When set, the launch emits :class:`~repro.metrics.StepMetrics`
    records into the spec's analytics store *as steps execute* —
    wherever the launch runs, pool worker included. Metric emission is
    read-only over engine state, so results stay bit-identical to an
    unstreamed launch.

    ``trace`` optionally requests tracing spans (a picklable
    :class:`~repro.obs.TraceSpec` stamped when the launch was handed to
    the executor). The executing side records
    ``dispatch → warm_backend → engine.run → to_host`` spans and ships
    them back as wire dicts on :attr:`LaunchOutcome.spans`; the
    dispatching side grafts them onto each job's trace. Like metrics,
    tracing only reads clocks — results stay bit-identical.
    """

    configs: Tuple[SimulationConfig, ...]
    engine: str = "vectorized"
    batched: bool = False
    mixed: bool = False
    record_timeline: bool = False
    metrics: Optional[MetricStreamSpec] = None
    trace: Optional[TraceSpec] = None


@dataclass(frozen=True)
class LaunchOutcome:
    """Per-lane results of one executed :class:`LaunchWork`.

    ``wall_seconds`` aligns with ``results``: for a batched launch every
    lane reports the amortised batch wall (total / lanes); for solo runs
    each lane reports its own isolated wall.

    ``spans`` is the launch-level span tree as wire dicts (empty when
    the work carried no :class:`~repro.obs.TraceSpec`). Span ``trace_id``
    / ``parent_id`` are placeholders here — the committing side rewrites
    them into each job's own trace.
    """

    results: Tuple[RunResult, ...]
    lanes: int
    wall_seconds: Tuple[float, ...]
    spans: Tuple[dict, ...] = ()


def launch_cost(work: LaunchWork) -> int:
    """Real work of a launch in agent-steps (padding slots excluded).

    The LPT scheduling weight: a padded batch is priced by the sum of
    its lanes' *real* populations, not ``lane count x pad target``, so a
    worker that drew the large-lane batch is charged accordingly.
    """
    return sum(c.total_agents * c.steps for c in work.configs)


def warm_backend(name: str) -> None:
    """Worker initializer: resolve (and cache) an array backend up front.

    :func:`repro.backend.resolve_backend` memoises instances per process,
    so a persistent worker pays backend construction once — on the first
    launch without this, or at spawn with it. Passing this as an
    :class:`~repro.exec.pool.ExecutorPool` initializer just moves that
    cost off the first batch's critical path.
    """
    resolve_backend(name)


def execute_launch(work: LaunchWork) -> LaunchOutcome:
    """Run one work item; lane results return in ``work.configs`` order.

    With ``work.metrics`` set, a :class:`~repro.analytics.MetricStream`
    is built *here* — in whichever process the launch landed — and the
    engines' per-step callbacks stream records through it into the
    analytics store while the launch runs. The stream is closed (tail
    flushed) even when the launch raises, so a failed run keeps the
    steps it completed.
    """
    configs = list(work.configs)
    stream = (
        MetricStream(work.metrics, configs) if work.metrics is not None else None
    )
    tracer = None
    if work.trace is not None:
        tracer = Tracer()
        # The gap between the dispatcher's stamp and this process picking
        # the work up: queue-for-worker + pickling + transit (≈0 inline).
        now = time.time()
        tracer.add(
            "dispatch",
            start_unix=work.trace.dispatched_unix,
            duration_s=now - work.trace.dispatched_unix,
        )
    try:
        if work.batched and len(configs) > 1:
            seeds = [c.seed for c in configs]
            if tracer is not None:
                # Memoised per process — a warm worker's span is ~0,
                # a cold one shows the real backend construction cost.
                with tracer.span("warm_backend"):
                    resolve_backend(configs[0].backend)
            run_span = (
                tracer.start(
                    "engine.run", engine="batched", lanes=len(configs)
                )
                if tracer is not None
                else None
            )
            out = run_batched(
                configs if work.mixed else configs[0],
                seeds,
                record_timeline=work.record_timeline,
                callback=stream.batched_callback if stream is not None else None,
            )
            if run_span is not None:
                run_span.attrs["steps"] = out.results[0].steps_run
                tracer.finish(run_span)
            per_lane_wall = out.wall_seconds_per_lane
            with _maybe_span(tracer, "to_host"):
                outcome = LaunchOutcome(
                    results=tuple(out.results),
                    lanes=len(configs),
                    wall_seconds=(per_lane_wall,) * len(configs),
                )
            return _with_spans(outcome, tracer)
        results = []
        walls = []
        for i, cfg in enumerate(configs):
            timed = run_simulation(
                cfg,
                engine=work.engine,
                record_timeline=work.record_timeline,
                callback=stream.solo_callback(i) if stream is not None else None,
                tracer=tracer,
            )
            results.append(timed.result)
            walls.append(timed.wall_seconds)
        with _maybe_span(tracer, "to_host"):
            outcome = LaunchOutcome(
                results=tuple(results), lanes=1, wall_seconds=tuple(walls)
            )
        return _with_spans(outcome, tracer)
    finally:
        if stream is not None:
            stream.close()


class _NullContext:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


def _maybe_span(tracer: Optional[Tracer], name: str):
    return tracer.span(name) if tracer is not None else _NULL_CONTEXT


def _with_spans(outcome: LaunchOutcome, tracer: Optional[Tracer]) -> LaunchOutcome:
    if tracer is None:
        return outcome
    return replace(outcome, spans=tracer.wire())
