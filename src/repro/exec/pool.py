"""`ExecutorPool`: one persistent worker pool for every dispatch path.

The repo used to have two divergent ways of putting work on cores: the
sweep runner spun up a transient ``multiprocessing.Pool`` per grid and
the serving layer executed every launch serially on the tick thread.
This module replaces both with a single long-lived executor that

* **owns process lifecycle** — workers start from the forward-compatible
  ``forkserver``/``spawn`` context (:data:`MP_START_METHOD`, never the
  deprecated ``fork``), stay warm between launches (so per-process state
  such as the resolved array backend is paid for once, not per batch),
  and are respawned if they die;
* **schedules LPT-heaviest-first** — pending work drains from a heap
  ordered by ``(priority desc, cost desc, submission order)``, so the
  longest launches (by real agent-steps) land on workers first and
  high-priority service jobs overtake fill work;
* **isolates failures** — an exception inside a work item resolves only
  that item's future; a *killed* worker (OOM, segfault, SIGKILL) fails
  only the item it was running with :class:`~repro.errors.
  WorkerCrashError`, is replaced by a fresh process, and every sibling
  and subsequent submission proceeds normally;
* **returns futures** — :meth:`ExecutorPool.submit` hands back a
  :class:`concurrent.futures.Future`, so callers can gather results in
  submission order (the sweep) or as they complete (the service tick);
* **ships results zero-copy** — large results ride pooled
  shared-memory segments (:mod:`repro.exec.shm`): the queue carries a
  constant-size pickle head, the parent rebuilds the arrays as segment
  views, and segments recycle once the views are garbage-collected.
  Small results, oversize results and exceptions use the legacy in-band
  pickle exactly as before.

Workers are started lazily on the first submission, so constructing a
pool (or a ``workers=N`` service that never sees a burst) costs nothing.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import pickle
import queue
import threading
import weakref
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..errors import ExperimentError, WorkerCrashError
from .shm import (
    SHM_MAX_BYTES,
    SHM_THRESHOLD_BYTES,
    SegmentWriter,
    attach_segment,
    decode_payload,
    iter_payload_arrays,
)

__all__ = ["MP_START_METHOD", "ExecutorPool"]

#: Worker start method, chosen explicitly: ``fork`` is deprecated in the
#: presence of threads on CPython 3.12 and stops being the POSIX default
#: in 3.14, so relying on the platform default is a time bomb.
#: ``forkserver`` (the new POSIX default) where available, ``spawn``
#: elsewhere — both work because work items pickle cleanly.
MP_START_METHOD = (
    "forkserver"
    if "forkserver" in multiprocessing.get_all_start_methods()
    else "spawn"
)


def _worker_main(
    task_q, result_q, initializer, initargs, shm_threshold, shm_max
) -> None:
    """Worker loop: execute task messages until the ``None`` poison pill.

    The worker is deliberately stateless between tasks *except* for
    module-level caches the work functions maintain (the resolved
    array-backend instances and the warm-state placement/distance caches
    in :mod:`repro.engine.warmstate`): that residue is the "warm worker"
    payoff of a persistent pool.

    Results are encoded *here*, in the worker's main thread, so an
    unpicklable result or exception surfaces as a clean per-task failure
    instead of dying silently in a queue feeder thread. Large results
    land in pooled shared-memory segments (``shm_threshold < 0``
    disables the transport); ``("release", name)`` messages from the
    parent hand segments back for reuse.
    """
    if initializer is not None:
        initializer(*initargs)
    writer = SegmentWriter(shm_threshold, shm_max) if shm_threshold >= 0 else None
    try:
        while True:
            msg = task_q.get()
            if msg is None:
                return
            if msg[0] == "release":
                if writer is not None:
                    writer.release(msg[1])
                continue
            _, task_id, fn, args = msg
            try:
                ok, payload = True, fn(*args)
            except BaseException as exc:  # noqa: BLE001 - isolate ANY task failure
                ok, payload = False, exc
            if writer is not None:
                out = writer.encode(task_id, ok, payload)
            else:
                out = ("inline", task_id, ok, payload)
            try:
                blob = pickle.dumps(out)
            except Exception as exc:  # unpicklable result/exception
                blob = pickle.dumps(
                    (
                        "inline",
                        task_id,
                        False,
                        ExperimentError(
                            f"work item returned an unpicklable payload: {exc}"
                        ),
                    )
                )
            result_q.put(blob)
    finally:
        if writer is not None:
            writer.close()


def _enqueue_release(release_q: deque, name: str, shm_keepalive) -> None:
    """Finalizer body for one reconstructed array.

    ``shm_keepalive`` (the parent's SharedMemory wrapper) is parked *in
    the queue entry*, not dropped here: the finalizer fires while its
    array is still mid-deallocation (buffer still exported), and the
    wrapper's ``__del__`` closing an mmap with exported buffers raises
    BufferError. Riding the deque, the wrapper outlives the dealloc and
    is released by the collector's drain (or with the deque itself once
    the pool is garbage). The append is the only action — lock-free, so
    GC timing can never deadlock against the pool lock.
    """
    release_q.append((name, shm_keepalive))


@dataclass
class _Task:
    """One submitted work item awaiting execution or completion."""

    task_id: int
    fn: Callable
    args: Tuple
    cost: float
    priority: int
    owner: Optional[str] = None
    future: Future = field(default_factory=Future)


@dataclass
class _Worker:
    """A live worker process plus its private task pipe."""

    worker_id: int
    process: multiprocessing.process.BaseProcess
    task_q: Any  # ctx.SimpleQueue — single producer (pool), single consumer


@dataclass
class _Segment:
    """A shared-memory segment the parent currently has mapped."""

    name: str
    shm: Any  # shared_memory.SharedMemory
    worker_id: int
    nbytes: int
    #: Reconstructed arrays still alive; the segment retires at zero.
    refs: int
    #: Set when the owning worker died — retirement unlinks instead of
    #: sending a recycle message.
    worker_dead: bool = False


class ExecutorPool:
    """Persistent multi-process executor with priority/LPT scheduling.

    Parameters
    ----------
    workers:
        Number of worker processes (>= 1). Workers spawn lazily on the
        first :meth:`submit` and persist until :meth:`close`.
    start_method:
        Override the multiprocessing start method (tests); defaults to
        :data:`MP_START_METHOD`.
    initializer, initargs:
        Optional picklable callable run once in each worker at start
        (e.g. :func:`repro.exec.work.warm_backend` to pre-resolve an
        array backend before the first launch lands).
    use_shm:
        Enable the zero-copy shared-memory result transport (default
        on). Off, every result takes the legacy in-band pickle path.
    shm_threshold, shm_max_bytes:
        Transport band: results whose array buffers total fewer bytes
        than ``shm_threshold`` ship in-band (header-dominated), larger
        than ``shm_max_bytes`` spill to the legacy path (bounded
        mappings); see :mod:`repro.exec.shm`.
    """

    def __init__(
        self,
        workers: int = 1,
        start_method: Optional[str] = None,
        initializer: Optional[Callable] = None,
        initargs: Tuple = (),
        use_shm: bool = True,
        shm_threshold: int = SHM_THRESHOLD_BYTES,
        shm_max_bytes: int = SHM_MAX_BYTES,
    ) -> None:
        if workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self._ctx = multiprocessing.get_context(start_method or MP_START_METHOD)
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self.use_shm = bool(use_shm)
        self._shm_threshold = int(shm_threshold)
        self._shm_max_bytes = int(shm_max_bytes)

        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._seq = itertools.count()
        self._tasks: Dict[int, _Task] = {}  # submitted, not yet resolved
        self._pending: List[Tuple[int, float, int, int]] = []  # heap
        self._workers: Dict[int, _Worker] = {}
        self._idle: List[int] = []
        self._inflight: Dict[int, int] = {}  # worker_id -> task_id
        self._worker_ids = itertools.count()
        self._result_q = None
        self._collector: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._closing = False
        self._closed = False
        #: High-water mark of simultaneously assigned workers — the
        #: pool-lifetime evidence that launches actually overlapped.
        self.peak_busy = 0
        #: Per-owner concurrency accounting (see :meth:`peak_busy_for`):
        #: a shared pool serves several dispatchers, and each one's
        #: ``peak_concurrent_launches`` must reflect only its own tasks.
        self._owner_inflight: Dict[str, int] = {}
        self._owner_peak: Dict[str, int] = {}
        #: Workers respawned after dying mid-task (crash isolation count).
        self.respawns = 0
        #: Circuit breaker: consecutive worker deaths with no completed
        #: task in between. Occasional crashes (one OOM-killed batch)
        #: reset on the next success; a systematic failure (e.g. an
        #: initializer that dies in every spawned child) would otherwise
        #: respawn processes forever without ever surfacing an error.
        self._crash_streak = 0
        self._crash_limit = max(4, 2 * self.workers)
        self._broken = False

        # Shared-memory transport state. ``_segments`` holds segments the
        # parent has mapped (payload views alive); ``_worker_segments``
        # remembers every segment name a worker has ever shipped, so the
        # reaper can unlink a crashed worker's pool. ``_release_q`` is
        # fed by per-array GC finalizers (lock-free append; the collector
        # drains it), so a finalizer firing mid-allocation can never
        # deadlock against the pool lock.
        self._segments: Dict[str, _Segment] = {}
        self._worker_segments: Dict[int, Set[str]] = {}
        self._release_q: deque = deque()
        #: Transport counters (see :meth:`transport_stats`).
        self.shm_results = 0
        self.inline_results = 0
        self.shm_payload_bytes = 0
        self.shm_head_bytes = 0
        self.inline_bytes = 0
        self.segments_created = 0
        self.segment_reclaims = 0
        self.oversize_spills = 0
        self._owner_transport: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_started_locked(self) -> None:
        if self._workers or self._closed:
            return
        self._result_q = self._ctx.Queue()
        for _ in range(self.workers):
            self._spawn_worker_locked()
        self._collector = threading.Thread(
            target=self._collect_loop, name="executor-pool-collector", daemon=True
        )
        self._collector.start()

    def _spawn_worker_locked(self) -> None:
        worker_id = next(self._worker_ids)
        task_q = self._ctx.SimpleQueue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                task_q,
                self._result_q,
                self._initializer,
                self._initargs,
                self._shm_threshold if self.use_shm else -1,
                self._shm_max_bytes,
            ),
            name=f"executor-pool-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        self._workers[worker_id] = _Worker(worker_id, process, task_q)
        self._idle.append(worker_id)

    def __enter__(self) -> "ExecutorPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        fn: Callable,
        *args,
        cost: float = 0.0,
        priority: int = 0,
        owner: Optional[str] = None,
    ) -> Future:
        """Queue ``fn(*args)`` on the pool; returns its future.

        ``fn`` and ``args`` must pickle (module-level callables).
        ``cost`` is the LPT scheduling weight — for simulation launches,
        real agent-steps (:func:`repro.exec.work.launch_cost`) — and
        ``priority`` overrides cost ordering entirely (higher first).
        ``owner`` is an opaque tag scoping concurrency accounting: a
        borrowed (shared) pool tracks each dispatcher's high-water mark
        separately, readable via :meth:`peak_busy_for`.
        """
        with self._lock:
            if self._closing or self._closed:
                raise ExperimentError("submit() on a closed ExecutorPool")
            if self._broken:
                raise ExperimentError(
                    f"ExecutorPool disabled after {self._crash_streak} "
                    f"consecutive worker crashes (workers die without "
                    f"completing any task — check the initializer/backend)"
                )
            self._ensure_started_locked()
            task = _Task(
                task_id=next(self._seq),
                fn=fn,
                args=args,
                cost=float(cost),
                priority=int(priority),
                owner=owner,
            )
            self._tasks[task.task_id] = task
            heapq.heappush(
                self._pending,
                (-task.priority, -task.cost, task.task_id, task.task_id),
            )
            self._pump_locked()
            return task.future

    def _pump_locked(self) -> None:
        """Assign pending tasks (priority, then heaviest-first) to idle workers."""
        while self._pending and self._idle:
            _, _, _, task_id = heapq.heappop(self._pending)
            task = self._tasks[task_id]
            worker_id = self._idle.pop()
            self._inflight[worker_id] = task_id
            self.peak_busy = max(self.peak_busy, len(self._inflight))
            if task.owner is not None:
                busy = self._owner_inflight.get(task.owner, 0) + 1
                self._owner_inflight[task.owner] = busy
                self._owner_peak[task.owner] = max(
                    self._owner_peak.get(task.owner, 0), busy
                )
            self._workers[worker_id].task_q.put(
                ("task", task_id, task.fn, task.args)
            )

    # ------------------------------------------------------------------
    # Completion / crash handling (collector thread)
    # ------------------------------------------------------------------
    def _collect_loop(self) -> None:
        while not (self._stop.is_set() and not self._tasks):
            self._drain_releases()
            try:
                blob = self._result_q.get(timeout=0.1)
            except (queue.Empty, EOFError, OSError):
                # Empty is the idle heartbeat; EOFError/OSError mean a
                # worker died mid-write (the exact crash class this pool
                # isolates) — either way, sweep for dead workers so their
                # tasks fail instead of hanging, and keep collecting.
                with self._lock:
                    crashed = self._reap_dead_locked()
                # Futures resolve outside the lock (mirrors the normal
                # completion path), so a waiter woken here can never
                # contend with the pool's own bookkeeping.
                for task, message in crashed:
                    task.future.set_exception(WorkerCrashError(message))
                continue
            try:
                msg = pickle.loads(blob)
            except Exception:
                # Torn blob from a worker killed mid-put; the reaper
                # will fail that worker's task on the next sweep.
                continue
            # One result per method call, so payload/array references die
            # on return — a lingering loop local must not pin the last
            # result's segment across an idle wait.
            self._handle_result(msg, len(blob))
            del msg, blob

    def _handle_result(self, msg: Tuple, blob_len: int) -> None:
        """Decode one worker message, settle bookkeeping, resolve the future."""
        kind, task_id, ok = msg[0], msg[1], msg[2]
        payload: Any
        decode_error: Optional[str] = None
        seg = None
        arrays: List[Any] = []
        if kind == "shm":
            _, _, _, head, seg_name, spans, total = msg
            try:
                shm = attach_segment(seg_name)
                payload = decode_payload(head, shm, spans)
                arrays = list(iter_payload_arrays(payload))
                seg = _Segment(
                    name=seg_name,
                    shm=shm,
                    worker_id=-1,  # resolved under the lock below
                    nbytes=int(total),
                    refs=max(1, len(arrays)),
                )
            except Exception as exc:
                payload = None
                decode_error = (
                    f"lost shared-memory result segment {seg_name!r}: {exc}"
                )
        else:
            payload = msg[3]
        with self._lock:
            self._crash_streak = 0
            task = self._tasks.pop(task_id, None)
            for worker_id, running in list(self._inflight.items()):
                if running == task_id:
                    del self._inflight[worker_id]
                    self._idle.append(worker_id)
                    self._release_owner_locked(task)
                    if seg is not None:
                        seg.worker_id = worker_id
                    break
            owner = task.owner if task is not None else None
            if kind == "shm" and seg is not None:
                self._segments[seg.name] = seg
                names = self._worker_segments.setdefault(seg.worker_id, set())
                if seg.name not in names:
                    names.add(seg.name)
                    self.segments_created += 1
                self.shm_results += 1
                self.shm_payload_bytes += seg.nbytes
                self.shm_head_bytes += len(msg[3])
                self._owner_tally_locked(owner, "shm_results", 1)
                self._owner_tally_locked(owner, "shm_bytes", seg.nbytes)
            elif kind == "inline" and ok:
                self.inline_results += 1
                self.inline_bytes += blob_len
                if self.use_shm and blob_len >= self._shm_threshold:
                    # A large result bypassed the segment path: the
                    # oversize (or non-contiguous) legacy spill.
                    self.oversize_spills += 1
                self._owner_tally_locked(owner, "inline_results", 1)
            self._pump_locked()
            self._drained.notify_all()
        if seg is not None:
            # Per-array GC finalizers drive segment recycling; they only
            # append to the lock-free release deque, drained by the
            # collector thread, so GC timing can never deadlock the pool.
            for arr in arrays:
                weakref.finalize(arr, _enqueue_release, self._release_q,
                                 seg.name, seg.shm)
            if not arrays:  # pragma: no cover - defensive
                self._release_q.append((seg.name, seg.shm))
        if task is None:
            return  # stale result from a worker declared dead
        if decode_error is not None:
            task.future.set_exception(WorkerCrashError(decode_error))
        elif ok:
            task.future.set_result(payload)
        elif isinstance(payload, BaseException):
            task.future.set_exception(payload)
        else:  # pragma: no cover - workers always send exceptions
            task.future.set_exception(ExperimentError(str(payload)))

    def _owner_tally_locked(self, owner: Optional[str], key: str, n: int) -> None:
        if owner is None:
            return
        stats = self._owner_transport.setdefault(owner, {})
        stats[key] = stats.get(key, 0) + n

    def _drain_releases(self) -> None:
        """Retire segments whose reconstructed arrays have all been GC'd."""
        if not self._release_q:
            return
        with self._lock:
            while self._release_q:
                name, _keepalive = self._release_q.popleft()
                seg = self._segments.get(name)
                if seg is None:
                    continue
                seg.refs -= 1
                if seg.refs > 0:
                    continue
                try:
                    seg.shm.close()
                except BufferError:  # pragma: no cover - exported view lives
                    # Someone still exports a raw buffer; retry on the
                    # next drain pass.
                    seg.refs = 1
                    self._release_q.append((name, _keepalive))
                    continue
                del self._segments[name]
                if seg.worker_dead:
                    continue  # the reaper already unlinked the name
                worker = self._workers.get(seg.worker_id)
                if worker is not None and worker.process.is_alive():
                    try:
                        worker.task_q.put(("release", name))
                        continue
                    except (OSError, ValueError):  # pragma: no cover
                        pass
                # No live owner to recycle into: unlink from the parent.
                self._worker_segments.get(seg.worker_id, set()).discard(name)
                try:
                    seg.shm.unlink()
                    self.segment_reclaims += 1
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass

    def _release_owner_locked(self, task: Optional[_Task]) -> None:
        """Drop one unit of an owner's in-flight count (task left a worker)."""
        if task is None or task.owner is None:
            return
        busy = self._owner_inflight.get(task.owner, 0) - 1
        if busy > 0:
            self._owner_inflight[task.owner] = busy
        else:
            self._owner_inflight.pop(task.owner, None)

    def peak_busy_for(self, owner: str) -> int:
        """High-water mark of simultaneously running tasks for ``owner``.

        Unlike :attr:`peak_busy` (pool-lifetime, all owners), this never
        counts another dispatcher's overlap — the number a borrowed
        pool's stats should report.
        """
        with self._lock:
            return self._owner_peak.get(owner, 0)

    def transport_stats(self, owner: Optional[str] = None) -> Dict[str, int]:
        """Result-transport counters (pool-wide, or one owner's slice).

        Pool-wide keys: ``shm_results`` / ``inline_results`` (how each
        result travelled), ``shm_payload_bytes`` (array bytes that moved
        through segments instead of the pipe), ``shm_head_bytes`` (what
        the pipe actually carried for those results), ``inline_bytes``,
        ``segments_created`` / ``segments_in_flight`` /
        ``segment_reclaims`` (crash-reclaimed or parent-unlinked
        segments) and ``oversize_spills``. The ``owner`` slice reports
        ``shm_results`` / ``shm_bytes`` / ``inline_results`` for that
        dispatcher only.
        """
        with self._lock:
            if owner is not None:
                stats = dict(self._owner_transport.get(owner, {}))
                for key in ("shm_results", "shm_bytes", "inline_results"):
                    stats.setdefault(key, 0)
                return stats
            return {
                "shm_results": self.shm_results,
                "inline_results": self.inline_results,
                "shm_payload_bytes": self.shm_payload_bytes,
                "shm_head_bytes": self.shm_head_bytes,
                "inline_bytes": self.inline_bytes,
                "segments_created": self.segments_created,
                "segments_in_flight": len(self._segments),
                "segment_reclaims": self.segment_reclaims,
                "oversize_spills": self.oversize_spills,
            }

    def _reap_dead_locked(self) -> List[Tuple[_Task, str]]:
        """Collect tasks of dead workers; replace the workers.

        Called from the collector whenever the result queue idles. Only
        the batch a dead worker was running fails — pending work and
        sibling workers are untouched, and the fresh process immediately
        rejoins the idle set. The dead worker's shared-memory segments
        are unlinked here (its free pool immediately, mapped ones by
        name — live payload views stay valid until their own release),
        so even SIGKILL leaks no /dev/shm entries. Returns the failed
        ``(task, message)`` pairs for the caller to resolve outside the
        lock.
        """
        failed: List[Tuple[_Task, str]] = []
        for worker_id, worker in list(self._workers.items()):
            if worker.process.is_alive():
                continue
            task_id = self._inflight.pop(worker_id, None)
            del self._workers[worker_id]
            if worker_id in self._idle:
                self._idle.remove(worker_id)
            task = None if task_id is None else self._tasks.pop(task_id, None)
            self._release_owner_locked(task)
            if task is not None:
                failed.append(
                    (
                        task,
                        f"worker process died mid-launch "
                        f"(exit code {worker.process.exitcode}); the batch "
                        f"was not completed",
                    )
                )
            # Reclaim the dead worker's segments: nothing will ever send
            # them back for recycling.
            for name in self._worker_segments.pop(worker_id, set()):
                seg = self._segments.get(name)
                try:
                    if seg is not None:
                        # Parent still maps it (payload views alive):
                        # unlink the name now, keep the mapping until the
                        # views retire it.
                        seg.worker_dead = True
                        seg.shm.unlink()
                    else:
                        leaked = attach_segment(name)
                        leaked.close()
                        leaked.unlink()
                    self.segment_reclaims += 1
                except FileNotFoundError:
                    pass  # the worker unlinked it before dying
            self.respawns += 1
            self._crash_streak += 1
            if self._crash_streak >= self._crash_limit:
                self._broken = True
            if not (self._closing or self._closed or self._broken):
                self._spawn_worker_locked()
        if self._broken:
            # Nothing will ever execute pending work (respawning is
            # disabled); fail it now instead of hanging its futures.
            while self._pending:
                _, _, _, task_id = heapq.heappop(self._pending)
                task = self._tasks.pop(task_id, None)
                if task is not None:
                    failed.append(
                        (
                            task,
                            f"executor pool disabled after "
                            f"{self._crash_streak} consecutive worker "
                            f"crashes; the task was never started",
                        )
                    )
        if failed:
            self._pump_locked()
            self._drained.notify_all()
        return failed

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, timeout: float = 60.0) -> None:
        """Drain outstanding work, then stop every worker (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closing = True
            started = self._collector is not None
            if started:
                self._drained.wait_for(lambda: not self._tasks, timeout=timeout)
            self._closed = True
        self._stop.set()
        if not started:
            return
        self._drain_releases()
        for worker in list(self._workers.values()):
            try:
                worker.task_q.put(None)
            except (OSError, ValueError):  # pragma: no cover - dead pipe
                pass
        for worker in list(self._workers.values()):
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - defensive
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        if self._collector is not None:
            self._collector.join(timeout=5.0)
        self._result_q.close()

    @property
    def started(self) -> bool:
        """Whether worker processes exist yet (they spawn on first submit)."""
        with self._lock:
            return bool(self._workers)
