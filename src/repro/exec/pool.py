"""`ExecutorPool`: one persistent worker pool for every dispatch path.

The repo used to have two divergent ways of putting work on cores: the
sweep runner spun up a transient ``multiprocessing.Pool`` per grid and
the serving layer executed every launch serially on the tick thread.
This module replaces both with a single long-lived executor that

* **owns process lifecycle** — workers start from the forward-compatible
  ``forkserver``/``spawn`` context (:data:`MP_START_METHOD`, never the
  deprecated ``fork``), stay warm between launches (so per-process state
  such as the resolved array backend is paid for once, not per batch),
  and are respawned if they die;
* **schedules LPT-heaviest-first** — pending work drains from a heap
  ordered by ``(priority desc, cost desc, submission order)``, so the
  longest launches (by real agent-steps) land on workers first and
  high-priority service jobs overtake fill work;
* **isolates failures** — an exception inside a work item resolves only
  that item's future; a *killed* worker (OOM, segfault, SIGKILL) fails
  only the item it was running with :class:`~repro.errors.
  WorkerCrashError`, is replaced by a fresh process, and every sibling
  and subsequent submission proceeds normally;
* **returns futures** — :meth:`ExecutorPool.submit` hands back a
  :class:`concurrent.futures.Future`, so callers can gather results in
  submission order (the sweep) or as they complete (the service tick).

Workers are started lazily on the first submission, so constructing a
pool (or a ``workers=N`` service that never sees a burst) costs nothing.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import pickle
import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ExperimentError, WorkerCrashError

__all__ = ["MP_START_METHOD", "ExecutorPool"]

#: Worker start method, chosen explicitly: ``fork`` is deprecated in the
#: presence of threads on CPython 3.12 and stops being the POSIX default
#: in 3.14, so relying on the platform default is a time bomb.
#: ``forkserver`` (the new POSIX default) where available, ``spawn``
#: elsewhere — both work because work items pickle cleanly.
MP_START_METHOD = (
    "forkserver"
    if "forkserver" in multiprocessing.get_all_start_methods()
    else "spawn"
)


def _worker_main(task_q, result_q, initializer, initargs) -> None:
    """Worker loop: execute task messages until the ``None`` poison pill.

    The worker is deliberately stateless between tasks *except* for
    module-level caches the work functions maintain (e.g. the resolved
    array-backend instances in :mod:`repro.backend`): that residue is the
    "warm worker" payoff of a persistent pool.

    Results are pickled *here*, in the worker's main thread, so an
    unpicklable result or exception surfaces as a clean per-task failure
    instead of dying silently in a queue feeder thread.
    """
    if initializer is not None:
        initializer(*initargs)
    while True:
        msg = task_q.get()
        if msg is None:
            return
        task_id, fn, args = msg
        try:
            payload: Tuple[int, bool, Any] = (task_id, True, fn(*args))
        except BaseException as exc:  # noqa: BLE001 - isolate ANY task failure
            payload = (task_id, False, exc)
        try:
            blob = pickle.dumps(payload)
        except Exception as exc:  # unpicklable result/exception
            blob = pickle.dumps(
                (
                    task_id,
                    False,
                    ExperimentError(
                        f"work item returned an unpicklable payload: {exc}"
                    ),
                )
            )
        result_q.put(blob)


@dataclass
class _Task:
    """One submitted work item awaiting execution or completion."""

    task_id: int
    fn: Callable
    args: Tuple
    cost: float
    priority: int
    owner: Optional[str] = None
    future: Future = field(default_factory=Future)


@dataclass
class _Worker:
    """A live worker process plus its private task pipe."""

    worker_id: int
    process: multiprocessing.process.BaseProcess
    task_q: Any  # ctx.SimpleQueue — single producer (pool), single consumer


class ExecutorPool:
    """Persistent multi-process executor with priority/LPT scheduling.

    Parameters
    ----------
    workers:
        Number of worker processes (>= 1). Workers spawn lazily on the
        first :meth:`submit` and persist until :meth:`close`.
    start_method:
        Override the multiprocessing start method (tests); defaults to
        :data:`MP_START_METHOD`.
    initializer, initargs:
        Optional picklable callable run once in each worker at start
        (e.g. :func:`repro.exec.work.warm_backend` to pre-resolve an
        array backend before the first launch lands).
    """

    def __init__(
        self,
        workers: int = 1,
        start_method: Optional[str] = None,
        initializer: Optional[Callable] = None,
        initargs: Tuple = (),
    ) -> None:
        if workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self._ctx = multiprocessing.get_context(start_method or MP_START_METHOD)
        self._initializer = initializer
        self._initargs = tuple(initargs)

        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._seq = itertools.count()
        self._tasks: Dict[int, _Task] = {}  # submitted, not yet resolved
        self._pending: List[Tuple[int, float, int, int]] = []  # heap
        self._workers: Dict[int, _Worker] = {}
        self._idle: List[int] = []
        self._inflight: Dict[int, int] = {}  # worker_id -> task_id
        self._worker_ids = itertools.count()
        self._result_q = None
        self._collector: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._closing = False
        self._closed = False
        #: High-water mark of simultaneously assigned workers — the
        #: pool-lifetime evidence that launches actually overlapped.
        self.peak_busy = 0
        #: Per-owner concurrency accounting (see :meth:`peak_busy_for`):
        #: a shared pool serves several dispatchers, and each one's
        #: ``peak_concurrent_launches`` must reflect only its own tasks.
        self._owner_inflight: Dict[str, int] = {}
        self._owner_peak: Dict[str, int] = {}
        #: Workers respawned after dying mid-task (crash isolation count).
        self.respawns = 0
        #: Circuit breaker: consecutive worker deaths with no completed
        #: task in between. Occasional crashes (one OOM-killed batch)
        #: reset on the next success; a systematic failure (e.g. an
        #: initializer that dies in every spawned child) would otherwise
        #: respawn processes forever without ever surfacing an error.
        self._crash_streak = 0
        self._crash_limit = max(4, 2 * self.workers)
        self._broken = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_started_locked(self) -> None:
        if self._workers or self._closed:
            return
        self._result_q = self._ctx.Queue()
        for _ in range(self.workers):
            self._spawn_worker_locked()
        self._collector = threading.Thread(
            target=self._collect_loop, name="executor-pool-collector", daemon=True
        )
        self._collector.start()

    def _spawn_worker_locked(self) -> None:
        worker_id = next(self._worker_ids)
        task_q = self._ctx.SimpleQueue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(task_q, self._result_q, self._initializer, self._initargs),
            name=f"executor-pool-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        self._workers[worker_id] = _Worker(worker_id, process, task_q)
        self._idle.append(worker_id)

    def __enter__(self) -> "ExecutorPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        fn: Callable,
        *args,
        cost: float = 0.0,
        priority: int = 0,
        owner: Optional[str] = None,
    ) -> Future:
        """Queue ``fn(*args)`` on the pool; returns its future.

        ``fn`` and ``args`` must pickle (module-level callables).
        ``cost`` is the LPT scheduling weight — for simulation launches,
        real agent-steps (:func:`repro.exec.work.launch_cost`) — and
        ``priority`` overrides cost ordering entirely (higher first).
        ``owner`` is an opaque tag scoping concurrency accounting: a
        borrowed (shared) pool tracks each dispatcher's high-water mark
        separately, readable via :meth:`peak_busy_for`.
        """
        with self._lock:
            if self._closing or self._closed:
                raise ExperimentError("submit() on a closed ExecutorPool")
            if self._broken:
                raise ExperimentError(
                    f"ExecutorPool disabled after {self._crash_streak} "
                    f"consecutive worker crashes (workers die without "
                    f"completing any task — check the initializer/backend)"
                )
            self._ensure_started_locked()
            task = _Task(
                task_id=next(self._seq),
                fn=fn,
                args=args,
                cost=float(cost),
                priority=int(priority),
                owner=owner,
            )
            self._tasks[task.task_id] = task
            heapq.heappush(
                self._pending,
                (-task.priority, -task.cost, task.task_id, task.task_id),
            )
            self._pump_locked()
            return task.future

    def _pump_locked(self) -> None:
        """Assign pending tasks (priority, then heaviest-first) to idle workers."""
        while self._pending and self._idle:
            _, _, _, task_id = heapq.heappop(self._pending)
            task = self._tasks[task_id]
            worker_id = self._idle.pop()
            self._inflight[worker_id] = task_id
            self.peak_busy = max(self.peak_busy, len(self._inflight))
            if task.owner is not None:
                busy = self._owner_inflight.get(task.owner, 0) + 1
                self._owner_inflight[task.owner] = busy
                self._owner_peak[task.owner] = max(
                    self._owner_peak.get(task.owner, 0), busy
                )
            self._workers[worker_id].task_q.put((task_id, task.fn, task.args))

    # ------------------------------------------------------------------
    # Completion / crash handling (collector thread)
    # ------------------------------------------------------------------
    def _collect_loop(self) -> None:
        while not (self._stop.is_set() and not self._tasks):
            try:
                blob = self._result_q.get(timeout=0.1)
            except (queue.Empty, EOFError, OSError):
                # Empty is the idle heartbeat; EOFError/OSError mean a
                # worker died mid-write (the exact crash class this pool
                # isolates) — either way, sweep for dead workers so their
                # tasks fail instead of hanging, and keep collecting.
                with self._lock:
                    crashed = self._reap_dead_locked()
                # Futures resolve outside the lock (mirrors the normal
                # completion path), so a waiter woken here can never
                # contend with the pool's own bookkeeping.
                for task, message in crashed:
                    task.future.set_exception(WorkerCrashError(message))
                continue
            try:
                task_id, ok, payload = pickle.loads(blob)
            except Exception:
                # Torn blob from a worker killed mid-put; the reaper
                # will fail that worker's task on the next sweep.
                continue
            with self._lock:
                self._crash_streak = 0
                task = self._tasks.pop(task_id, None)
                for worker_id, running in list(self._inflight.items()):
                    if running == task_id:
                        del self._inflight[worker_id]
                        self._idle.append(worker_id)
                        self._release_owner_locked(task)
                        break
                self._pump_locked()
                self._drained.notify_all()
            if task is None:
                continue  # stale result from a worker declared dead
            if ok:
                task.future.set_result(payload)
            elif isinstance(payload, BaseException):
                task.future.set_exception(payload)
            else:  # pragma: no cover - workers always send exceptions
                task.future.set_exception(ExperimentError(str(payload)))

    def _release_owner_locked(self, task: Optional[_Task]) -> None:
        """Drop one unit of an owner's in-flight count (task left a worker)."""
        if task is None or task.owner is None:
            return
        busy = self._owner_inflight.get(task.owner, 0) - 1
        if busy > 0:
            self._owner_inflight[task.owner] = busy
        else:
            self._owner_inflight.pop(task.owner, None)

    def peak_busy_for(self, owner: str) -> int:
        """High-water mark of simultaneously running tasks for ``owner``.

        Unlike :attr:`peak_busy` (pool-lifetime, all owners), this never
        counts another dispatcher's overlap — the number a borrowed
        pool's stats should report.
        """
        with self._lock:
            return self._owner_peak.get(owner, 0)

    def _reap_dead_locked(self) -> List[Tuple[_Task, str]]:
        """Collect tasks of dead workers; replace the workers.

        Called from the collector whenever the result queue idles. Only
        the batch a dead worker was running fails — pending work and
        sibling workers are untouched, and the fresh process immediately
        rejoins the idle set. Returns the failed ``(task, message)``
        pairs for the caller to resolve outside the lock.
        """
        failed: List[Tuple[_Task, str]] = []
        for worker_id, worker in list(self._workers.items()):
            if worker.process.is_alive():
                continue
            task_id = self._inflight.pop(worker_id, None)
            del self._workers[worker_id]
            if worker_id in self._idle:
                self._idle.remove(worker_id)
            task = None if task_id is None else self._tasks.pop(task_id, None)
            self._release_owner_locked(task)
            if task is not None:
                failed.append(
                    (
                        task,
                        f"worker process died mid-launch "
                        f"(exit code {worker.process.exitcode}); the batch "
                        f"was not completed",
                    )
                )
            self.respawns += 1
            self._crash_streak += 1
            if self._crash_streak >= self._crash_limit:
                self._broken = True
            if not (self._closing or self._closed or self._broken):
                self._spawn_worker_locked()
        if self._broken:
            # Nothing will ever execute pending work (respawning is
            # disabled); fail it now instead of hanging its futures.
            while self._pending:
                _, _, _, task_id = heapq.heappop(self._pending)
                task = self._tasks.pop(task_id, None)
                if task is not None:
                    failed.append(
                        (
                            task,
                            f"executor pool disabled after "
                            f"{self._crash_streak} consecutive worker "
                            f"crashes; the task was never started",
                        )
                    )
        if failed:
            self._pump_locked()
            self._drained.notify_all()
        return failed

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, timeout: float = 60.0) -> None:
        """Drain outstanding work, then stop every worker (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closing = True
            started = self._collector is not None
            if started:
                self._drained.wait_for(lambda: not self._tasks, timeout=timeout)
            self._closed = True
        self._stop.set()
        if not started:
            return
        for worker in list(self._workers.values()):
            try:
                worker.task_q.put(None)
            except (OSError, ValueError):  # pragma: no cover - dead pipe
                pass
        for worker in list(self._workers.values()):
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - defensive
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        if self._collector is not None:
            self._collector.join(timeout=5.0)
        self._result_q.close()

    @property
    def started(self) -> bool:
        """Whether worker processes exist yet (they spawn on first submit)."""
        with self._lock:
            return bool(self._workers)
