"""The property matrix (paper Table "property matrix", Figure 2c).

The paper stores one row per agent with fields ID, INDEX NO, ROW, COLUMN,
EMPTY (unused), FUTURE ROW, FUTURE COLUMN and FRONT CELL, plus a sentinel
0th row written by the threads assigned to empty cells. We keep the same
layout as a structure-of-arrays (one NumPy vector per field) because that
is the cache/coalescing-friendly layout the data-driven kernels want, and
retain the sentinel row: every array has length ``n_agents + 1`` and agent
``i`` lives at index ``i`` (1-based, matching the index matrix).
"""

from __future__ import annotations

import numpy as np

from ..backend import resolve_backend
from ..types import Group
from ..grid.environment import Environment

__all__ = ["Population", "NO_FUTURE"]

#: Sentinel for "no move decided" in the future-coordinate fields.
NO_FUTURE = -1


class Population:
    """Structure-of-arrays property matrix for all agents.

    Index 0 of every array is the paper's sentinel row; live agents are
    1..n. Fields mirror the paper's property matrix; ``tour`` is the tour
    length matrix and ``crossed``/``crossed_step`` support the throughput
    metric.
    """

    def __init__(self, n_agents: int, backend=None) -> None:
        if n_agents < 1:
            raise ValueError(f"n_agents must be >= 1, got {n_agents}")
        self.n_agents = int(n_agents)
        self.backend = resolve_backend(backend)
        xp = self.backend.xp
        size = self.n_agents + 1
        #: Group label per agent (ID field); 0 in the sentinel row.
        self.ids = xp.zeros(size, dtype=np.int8)
        #: Current row / column (ROW, COLUMN fields).
        self.rows = xp.zeros(size, dtype=np.int64)
        self.cols = xp.zeros(size, dtype=np.int64)
        #: Decided next cell (FUTURE ROW / FUTURE COLUMN), NO_FUTURE if none.
        self.future_rows = xp.full(size, NO_FUTURE, dtype=np.int64)
        self.future_cols = xp.full(size, NO_FUTURE, dtype=np.int64)
        #: FRONT CELL field: True when the forward cell was empty at scan.
        self.front_empty = xp.zeros(size, dtype=bool)
        #: Tour length accumulated so far (tour matrix; eq. 5 denominator).
        self.tour = xp.zeros(size, dtype=np.float64)
        #: Crossing bookkeeping for the throughput metric.
        self.crossed = xp.zeros(size, dtype=bool)
        self.crossed_step = xp.full(size, -1, dtype=np.int64)
        #: Tour length at the moment of crossing (efficiency metrics).
        self.crossed_tour = xp.full(size, np.nan, dtype=np.float64)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_environment(cls, env: Environment) -> "Population":
        """Build the property matrix from a freshly placed environment.

        Obstacle cells carry no agents and are skipped.
        """
        xp = env.backend.xp
        agent_cells = (env.mat == int(Group.TOP)) | (env.mat == int(Group.BOTTOM))
        occ_rows, occ_cols = xp.nonzero(agent_cells)
        indices = env.index[occ_rows, occ_cols]
        n = int(indices.max()) if indices.size else 0
        if n != indices.size:
            raise ValueError("index matrix is not a dense 1..n numbering")
        pop = cls(n, backend=env.backend)
        pop.ids[indices] = env.mat[occ_rows, occ_cols]
        pop.rows[indices] = occ_rows
        pop.cols[indices] = occ_cols
        return pop

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def agent_indices(self) -> np.ndarray:
        """1-based indices of live agents (excludes the sentinel row)."""
        return self.backend.xp.arange(1, self.n_agents + 1, dtype=np.int64)

    def group_mask(self, group: Group) -> np.ndarray:
        """Boolean mask over 0..n marking agents of ``group``."""
        return self.ids == int(Group(group))

    def members(self, group: Group) -> np.ndarray:
        """1-based indices of agents belonging to ``group``."""
        return self.backend.xp.nonzero(self.group_mask(group))[0]

    def positions(self) -> np.ndarray:
        """``(n, 2)`` (row, col) of live agents, index order."""
        return self.backend.xp.stack([self.rows[1:], self.cols[1:]], axis=1)

    # ------------------------------------------------------------------
    # Step bookkeeping
    # ------------------------------------------------------------------
    def reset_futures(self) -> None:
        """Support-kernel work: clear decided moves before the next scan."""
        self.future_rows.fill(NO_FUTURE)
        self.future_cols.fill(NO_FUTURE)
        self.front_empty.fill(False)

    def record_crossings(self, height: int, cross_band: int, step: int) -> int:
        """Mark agents that have entered the opposite band; return new count.

        A TOP agent has crossed when ``row >= height - cross_band``; a
        BOTTOM agent when ``row < cross_band``. Crossing is latched (an
        agent that wanders back still counts, as in the paper's "able to
        cross over" definition).
        """
        top = self.ids == int(Group.TOP)
        bottom = self.ids == int(Group.BOTTOM)
        newly = (
            (top & (self.rows >= height - cross_band))
            | (bottom & (self.rows < cross_band))
        ) & ~self.crossed
        self.crossed |= newly
        self.crossed_step[newly] = step
        self.crossed_tour[newly] = self.tour[newly]
        return int(self.backend.xp.count_nonzero(newly))

    def crossed_count(self, group: Group = None) -> int:
        """Number of crossed agents, optionally restricted to one group."""
        xp = self.backend.xp
        if group is None:
            return int(xp.count_nonzero(self.crossed[1:]))
        return int(xp.count_nonzero(self.crossed & self.group_mask(group)))

    # ------------------------------------------------------------------
    # Copies / comparison
    # ------------------------------------------------------------------
    def copy(self) -> "Population":
        """Deep copy of all fields (same backend)."""
        pop = Population(self.n_agents, backend=self.backend)
        for name in (
            "ids",
            "rows",
            "cols",
            "future_rows",
            "future_cols",
            "front_empty",
            "tour",
            "crossed",
            "crossed_step",
            "crossed_tour",
        ):
            getattr(pop, name)[...] = getattr(self, name)
        return pop

    def equals(self, other: "Population") -> bool:
        """Exact equality of every field (engine-equivalence check).

        ``crossed_tour`` holds NaN for agents that have not crossed, so it
        compares with ``equal_nan``.
        """
        if self.n_agents != other.n_agents:
            return False
        xp = self.backend.xp
        exact = all(
            bool(xp.array_equal(getattr(self, name), getattr(other, name)))
            for name in (
                "ids",
                "rows",
                "cols",
                "future_rows",
                "future_cols",
                "front_empty",
                "tour",
                "crossed",
                "crossed_step",
            )
        )
        # equal_nan semantics spelled out so the comparison works on array
        # namespaces whose array_equal lacks the keyword.
        a, b = self.crossed_tour, other.crossed_tour
        return exact and bool(xp.all((a == b) | (xp.isnan(a) & xp.isnan(b))))

    def validate_against(self, env: Environment) -> None:
        """Check position/index consistency with the environment; raise on drift."""
        xp = self.backend.xp
        idx = self.agent_indices
        rows = self.rows[idx]
        cols = self.cols[idx]
        if bool(xp.any(env.index[rows, cols] != idx)):
            raise AssertionError("property matrix positions disagree with index matrix")
        if bool(xp.any(env.mat[rows, cols] != self.ids[idx])):
            raise AssertionError("property matrix ids disagree with mat")
        if int(xp.count_nonzero(env.index)) != self.n_agents:
            raise AssertionError("index matrix has wrong number of agents")
