"""Agent state: the property matrix as a structure of arrays."""

from .population import NO_FUTURE, Population

__all__ = ["Population", "NO_FUTURE"]
