"""Step-hooks: scheduled, deterministic engine-state mutations.

The paper's Section VII panic alarm is one instance of a general shape:
*at a known step, mutate the engine's state in a way that is a pure
function of the step* — swap movement parameters, open a door, flip a
policy. :class:`StepHook` captures that shape as a frozen, hashable,
serialisable component that rides inside
:class:`~repro.config.SimulationConfig` (``hooks=...``), which is what
lets hooks flow through every execution path unchanged: solo engines,
the batched engine's padded lanes, pickled pool work items, the result
cache's content digest and the service wire format.

Determinism contract: a hook fires exactly once, *before* the engine
executes step ``fire_step()`` (equivalently: after step
``fire_step() - 1`` completes). Because that is a pure function of the
step counter, a hooked run is bit-identical across the sequential,
vectorized, tiled and batched engines — including padded batches that
mix hooked and unhooked lanes (see ``swap_lane_model`` on
:class:`~repro.engine.batched.BatchedEngine`).

Hook kinds register by name so wire payloads round-trip::

    @register_hook("panic")
    @dataclass(frozen=True)
    class PanicHook(StepHook): ...

    config = config.replace(hooks=(PanicHook(trigger_step=100),))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigurationError
from ..models.params import (
    ACOParams,
    LEMParams,
    ModelParams,
    params_from_dict,
    params_to_dict,
)
from .registry import Registry

__all__ = [
    "HOOKS",
    "StepHook",
    "PanicHook",
    "register_hook",
    "hook_from_dict",
    "hooks_from_specs",
    "panic_variant",
]

#: ``kind`` → :class:`StepHook` subclass (wire-format round-trips).
HOOKS = Registry("step hook")


def register_hook(kind: str):
    """Class decorator: register a hook kind for (de)serialisation."""

    def deco(cls):
        HOOKS.register(kind, cls)
        return cls

    return deco


def panic_variant(params: ModelParams) -> ModelParams:
    """Default "panicked" counterpart of a parameter bundle.

    * LEM: the waiting behaviour disappears — agents always take the best
      reachable cell (``ceil`` rule, draw pinned near the top score);
    * ACO: goal-seeking dominates the trail (beta up) and trails decay
      fast (rho up) — panicking crowds stop following predecessors.
    """
    if isinstance(params, LEMParams):
        return params.replace(rule="ceil", mu=1.0, sigma=0.25)
    if isinstance(params, ACOParams):
        return params.replace(beta=max(3.0, params.beta), rho=min(1.0, params.rho * 5))
    raise ConfigurationError(
        f"no default panic variant for {type(params).__name__}; pass one explicitly"
    )


@dataclass(frozen=True)
class StepHook:
    """Base class for scheduled engine mutations (frozen → hashable).

    Subclasses implement the firing step and the mutation, twice: once
    against a solo :class:`~repro.engine.base.BaseEngine` and once
    against one lane of a :class:`~repro.engine.batched.BatchedEngine`.
    Both must express the *same* mutation so batched lanes stay
    bit-identical to their solo runs.
    """

    #: Registry kind; subclasses override (class attribute, not a field).
    kind = "base"

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on invalid values."""

    def fire_step(self) -> int:
        """The step *before* which the hook applies (>= 1)."""
        raise NotImplementedError

    def apply(self, engine) -> None:
        """Mutate a solo engine (sequential/vectorized/tiled)."""
        raise NotImplementedError

    def apply_lane(self, engine, lane: int) -> None:
        """Mutate one lane of a batched engine."""
        raise NotImplementedError

    def to_dict(self) -> dict:
        """JSON-ready spec; the inverse of :func:`hook_from_dict`."""
        raise NotImplementedError


@register_hook("panic")
@dataclass(frozen=True)
class PanicHook(StepHook):
    """Scheduled model swap — the Section VII panic alarm as a component.

    At ``trigger_step`` every agent switches to the "panicked" movement
    parameters (``panic_params``, defaulting to :func:`panic_variant` of
    the run's configured bundle). The batched realisation swaps only the
    hook's own lane, so a padded batch mixing panicked and calm lanes
    reproduces each solo trajectory exactly.

    The default panic variants keep ``scan_range`` and the pheromone
    family unchanged, which is what the batched per-lane swap requires;
    an explicit ``panic_params`` crossing those lines still works on the
    solo engines but raises :class:`~repro.errors.EngineError` when a
    batched lane tries to apply it.
    """

    kind = "panic"

    trigger_step: int = 0
    panic_params: Optional[ModelParams] = None

    def validate(self) -> None:
        if self.trigger_step < 0:
            raise ConfigurationError(
                f"trigger_step must be >= 0, got {self.trigger_step}"
            )
        if self.panic_params is not None:
            if not isinstance(self.panic_params, ModelParams):
                raise ConfigurationError(
                    f"panic_params must be a ModelParams bundle, "
                    f"got {type(self.panic_params)!r}"
                )
            self.panic_params.validate()

    def fire_step(self) -> int:
        # A swap cannot precede the first step; trigger 0 degenerates to 1,
        # matching the legacy PanicAlarm callback's "report.step + 1 >=
        # trigger_step" firing rule.
        return max(int(self.trigger_step), 1)

    def _params_for(self, configured: ModelParams) -> ModelParams:
        return (
            self.panic_params
            if self.panic_params is not None
            else panic_variant(configured)
        )

    def apply(self, engine) -> None:
        engine.swap_model(self._params_for(engine.config.params))

    def apply_lane(self, engine, lane: int) -> None:
        engine.swap_lane_model(lane, self._params_for(engine.configs[lane].params))

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "trigger_step": int(self.trigger_step),
            "panic_params": (
                None
                if self.panic_params is None
                else params_to_dict(self.panic_params)
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PanicHook":
        spec = dict(data)
        spec.pop("kind", None)
        trigger = spec.pop("trigger_step", 0)
        params_spec = spec.pop("panic_params", None)
        if spec:
            raise ConfigurationError(
                f"unknown panic-hook fields {sorted(spec)}; expected "
                f"'trigger_step' and optional 'panic_params'"
            )
        try:
            trigger = int(trigger)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"panic-hook trigger_step must be an integer, got {trigger!r}"
            ) from None
        params = None if params_spec is None else params_from_dict(params_spec)
        hook = cls(trigger_step=trigger, panic_params=params)
        hook.validate()
        return hook


def hook_from_dict(data: dict) -> StepHook:
    """Rebuild a hook from its :meth:`StepHook.to_dict` spec."""
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"hook spec must be a JSON object, got {type(data).__name__}"
        )
    cls = HOOKS.get(data.get("kind", ""))
    hook = cls.from_dict(data)
    hook.validate()
    return hook


def hooks_from_specs(specs) -> Tuple[StepHook, ...]:
    """Decode a ``hooks`` wire list into validated hook instances."""
    if not isinstance(specs, (list, tuple)):
        raise ConfigurationError(
            f"hooks must be a list of hook specs, got {type(specs).__name__}"
        )
    return tuple(hook_from_dict(spec) for spec in specs)
