"""Named scenario families: ``family:arg`` → :class:`SimulationConfig`.

The paper's population sweep (``paper:<i>``) is one *family* of
scenarios; this module turns the family into a registry so new workloads
compose from the existing grid/obstacle/group machinery instead of
editing core files. A scenario name is ``family:arg`` — the family
selects a registered :class:`ScenarioBuilder`, the argument parametrises
it (an index, a geometry) — and the built config carries the canonical
name in ``config.scenario``, so it flows through the sweep, the padded
planner, the result cache's digest, the service wire format and
``/analytics/runs?scenario=`` without any of those layers knowing the
family exists.

Built-in families (see ``docs/SCENARIOS.md`` for geometry sketches):

* ``paper:<i>`` — the paper's 1-based population sweep, verbatim
  (delegates to :func:`repro.experiments.scenarios.scenario_config`).
* ``boarding:<rows>x<cols>`` — CALM-style single-aisle linear movement:
  alternating seat-row obstacles leave one free aisle column and free
  passing-bay rows; the two groups board/deplane through the aisle in
  counterflow.
* ``crossing:<h>x<w>`` — two counterflows forced through a central
  junction by four corner blocks (a crossing of corridors).

Registering a custom family::

    from repro.components import ScenarioBuilder, register_scenario

    @register_scenario("atrium")
    class AtriumScenario(ScenarioBuilder):
        family = "atrium"
        def build(self, arg, *, model="lem", scale="standard", seed=0):
            ...return a SimulationConfig with scenario=f"atrium:{arg}"

Afterwards ``repro run/sweep/submit --scenario atrium:...`` just works.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..config import SimulationConfig
from ..errors import ConfigurationError
from ..experiments.scenarios import SCALES, scenario_config, scenario_spec
from ..grid.obstacles import ObstacleSpec
from .registry import Registry

__all__ = [
    "SCENARIOS",
    "ScenarioBuilder",
    "register_scenario",
    "parse_scenario_name",
    "build_scenario",
    "expand_scenarios",
    "scenario_steps",
]

#: ``family`` → :class:`ScenarioBuilder` instance.
SCENARIOS = Registry("scenario family")


def register_scenario(family: str):
    """Class decorator: register a scenario family under ``family``.

    The class is instantiated once; the instance serves every build.
    """

    def deco(cls):
        SCENARIOS.register(family, cls())
        return cls

    return deco


def parse_scenario_name(name: str) -> Tuple[str, str]:
    """Split ``"family:arg"`` into ``(family, arg)``, normalised.

    The family is case-insensitive; the argument is passed to the
    builder verbatim (stripped).
    """
    text = str(name).strip()
    if not text:
        raise ConfigurationError("scenario name must be a non-empty string")
    family, sep, arg = text.partition(":")
    family = family.strip().lower()
    if not family:
        raise ConfigurationError(
            f"scenario name {name!r} has no family; expected 'family:arg' "
            f"with family one of {SCENARIOS.names()}"
        )
    return family, arg.strip() if sep else ""


def build_scenario(
    name: str,
    *,
    model: str = "lem",
    scale: str = "standard",
    seed: int = 0,
) -> SimulationConfig:
    """Build the config for a named scenario, labelled with its name.

    The returned config's ``scenario`` field is the canonical name (as
    the builder spells it), which is what the analytics store and the
    ``/analytics/runs?scenario=`` filter key on.
    """
    family, arg = parse_scenario_name(name)
    builder = SCENARIOS.get(family)
    config = builder.build(arg, model=model, scale=scale, seed=seed)
    if config.scenario is None:
        config = config.replace(scenario=f"{family}:{arg}" if arg else family)
    return config


def expand_scenarios(patterns) -> List[str]:
    """Expand scenario patterns into concrete names, order-preserving.

    ``patterns`` is an iterable of names; ``family:*`` expands to the
    family's representative variants (:meth:`ScenarioBuilder.variants`).
    Duplicates are dropped, first occurrence wins.
    """
    if isinstance(patterns, str):
        patterns = [p for p in patterns.split(",") if p.strip()]
    out: List[str] = []
    seen = set()
    for pattern in patterns:
        family, arg = parse_scenario_name(pattern)
        if arg == "*":
            names = SCENARIOS.get(family).variants()
            if not names:
                raise ConfigurationError(
                    f"scenario family {family!r} declares no variants; "
                    f"name one explicitly instead of {family}:*"
                )
        else:
            names = [str(pattern).strip()]
        for n in names:
            if n not in seen:
                seen.add(n)
                out.append(n)
    if not out:
        raise ConfigurationError("no scenarios named; expected 'family:arg'")
    return out


def _scale_divisor(scale: str) -> int:
    try:
        return SCALES[scale].divisor
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {scale!r}; available: {sorted(SCALES)}"
        ) from None


def scenario_steps(height: int, scale: str) -> int:
    """Step budget for a named-geometry scenario at a measurement scale.

    Named families size their own grids, so the paper's fixed 25,000-step
    budget does not apply; instead the budget is proportional to the
    grid height (~10 traversal lengths) divided by the scale's linear
    divisor, floored so even ``tiny`` runs produce a usable metric
    stream.
    """
    return max(48, (10 * int(height)) // _scale_divisor(scale))


def _parse_dims(arg: str, family: str, what: str) -> Tuple[int, int]:
    """Parse an ``"<a>x<b>"`` geometry argument."""
    parts = str(arg).lower().split("x")
    if len(parts) != 2:
        raise ConfigurationError(
            f"{family} scenario argument must be '{what}', got {arg!r} "
            f"(e.g. '{family}:{'30x7' if family == 'boarding' else '40x40'}')"
        )
    try:
        a, b = int(parts[0]), int(parts[1])
    except ValueError:
        raise ConfigurationError(
            f"{family} scenario argument must be '{what}' with integer "
            f"dimensions, got {arg!r}"
        ) from None
    return a, b


class ScenarioBuilder:
    """Protocol for scenario families.

    Subclasses set ``family`` and implement :meth:`build`; override
    :meth:`variants` to support the ``family:*`` wildcard (smoke legs,
    demo sweeps). ``build`` must return a config whose ``scenario``
    field is the canonical name so repeated spellings of the same
    geometry share one cache digest and one analytics label.
    """

    family = "base"

    def build(
        self,
        arg: str,
        *,
        model: str = "lem",
        scale: str = "standard",
        seed: int = 0,
    ) -> SimulationConfig:
        raise NotImplementedError

    def variants(self) -> List[str]:
        """Representative concrete names for ``family:*`` (may be empty)."""
        return []


@register_scenario("paper")
class PaperScenario(ScenarioBuilder):
    """The paper's population sweep, by 1-based index (``paper:<i>``).

    Identical to the legacy integer-index path
    (:func:`repro.experiments.scenarios.scenario_config`) except that the
    built config is labelled ``paper:<i>`` — index-driven sweeps remain
    unlabelled, so their cache digests are unchanged.
    """

    family = "paper"

    def build(self, arg, *, model="lem", scale="standard", seed=0):
        try:
            index = int(str(arg))
        except ValueError:
            raise ConfigurationError(
                f"paper scenario argument must be a 1-based index, got {arg!r}"
            ) from None
        spec = scenario_spec(index)
        cfg = scenario_config(spec, model=model, scale=scale, seed=seed)
        return cfg.replace(scenario=f"paper:{index}")

    def variants(self):
        return ["paper:1", "paper:2"]


@register_scenario("boarding")
class BoardingScenario(ScenarioBuilder):
    """Single-aisle boarding/deplaning (``boarding:<rows>x<cols>``).

    A cabin of ``rows`` seat rows and ``cols`` columns with one free
    aisle at the centre column: every second cabin row is blocked left
    and right of the aisle (seat rows), the rows between stay free
    (passing bays). The two groups start in clear bands fore and aft of
    the cabin and traverse it in counterflow — the CALM-style linear
    movement constraint: lateral freedom only in the bays, single-file
    in the aisle.
    """

    family = "boarding"

    MIN_ROWS, MIN_COLS = 6, 5

    def geometry(self, arg: str):
        """Resolve ``(rows, cols, aisle, n_per_side, band, height, rects)``."""
        rows, cols = _parse_dims(arg, self.family, "<rows>x<cols>")
        if rows < self.MIN_ROWS or cols < self.MIN_COLS:
            raise ConfigurationError(
                f"boarding cabin must be at least "
                f"{self.MIN_ROWS}x{self.MIN_COLS} (rows x cols), "
                f"got {rows}x{cols}"
            )
        aisle = cols // 2
        n_per_side = max(2, (rows * 2) // 3)
        band = max(2, math.ceil(n_per_side / (cols * 0.8)))
        height = rows + 2 * band
        rects = []
        for r in range(0, rows, 2):
            row = band + r
            rects.append((row, 0, row + 1, aisle))
            rects.append((row, aisle + 1, row + 1, cols))
        return rows, cols, aisle, n_per_side, band, height, tuple(rects)

    def build(self, arg, *, model="lem", scale="standard", seed=0):
        rows, cols, _aisle, n_per_side, band, height, rects = self.geometry(arg)
        cfg = SimulationConfig(
            height=height,
            width=cols,
            n_per_side=n_per_side,
            steps=scenario_steps(height, scale),
            seed=seed,
            init_rows=band,
            obstacles=ObstacleSpec(kind="rects", rects=rects),
            scenario=f"{self.family}:{rows}x{cols}",
        )
        return cfg.with_model(model)

    def variants(self):
        return ["boarding:12x5", "boarding:30x7"]


@register_scenario("crossing")
class CrossingScenario(ScenarioBuilder):
    """Orthogonal corridors sharing a junction (``crossing:<h>x<w>``).

    Four corner blocks carve a plus-shaped free region out of an
    ``h`` x ``w`` grid: a vertical corridor (width ~``w/3``) crossed by
    a horizontal one (height ~``h/3``). The two groups traverse the
    vertical corridor in counterflow and contest the central junction,
    with the horizontal arms as lateral relief — the multi-directional
    crossing workload of arXiv:1705.03569 realised with two groups.
    """

    family = "crossing"

    MIN_DIM = 12

    def geometry(self, arg: str):
        """Resolve ``(h, w, corridor_w, corridor_h, n_per_side, band, rects)``."""
        h, w = _parse_dims(arg, self.family, "<h>x<w>")
        if h < self.MIN_DIM or w < self.MIN_DIM:
            raise ConfigurationError(
                f"crossing grid must be at least {self.MIN_DIM}x"
                f"{self.MIN_DIM}, got {h}x{w}"
            )
        cw = max(2, w // 3)
        ch = max(2, h // 3)
        c0 = (w - cw) // 2
        r0 = (h - ch) // 2
        rects = (
            (0, 0, r0, c0),
            (0, c0 + cw, r0, w),
            (r0 + ch, 0, h, c0),
            (r0 + ch, c0 + cw, h, w),
        )
        band = max(2, h // 8)
        n_per_side = max(4, (band * cw) // 2)
        return h, w, cw, ch, n_per_side, band, rects

    def build(self, arg, *, model="lem", scale="standard", seed=0):
        h, w, _cw, _ch, n_per_side, band, rects = self.geometry(arg)
        cfg = SimulationConfig(
            height=h,
            width=w,
            n_per_side=n_per_side,
            steps=scenario_steps(h, scale),
            seed=seed,
            init_rows=band,
            obstacles=ObstacleSpec(kind="rects", rects=rects),
            scenario=f"{self.family}:{h}x{w}",
        )
        return cfg.with_model(model)

    def variants(self):
        return ["crossing:12x12", "crossing:16x16"]
