"""Movement-model registries: params bundles and model implementations.

Two registries share the key space of ``ModelParams.model_name``:

* :data:`MODEL_PARAMS` — parameter-bundle classes, consulted by
  :func:`repro.models.params.params_from_name` and
  :meth:`repro.config.SimulationConfig.from_dict` to rebuild a bundle
  from its serialized name;
* :data:`MODEL_CLASSES` — :class:`~repro.models.base.MovementModel`
  implementations, consulted by :func:`repro.models.base.build_model`.

Third-party models plug in without touching ``repro/models``::

    from repro.components import register_model, register_model_params
    from repro.models import ModelParams, MovementModel

    @register_model_params
    class SwarmParams(ModelParams):
        model_name = "swarm"

    @register_model("swarm")
    class SwarmModel(MovementModel):
        name = "swarm"
        ...

Once registered, ``"swarm"`` works everywhere a model name travels: the
CLI's ``--model``, config dicts on the service wire,
:func:`~repro.io.config_digest` cache keys and the analytics store.
"""

from __future__ import annotations

from .registry import Registry

__all__ = [
    "MODEL_PARAMS",
    "MODEL_CLASSES",
    "register_model",
    "register_model_params",
    "resolve_model_class",
]

#: ``model_name`` → :class:`~repro.models.params.ModelParams` subclass.
MODEL_PARAMS = Registry("model")

#: ``model_name`` → :class:`~repro.models.base.MovementModel` subclass.
MODEL_CLASSES = Registry("movement model")


def register_model_params(cls):
    """Class decorator: register a params bundle under its ``model_name``."""
    MODEL_PARAMS.register(getattr(cls, "model_name", ""), cls)
    return cls


def register_model(name: str):
    """Class decorator: register a movement model under ``name``.

    ``name`` must match the ``model_name`` of the params bundle the model
    consumes — that is the key :func:`~repro.models.base.build_model`
    resolves from ``config.params``.
    """

    def deco(cls):
        MODEL_CLASSES.register(name, cls)
        return cls

    return deco


def resolve_model_class(name: str):
    """The registered movement-model class for ``name``.

    Raises :class:`~repro.errors.ConfigurationError` listing the
    registered names when ``name`` is unknown.
    """
    return MODEL_CLASSES.get(name)
