"""Generic name → component registry.

One small mechanism backs every extension point of the component
framework (movement models, parameter bundles, scenario families,
step-hooks): a mapping from a normalised name to a registered object,
with loud, uniform failure modes —

* registering a name twice raises :class:`ConfigurationError` (silent
  shadowing of a built-in is a debugging nightmare);
* looking up an unknown name raises :class:`ConfigurationError` and the
  message lists every registered name, so a typo in a CLI flag or a wire
  payload tells the caller what *would* have worked.

Registries behave like read-only mappings (``in``, ``len``, iteration,
``sorted(...)``) so existing call sites written against plain dicts keep
working when a dict is replaced by a registry view.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List

from ..errors import ConfigurationError

__all__ = ["Registry"]


def _normalise(name: Any) -> str:
    return str(name).strip().lower()


class Registry:
    """A named component table with duplicate refusal and listing errors.

    ``kind`` is the human label used in error messages ("movement
    model", "scenario family", ...). ``entries`` is the live backing
    dict — exposed so legacy module-level tables (e.g.
    ``repro.models.params.MODEL_NAMES``) can alias it and stay in sync
    with late registrations.
    """

    def __init__(self, kind: str) -> None:
        self.kind = str(kind)
        self.entries: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def register(self, name: str, obj: Any) -> Any:
        """Register ``obj`` under ``name``; returns ``obj`` (decorator use)."""
        key = _normalise(name)
        if not key:
            raise ConfigurationError(
                f"{self.kind} name must be a non-empty string, got {name!r}"
            )
        if key in self.entries:
            raise ConfigurationError(
                f"{self.kind} {key!r} is already registered "
                f"({self.entries[key]!r}); pick a different name"
            )
        self.entries[key] = obj
        return obj

    def get(self, name: str) -> Any:
        """Look up a registered component; unknown names list what exists."""
        key = _normalise(name)
        try:
            return self.entries[key]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; registered: {self.names()}"
            ) from None

    def names(self) -> List[str]:
        """Sorted registered names (stable error-message order)."""
        return sorted(self.entries)

    # ------------------------------------------------------------------
    # Read-only mapping surface (drop-in for plain-dict call sites)
    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return _normalise(name) in self.entries

    def __getitem__(self, name: str) -> Any:
        return self.get(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {self.names()})"
