"""Composable component framework: registries for models, scenarios, hooks.

Every extension point is a :class:`~repro.components.registry.Registry`
(duplicate names refused, unknown names listed in the error):

* movement models — :data:`MODEL_PARAMS` / :data:`MODEL_CLASSES`, fed by
  :func:`register_model_params` / :func:`register_model`, consumed by
  :func:`repro.models.base.build_model`;
* scenario families — :data:`SCENARIOS`, fed by
  :func:`register_scenario`, consumed by :func:`build_scenario`
  (``repro run/sweep/submit --scenario family:arg``);
* step-hooks — :data:`HOOKS`, fed by :func:`register_hook`, carried in
  ``SimulationConfig.hooks`` and honoured by every engine, including
  per-lane inside :class:`~repro.engine.batched.BatchedEngine`.

Registered components travel by *name* through the config wire format,
the content-addressed result cache and the analytics store, so plugging
in a model, scenario or hook requires no edits to the execution layer.

Import note: ``repro.config`` and ``repro.models.params`` import parts
of this package, so only the dependency-free modules load eagerly here;
hook and scenario names re-export lazily (PEP 562) to keep those cycles
unwound.
"""

from __future__ import annotations

from .models import (
    MODEL_CLASSES,
    MODEL_PARAMS,
    register_model,
    register_model_params,
    resolve_model_class,
)
from .registry import Registry

#: Lazily re-exported names → submodule (PEP 562). ``hooks`` pulls in
#: ``repro.models.params`` and ``scenarios`` pulls in ``repro.config``;
#: both would cycle if imported while those modules initialise.
_LAZY = {
    "HOOKS": "hooks",
    "StepHook": "hooks",
    "PanicHook": "hooks",
    "register_hook": "hooks",
    "hook_from_dict": "hooks",
    "hooks_from_specs": "hooks",
    "panic_variant": "hooks",
    "SCENARIOS": "scenarios",
    "ScenarioBuilder": "scenarios",
    "register_scenario": "scenarios",
    "parse_scenario_name": "scenarios",
    "build_scenario": "scenarios",
    "expand_scenarios": "scenarios",
    "scenario_steps": "scenarios",
}

__all__ = [
    "Registry",
    "MODEL_PARAMS",
    "MODEL_CLASSES",
    "register_model",
    "register_model_params",
    "resolve_model_class",
    *_LAZY,
]


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)


def __dir__():
    return sorted(__all__)
