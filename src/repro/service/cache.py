"""Content-addressed result cache.

Completed results are stored on disk under the canonical digest of their
resolved config (:func:`repro.io.config_digest`): two requests with the
same digest are the same simulation, and the engines' bit-identity
guarantee (same ``(config, seed)`` → same trajectory on every engine and
backend) makes serving the stored result exactly as good as re-running.
Entries record which platform produced them, so a cached answer is
attributable even when served to a request that named a different
engine.

Writes are atomic (temp file + ``os.replace``), so a killed server never
leaves a torn entry — a partially written result simply never becomes
visible under its digest.
"""

from __future__ import annotations

import json
import os
from typing import Optional

__all__ = ["ResultCache"]


class ResultCache:
    """On-disk ``digest → result payload`` map (one JSON file per entry)."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, f"{digest}.json")

    def get(self, digest: str) -> Optional[dict]:
        """The cached payload for ``digest``, or None on a miss."""
        path = self._path(digest)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError:
            # Unreadable entry (e.g. external tampering): treat as a miss;
            # the fresh result will overwrite it atomically.
            return None

    def put(self, digest: str, payload: dict) -> None:
        """Store ``payload`` under ``digest`` atomically."""
        path = self._path(digest)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)

    def __contains__(self, digest: str) -> bool:
        return os.path.exists(self._path(digest))

    def __len__(self) -> int:
        return sum(1 for n in os.listdir(self.root) if n.endswith(".json"))
