"""Content-addressed result cache with LRU eviction budgets.

Completed results are stored on disk under the canonical digest of their
resolved config (:func:`repro.io.config_digest`): two requests with the
same digest are the same simulation, and the engines' bit-identity
guarantee (same ``(config, seed)`` → same trajectory on every engine and
backend) makes serving the stored result exactly as good as re-running.
Entries record which platform produced them, so a cached answer is
attributable even when served to a request that named a different
engine.

Writes are atomic (temp file + ``os.replace``), so a killed server never
leaves a torn entry — a partially written result simply never becomes
visible under its digest.

Growth is bounded: the cache accepts an entry-count budget and/or a
byte budget and evicts **least-recently-used** entries beyond either.
Recency survives restarts because hits touch the entry file's mtime —
the in-memory LRU index is rebuilt mtime-ordered when a service starts
over an existing cache directory (and a budget that shrank between runs
is enforced immediately). A byte budget smaller than a single entry
still keeps the most recent entry: evicting the result that was just
computed would turn the cache into pure overhead.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from typing import Optional

from ..errors import ServiceError

__all__ = ["ResultCache"]


class ResultCache:
    """On-disk ``digest → result payload`` map (one JSON file per entry).

    Parameters
    ----------
    root:
        Cache directory, created on demand. Existing entries are indexed
        oldest-access-first (file mtime) so eviction order persists
        across restarts.
    max_entries:
        Keep at most this many entries (>= 1); ``None`` = unbounded.
    max_bytes:
        Keep at most this many payload bytes (> 0); ``None`` =
        unbounded. The most recently written entry is always retained
        even if it alone exceeds the budget.
    """

    def __init__(
        self,
        root: str,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ServiceError(
                f"cache max_entries must be >= 1, got {max_entries}"
            )
        if max_bytes is not None and max_bytes < 1:
            raise ServiceError(f"cache max_bytes must be >= 1, got {max_bytes}")
        self.root = str(root)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        #: Entries evicted over this cache's lifetime (stats surface).
        self.evictions = 0
        os.makedirs(self.root, exist_ok=True)
        #: digest → payload bytes, ordered least- to most-recently used.
        self._index: "OrderedDict[str, int]" = OrderedDict()
        self._total_bytes = 0
        self._load_index()
        self._evict()

    # ------------------------------------------------------------------
    def _load_index(self) -> None:
        entries = []
        for name in os.listdir(self.root):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.root, name)
            try:
                stat = os.stat(path)
            except OSError:  # pragma: no cover - raced external delete
                continue
            entries.append((stat.st_mtime, name[: -len(".json")], stat.st_size))
        for _, digest, size in sorted(entries):
            self._index[digest] = size
            self._total_bytes += size

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, f"{digest}.json")

    def _drop(self, digest: str) -> None:
        size = self._index.pop(digest, None)
        if size is not None:
            self._total_bytes -= size

    def _evict(self) -> None:
        """Remove least-recently-used entries beyond either budget."""

        def over() -> bool:
            if self.max_entries is not None and len(self._index) > self.max_entries:
                return True
            return (
                self.max_bytes is not None
                and self._total_bytes > self.max_bytes
                # Never evict the sole (most recent) entry on byte
                # pressure; max_entries >= 1 can't ask for it either.
                and len(self._index) > 1
            )

        while over():
            digest = next(iter(self._index))  # LRU end
            self._drop(digest)
            try:
                os.remove(self._path(digest))
            except FileNotFoundError:  # pragma: no cover - raced delete
                pass
            self.evictions += 1

    # ------------------------------------------------------------------
    def get(self, digest: str) -> Optional[dict]:
        """The cached payload for ``digest``, or None on a miss.

        A hit refreshes the entry's recency, both in the index and on
        disk (mtime), so LRU order survives a restart.
        """
        path = self._path(digest)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self._drop(digest)
            return None
        except json.JSONDecodeError:
            # Unreadable entry (e.g. external tampering): treat as a miss;
            # the fresh result will overwrite it atomically.
            return None
        if digest in self._index:
            self._index.move_to_end(digest)
        else:  # written by an external process; adopt it
            self._index[digest] = os.path.getsize(path)
            self._total_bytes += self._index[digest]
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - raced external delete
            pass
        return payload

    def put(self, digest: str, payload: dict) -> None:
        """Store ``payload`` under ``digest`` atomically, then evict LRU."""
        path = self._path(digest)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
            fh.write("\n")
        size = os.path.getsize(tmp)
        os.replace(tmp, path)
        self._drop(digest)  # overwrite: retire the old size
        self._index[digest] = size  # MRU end
        self._total_bytes += size
        self._evict()

    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Payload bytes currently held (what ``max_bytes`` bounds)."""
        return self._total_bytes

    def __contains__(self, digest: str) -> bool:
        return digest in self._index

    def __len__(self) -> int:
        return len(self._index)
