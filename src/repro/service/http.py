"""Stdlib HTTP front end for :class:`~repro.service.service.SimulationService`.

The wire surface is enumerated in :data:`ROUTES` (the table
``docs/API.md`` is asserted against — see ``tests/test_docs.py``) and
documented endpoint-by-endpoint there. In short: ``POST /jobs``
submits (single spec or atomic burst), ``GET /jobs[/<id>]`` inspects,
``GET /jobs/<id>/stream`` serves a live Server-Sent-Events feed of
per-step metrics while a job runs (requires ``--analytics-db``),
``GET /jobs/<id>/trace`` returns a finished job's tracing span tree,
``GET /analytics/runs`` and ``GET /analytics/fundamental-diagram``
query the persistent run store, ``GET /stats`` / ``GET /healthz``
report counters and liveness, and ``GET /metrics`` exposes the
latency histograms and serving counters in Prometheus text format.
JSON in, JSON out (SSE for the stream, plain text for the scrape) —
no dependencies beyond ``http.server``.

Request handling runs on :class:`~http.server.ThreadingHTTPServer`
threads; the micro-batching loop is one background thread draining the
queue every ``tick_interval`` seconds. The service's own lock reconciles
the two, with engine work outside it — so submissions, status polls and
metric streams stay responsive while a batch executes.
"""

from __future__ import annotations

import json
import threading
import time
import traceback
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional, Tuple

from ..config import SimulationConfig
from ..errors import ReproError, ServiceError
from .service import SimulationService

__all__ = ["ServiceServer", "DEFAULT_PORT", "ROUTES"]

#: Default TCP port for ``repro serve`` (no registered meaning; chosen to
#: stay clear of the common dev-server squat zone around 8000/8080).
DEFAULT_PORT = 8177

#: Refuse request bodies beyond this size (a config spec is ~1 KB; this
#: allows bursts of thousands while bounding memory per request).
_MAX_BODY_BYTES = 8 * 1024 * 1024

#: The complete wire surface: ``(method, path template, summary)``.
#: ``docs/API.md`` documents exactly these routes (a test diffs the two),
#: and the handler's dispatch covers exactly these paths.
ROUTES: Tuple[Tuple[str, str, str], ...] = (
    ("POST", "/jobs", "submit one job spec or an atomic burst"),
    ("GET", "/jobs", "list every job (summaries, no config echo)"),
    ("GET", "/jobs/<id>", "one job, result included when done"),
    (
        "GET",
        "/jobs/<id>/stream",
        "live SSE feed of per-step metrics (needs analytics)",
    ),
    (
        "GET",
        "/jobs/<id>/trace",
        "one finished job's span tree (phase timings)",
    ),
    ("GET", "/stats", "serving counters, queue depth, analytics counts"),
    ("GET", "/metrics", "Prometheus text-format metrics scrape"),
    ("GET", "/healthz", "liveness probe"),
    ("GET", "/analytics/runs", "persisted run records, newest first"),
    (
        "GET",
        "/analytics/fundamental-diagram",
        "density/flow points across completed runs",
    ),
)

#: SSE stream poll cadence: how often the streamer checks the analytics
#: store for new metric rows and the job for a terminal state.
_STREAM_POLL_S = 0.05


def _parse_specs(
    payload: dict,
) -> List[Tuple[SimulationConfig, str, int, Optional[float]]]:
    """Decode a submit body into ``(config, engine, priority, deadline_s)``."""
    if not isinstance(payload, dict):
        raise ServiceError("submit body must be a JSON object")
    raw_specs = payload.get("jobs", [payload])
    if not isinstance(raw_specs, list) or not raw_specs:
        raise ServiceError('"jobs" must be a non-empty list of job specs')
    specs: List[Tuple[SimulationConfig, str, int, Optional[float]]] = []
    for spec in raw_specs:
        if not isinstance(spec, dict) or "config" not in spec:
            raise ServiceError('each job spec needs a "config" object')
        config = SimulationConfig.from_dict(spec["config"])
        priority = spec.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ServiceError(f'"priority" must be an integer, got {priority!r}')
        deadline = spec.get("deadline_s")
        if deadline is not None:
            if not isinstance(deadline, (int, float)) or isinstance(deadline, bool):
                raise ServiceError(
                    f'"deadline_s" must be a number, got {deadline!r}'
                )
            deadline = float(deadline)
        specs.append(
            (config, str(spec.get("engine", "vectorized")), priority, deadline)
        )
    return specs


def _make_handler(service: SimulationService):
    class Handler(BaseHTTPRequestHandler):
        # One service instance per server; closed over, not global.
        protocol_version = "HTTP/1.1"

        def log_message(self, fmt, *args):  # noqa: A003 - stdlib signature
            pass  # request logging is the caller's business, not stderr's

        # -- helpers ---------------------------------------------------
        def _reply(self, code: int, payload: dict) -> None:
            blob = json.dumps(payload).encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(blob)))
            self.end_headers()
            self.wfile.write(blob)

        def _reply_text(
            self,
            code: int,
            text: str,
            content_type: str = "text/plain; charset=utf-8",
        ) -> None:
            blob = text.encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(blob)))
            self.end_headers()
            self.wfile.write(blob)

        def _error(self, code: int, message: str) -> None:
            self._reply(code, {"error": message})

        def _read_json(self) -> Optional[dict]:
            try:
                length = int(self.headers.get("Content-Length", 0))
            except ValueError:
                length = -1
            if length < 0 or length > _MAX_BODY_BYTES:
                self._error(413, "missing or oversized request body")
                return None
            try:
                return json.loads(self.rfile.read(length).decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                self._error(400, f"bad JSON body: {exc}")
                return None

        # -- routes ----------------------------------------------------
        def do_POST(self) -> None:  # noqa: N802 - stdlib naming
            if self.path.rstrip("/") != "/jobs":
                self._error(404, f"no such endpoint: POST {self.path}")
                return
            payload = self._read_json()
            if payload is None:
                return
            try:
                jobs = service.submit_specs(_parse_specs(payload))
            except ReproError as exc:
                self._error(400, str(exc))
                return
            self._reply(202, {"jobs": jobs})

        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            raw_path, _, query = self.path.partition("?")
            path = raw_path.rstrip("/") or "/"
            params = urllib.parse.parse_qs(query)
            if path == "/healthz":
                self._reply(200, {"ok": True})
            elif path == "/stats":
                self._reply(200, service.stats_dict())
            elif path == "/metrics":
                # Prometheus text exposition format 0.0.4 (the version
                # tag is part of the scrape contract, not decoration).
                self._reply_text(
                    200,
                    service.metrics_text(),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/jobs":
                self._reply(200, {"jobs": service.jobs_payload()})
            elif path == "/analytics/runs":
                self._analytics_runs(params)
            elif path == "/analytics/fundamental-diagram":
                self._analytics_diagram(params)
            elif path.startswith("/jobs/") and path.endswith("/stream"):
                self._stream_job(path[len("/jobs/") : -len("/stream")])
            elif path.startswith("/jobs/") and path.endswith("/trace"):
                self._job_trace(path[len("/jobs/") : -len("/trace")])
            elif path.startswith("/jobs/"):
                job_id = path[len("/jobs/") :]
                try:
                    payload = service.job_payload(job_id)
                except ServiceError as exc:
                    self._error(404, str(exc))
                    return
                self._reply(200, payload)
            else:
                self._error(404, f"no such endpoint: GET {path}")

        def _job_trace(self, job_id: str) -> None:
            """``GET /jobs/<id>/trace``: the job's recorded span tree.

            404 for unknown jobs; 409 while the job has no trace yet
            (still queued/running, or the service runs with tracing
            disabled) — the job exists, the representation doesn't.
            """
            try:
                payload = service.trace_payload(job_id)
            except ServiceError as exc:
                self._error(404, str(exc))
                return
            if payload is None:
                self._error(
                    409,
                    f"no trace recorded for {job_id!r} yet (job not "
                    "finished, or tracing disabled)",
                )
                return
            self._reply(200, payload)

        # -- analytics ---------------------------------------------------
        def _need_analytics(self) -> bool:
            """409 unless the service was started with an analytics DB."""
            if service.analytics is None:
                self._error(
                    409,
                    "analytics disabled: start the service with "
                    "--analytics-db to enable run persistence and streams",
                )
                return False
            return True

        def _analytics_runs(self, params: dict) -> None:
            if not self._need_analytics():
                return
            scenario = params.get("scenario", [None])[0]
            try:
                limit = int(params.get("limit", [0])[0]) or None
            except ValueError:
                self._error(400, '"limit" must be an integer')
                return
            runs = service.analytics.runs(scenario=scenario, limit=limit)
            self._reply(
                200,
                {
                    "runs": runs,
                    "scenarios": service.analytics.scenarios(),
                },
            )

        def _analytics_diagram(self, params: dict) -> None:
            if not self._need_analytics():
                return
            scenario = params.get("scenario", [None])[0]
            points = service.analytics.fundamental_diagram(scenario=scenario)
            self._reply(200, {"scenario": scenario, "points": points})

        # -- live metric stream (SSE over chunked transfer) --------------
        def _chunk(self, data: bytes) -> None:
            self.wfile.write(b"%X\r\n" % len(data) + data + b"\r\n")
            self.wfile.flush()

        def _sse_event(self, event: str, payload: dict) -> None:
            blob = json.dumps(payload)
            self._chunk(f"event: {event}\ndata: {blob}\n\n".encode("utf-8"))

        def _stream_job(self, job_id: str) -> None:
            """``GET /jobs/<id>/stream``: follow a job's per-step metrics.

            Server-Sent Events over chunked transfer: one
            ``event: metrics`` frame per new store row (in step order),
            closed by a single ``event: done`` frame carrying the job's
            terminal state. The tail is never lost: the loop snapshots
            the job's terminal-ness *before* fetching rows, so rows that
            land between a fetch and the terminal transition are picked
            up by one more fetch.
            """
            try:
                service.job(job_id)
            except ServiceError as exc:
                self._error(404, str(exc))
                return
            if not self._need_analytics():
                return
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            last_step = -1
            try:
                while True:
                    # Order matters: read terminal-ness, THEN fetch rows.
                    job = service.job(job_id)
                    final = job.finished
                    store = service.analytics
                    if store is None:  # service closed mid-stream
                        break
                    for row in store.metrics(job_id, after_step=last_step):
                        last_step = row["step"]
                        self._sse_event("metrics", row)
                    if final:
                        self._sse_event(
                            "done",
                            {
                                "job_id": job_id,
                                "state": job.state.value,
                                "steps_streamed": last_step + 1,
                                "cache_hit": job.cache_hit,
                            },
                        )
                        break
                    time.sleep(_STREAM_POLL_S)
                self._chunk(b"")  # terminal zero-length chunk
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away mid-stream; nothing to clean up
            self.close_connection = True

    return Handler


class ServiceServer:
    """HTTP listener plus the micro-batching tick loop.

    ``port=0`` binds an ephemeral port (tests); read :attr:`port` for
    the bound value. :meth:`start` runs everything on daemon threads
    (in-process use); :meth:`serve_forever` blocks (the CLI path).
    """

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        tick_interval: float = 0.05,
    ) -> None:
        if tick_interval <= 0:
            raise ServiceError(
                f"tick_interval must be positive, got {tick_interval}"
            )
        self.service = service
        self.tick_interval = float(tick_interval)
        try:
            self._httpd = ThreadingHTTPServer(
                (host, int(port)), _make_handler(service)
            )
        except OSError as exc:
            # EADDRINUSE and friends become the clean CLI exit-2 path.
            raise ServiceError(
                f"cannot bind http://{host}:{port}: {exc}"
            ) from None
        self._httpd.daemon_threads = True
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    # ------------------------------------------------------------------
    def _tick_loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.service.tick()
            except Exception:  # keep serving; a broken batch is not fatal
                traceback.print_exc()
            # Fixed-interval micro-batching: the wait *is* the batching
            # window in which concurrent submissions accumulate.
            self._stop.wait(self.tick_interval)

    def _spawn(self, target) -> None:
        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        self._threads.append(thread)

    def start(self) -> None:
        """Serve and tick on background threads (non-blocking)."""
        self._spawn(self._tick_loop)
        self._spawn(self._httpd.serve_forever)

    def serve_forever(self) -> None:
        """Serve on the calling thread (ticks in the background)."""
        self._spawn(self._tick_loop)
        try:
            self._httpd.serve_forever()
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        """Stop the tick loop, close the listener and the worker pool
        (idempotent)."""
        if self._stop.is_set():
            return
        self._stop.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=5.0)
        # The server owns the service's lifecycle on the CLI path, so a
        # stopped server also releases the service's worker processes.
        self.service.close()
