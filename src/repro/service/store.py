"""JSONL-backed job store: submit/update events, replayed on restart.

The store is an append-only event log — one JSON object per line —
because a serving process can die at any point and the queue must
survive it:

* ``{"event": "submit", "job": {...}}`` — a new job entered the queue
  (the job dict carries the full config spec);
* ``{"event": "state", "job_id": ..., "state": ..., ...}`` — a
  lifecycle transition, with result/error payloads on completion.

Loading replays the log in order and keeps the *last* state per job.
Jobs the previous process left ``running`` were in flight when it died;
they are requeued (their submit event still holds the full spec, so
nothing is lost). A torn final line — the classic kill-mid-write
artifact — is ignored; every complete line before it replays normally.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from ..errors import ServiceError
from .jobs import Job, JobState, job_from_dict, job_to_dict

__all__ = ["JobStore"]


class JobStore:
    """Durable job registry over one JSONL file.

    The store is synchronous and single-writer: the owning service
    serialises access (it holds its lock across mutations), so the store
    itself needs no locking.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._next_seq = 1
        self.resumed_jobs = 0
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._replay()

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _replay(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    # A torn trailing line means the writer died mid-append;
                    # anything after it cannot exist, so stop replaying.
                    break
                self._apply(event, lineno)
        for job in self._jobs.values():
            if job.state is JobState.RUNNING:
                job.state = JobState.QUEUED
                self.resumed_jobs += 1

    def _apply(self, event: dict, lineno: int) -> None:
        kind = event.get("event")
        if kind == "submit":
            job = job_from_dict(event.get("job", {}))
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
            seq = _job_seq(job.job_id)
            if seq is not None:
                self._next_seq = max(self._next_seq, seq + 1)
        elif kind == "state":
            job = self._jobs.get(str(event.get("job_id")))
            if job is None:
                raise ServiceError(
                    f"{self.path}:{lineno}: state event for unknown job "
                    f"{event.get('job_id')!r}"
                )
            job.state = JobState(event.get("state", "queued"))
            job.result = event.get("result", job.result)
            job.error = event.get("error", job.error)
            job.cache_hit = bool(event.get("cache_hit", job.cache_hit))
            job.lanes = int(event.get("lanes", job.lanes))
            job.wall_seconds = float(event.get("wall_seconds", job.wall_seconds))
        else:
            raise ServiceError(
                f"{self.path}:{lineno}: unknown event kind {kind!r}"
            )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _append(self, *events: dict) -> None:
        # One write + one fsync per call: callers batching many events
        # (burst submission) pay the durability cost once, not per event.
        blob = "".join(json.dumps(e, sort_keys=True) + "\n" for e in events)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())

    def next_job_id(self) -> str:
        """The next submission handle ("job-000001", monotonic per store)."""
        job_id = f"job-{self._next_seq:06d}"
        self._next_seq += 1
        return job_id

    def submit(self, job: Job) -> None:
        """Register and persist a new queued job."""
        self.submit_all([job])

    def submit_all(self, jobs: List[Job]) -> None:
        """Register a burst of jobs with a single durable append."""
        for job in jobs:
            if job.job_id in self._jobs:
                raise ServiceError(f"duplicate job id {job.job_id!r}")
        for job in jobs:
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
        if jobs:
            self._append(
                *({"event": "submit", "job": job_to_dict(j)} for j in jobs)
            )

    def update(self, job: Job) -> None:
        """Persist a job's current lifecycle state (and payloads)."""
        self.update_all([job])

    def update_all(self, jobs: List[Job]) -> None:
        """Persist many jobs' states with a single durable append.

        The tick loop transitions whole micro-batches at once; batching
        the state events keeps that to one fsync per phase instead of a
        per-job fsync train under the service lock.
        """
        for job in jobs:
            if job.job_id not in self._jobs:
                raise ServiceError(f"update for unknown job {job.job_id!r}")
        if jobs:
            self._append(
                *(
                    {
                        "event": "state",
                        "job_id": job.job_id,
                        "state": job.state.value,
                        "result": job.result,
                        "error": job.error,
                        "cache_hit": job.cache_hit,
                        "lanes": job.lanes,
                        "wall_seconds": job.wall_seconds,
                    }
                    for job in jobs
                )
            )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every job, in submission order."""
        return [self._jobs[i] for i in self._order]

    def queued(self) -> List[Job]:
        """Jobs waiting to run, in submission order."""
        return [j for j in self.jobs() if j.state is JobState.QUEUED]

    def __len__(self) -> int:
        return len(self._jobs)


def _job_seq(job_id: str) -> Optional[int]:
    """Parse the numeric suffix of a "job-NNNNNN" handle (None if foreign)."""
    prefix, _, suffix = job_id.partition("-")
    if prefix == "job" and suffix.isdigit():
        return int(suffix)
    return None
