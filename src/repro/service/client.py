"""Thin stdlib HTTP client for the simulation service.

Used by ``repro submit`` / ``repro status`` and the service smoke tests;
every transport or protocol failure surfaces as
:class:`~repro.errors.ServiceError` (exit code 2 at the CLI).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ServiceError
from .http import DEFAULT_PORT

__all__ = [
    "submit_jobs",
    "get_job",
    "list_jobs",
    "get_stats",
    "wait_for_jobs",
    "iter_job_stream",
    "get_analytics_runs",
    "get_fundamental_diagram",
    "get_job_trace",
    "get_metrics_text",
]


def _request(
    method: str,
    host: str,
    port: int,
    path: str,
    payload: Optional[dict] = None,
    timeout: float = 10.0,
) -> dict:
    url = f"http://{host}:{port}{path}"
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            detail = json.loads(exc.read().decode("utf-8")).get("error", "")
        except Exception:
            detail = ""
        raise ServiceError(
            f"{method} {url} failed: HTTP {exc.code}"
            + (f" ({detail})" if detail else "")
        ) from None
    except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
        raise ServiceError(f"{method} {url} failed: {exc}") from None


def submit_jobs(
    specs: Sequence[dict],
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    timeout: float = 10.0,
) -> List[dict]:
    """Submit job specs (``{"config": {...}, "engine": ...}``) in one burst."""
    out = _request(
        "POST", host, port, "/jobs", {"jobs": list(specs)}, timeout=timeout
    )
    return out.get("jobs", [])


def get_job(
    job_id: str,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    timeout: float = 10.0,
) -> dict:
    return _request("GET", host, port, f"/jobs/{job_id}", timeout=timeout)


def list_jobs(
    host: str = "127.0.0.1", port: int = DEFAULT_PORT, timeout: float = 10.0
) -> List[dict]:
    return _request("GET", host, port, "/jobs", timeout=timeout).get("jobs", [])


def get_stats(
    host: str = "127.0.0.1", port: int = DEFAULT_PORT, timeout: float = 10.0
) -> dict:
    return _request("GET", host, port, "/stats", timeout=timeout)


def get_job_trace(
    job_id: str,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    timeout: float = 10.0,
) -> dict:
    """``GET /jobs/<id>/trace`` — the job's span tree payload.

    409 (job exists, no trace yet) surfaces as :class:`ServiceError`
    like any other HTTP failure; callers that want to poll should wait
    on the job first (:func:`wait_for_jobs`).
    """
    return _request("GET", host, port, f"/jobs/{job_id}/trace", timeout=timeout)


def get_metrics_text(
    host: str = "127.0.0.1", port: int = DEFAULT_PORT, timeout: float = 10.0
) -> str:
    """``GET /metrics`` — raw Prometheus text exposition."""
    url = f"http://{host}:{port}/metrics"
    try:
        with urllib.request.urlopen(
            urllib.request.Request(url, method="GET"), timeout=timeout
        ) as resp:
            return resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        raise ServiceError(f"GET {url} failed: HTTP {exc.code}") from None
    except (urllib.error.URLError, OSError) as exc:
        raise ServiceError(f"GET {url} failed: {exc}") from None


def iter_job_stream(
    job_id: str,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    timeout: float = 120.0,
) -> Iterator[Tuple[str, dict]]:
    """Follow ``GET /jobs/<id>/stream``, yielding ``(event, payload)``.

    Yields one ``("metrics", row)`` per step record as the server ships
    it and finally one ``("done", summary)``, then returns. ``timeout``
    bounds the *idle gap between events*, not the whole stream — a
    healthy long run streams indefinitely. Server-side errors (unknown
    job, analytics disabled) raise :class:`ServiceError` up front.
    """
    url = f"http://{host}:{port}/jobs/{job_id}/stream"
    req = urllib.request.Request(url, method="GET")
    try:
        resp = urllib.request.urlopen(req, timeout=timeout)
    except urllib.error.HTTPError as exc:
        try:
            detail = json.loads(exc.read().decode("utf-8")).get("error", "")
        except Exception:
            detail = ""
        raise ServiceError(
            f"GET {url} failed: HTTP {exc.code}"
            + (f" ({detail})" if detail else "")
        ) from None
    except (urllib.error.URLError, OSError) as exc:
        raise ServiceError(f"GET {url} failed: {exc}") from None
    # urllib decodes the chunked transfer; what remains is SSE framing:
    # "event: <name>\ndata: <json>\n\n" per event.
    event: Optional[str] = None
    try:
        for raw in resp:
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith("event: "):
                event = line[len("event: ") :]
            elif line.startswith("data: ") and event is not None:
                try:
                    payload = json.loads(line[len("data: ") :])
                except json.JSONDecodeError as exc:
                    raise ServiceError(f"bad stream frame: {exc}") from None
                yield event, payload
                if event == "done":
                    return
                event = None
    except OSError as exc:
        raise ServiceError(f"stream from {url} broke: {exc}") from None
    finally:
        resp.close()


def get_analytics_runs(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    scenario: Optional[str] = None,
    limit: Optional[int] = None,
    timeout: float = 10.0,
) -> dict:
    """``GET /analytics/runs`` — ``{"runs": [...], "scenarios": [...]}``."""
    params = {}
    if scenario is not None:
        params["scenario"] = scenario
    if limit is not None:
        params["limit"] = str(limit)
    path = "/analytics/runs"
    if params:
        path += "?" + urllib.parse.urlencode(params)
    return _request("GET", host, port, path, timeout=timeout)


def get_fundamental_diagram(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    scenario: Optional[str] = None,
    timeout: float = 10.0,
) -> List[dict]:
    """``GET /analytics/fundamental-diagram`` — density/flow points."""
    path = "/analytics/fundamental-diagram"
    if scenario is not None:
        path += "?" + urllib.parse.urlencode({"scenario": scenario})
    return _request("GET", host, port, path, timeout=timeout).get("points", [])


def wait_for_jobs(
    job_ids: Sequence[str],
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    timeout: float = 120.0,
    poll_interval: float = 0.1,
) -> Dict[str, dict]:
    """Poll until every job id is done/failed; returns ``id → job dict``.

    Raises :class:`ServiceError` if the deadline passes with jobs still
    pending (listing which).
    """
    deadline = time.monotonic() + timeout
    finished: Dict[str, dict] = {}
    pending = list(job_ids)
    while pending:
        still: List[str] = []
        for job_id in pending:
            job = get_job(job_id, host=host, port=port)
            if job.get("state") in ("done", "failed"):
                finished[job_id] = job
            else:
                still.append(job_id)
        pending = still
        if pending:
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for "
                    f"{len(pending)} job(s): {', '.join(pending[:5])}"
                )
            time.sleep(poll_interval)
    return finished
