"""Thin stdlib HTTP client for the simulation service.

Used by ``repro submit`` / ``repro status`` and the service smoke tests;
every transport or protocol failure surfaces as
:class:`~repro.errors.ServiceError` (exit code 2 at the CLI).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence

from ..errors import ServiceError
from .http import DEFAULT_PORT

__all__ = [
    "submit_jobs",
    "get_job",
    "list_jobs",
    "get_stats",
    "wait_for_jobs",
]


def _request(
    method: str,
    host: str,
    port: int,
    path: str,
    payload: Optional[dict] = None,
    timeout: float = 10.0,
) -> dict:
    url = f"http://{host}:{port}{path}"
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            detail = json.loads(exc.read().decode("utf-8")).get("error", "")
        except Exception:
            detail = ""
        raise ServiceError(
            f"{method} {url} failed: HTTP {exc.code}"
            + (f" ({detail})" if detail else "")
        ) from None
    except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
        raise ServiceError(f"{method} {url} failed: {exc}") from None


def submit_jobs(
    specs: Sequence[dict],
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    timeout: float = 10.0,
) -> List[dict]:
    """Submit job specs (``{"config": {...}, "engine": ...}``) in one burst."""
    out = _request(
        "POST", host, port, "/jobs", {"jobs": list(specs)}, timeout=timeout
    )
    return out.get("jobs", [])


def get_job(
    job_id: str,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    timeout: float = 10.0,
) -> dict:
    return _request("GET", host, port, f"/jobs/{job_id}", timeout=timeout)


def list_jobs(
    host: str = "127.0.0.1", port: int = DEFAULT_PORT, timeout: float = 10.0
) -> List[dict]:
    return _request("GET", host, port, "/jobs", timeout=timeout).get("jobs", [])


def get_stats(
    host: str = "127.0.0.1", port: int = DEFAULT_PORT, timeout: float = 10.0
) -> dict:
    return _request("GET", host, port, "/stats", timeout=timeout)


def wait_for_jobs(
    job_ids: Sequence[str],
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    timeout: float = 120.0,
    poll_interval: float = 0.1,
) -> Dict[str, dict]:
    """Poll until every job id is done/failed; returns ``id → job dict``.

    Raises :class:`ServiceError` if the deadline passes with jobs still
    pending (listing which).
    """
    deadline = time.monotonic() + timeout
    finished: Dict[str, dict] = {}
    pending = list(job_ids)
    while pending:
        still: List[str] = []
        for job_id in pending:
            job = get_job(job_id, host=host, port=port)
            if job.get("state") in ("done", "failed"):
                finished[job_id] = job
            else:
                still.append(job_id)
        pending = still
        if pending:
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for "
                    f"{len(pending)} job(s): {', '.join(pending[:5])}"
                )
            time.sleep(poll_interval)
    return finished
