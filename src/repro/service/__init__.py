"""Simulation-as-a-service: job queue, micro-batching, result cache.

The serving layer turns the one-shot simulator into a long-running
system: requests stream in (in-process or over HTTP), a micro-batching
scheduler packs whatever is queued into the fewest batched engine
launches the compatibility rules allow (the same lane planner the sweep
runner uses offline, now packing *online*), and a content-addressed
cache answers repeats without re-simulating. State is durable: a JSONL
job log replays on restart, so a killed server resumes its queue.

Quickstart::

    from repro import SimulationConfig
    from repro.service import SimulationService

    svc = SimulationService("service-state/")
    jobs = [svc.submit(SimulationConfig(height=24, width=24, n_per_side=32,
                                        steps=60, seed=s)) for s in range(8)]
    svc.run_until_idle()        # one padded batched launch, not 8 runs
    print(svc.stats_dict())

Or over HTTP: ``repro serve`` / ``repro submit`` / ``repro status``.
"""

from .cache import ResultCache
from .client import (
    get_analytics_runs,
    get_fundamental_diagram,
    get_job,
    get_job_trace,
    get_metrics_text,
    get_stats,
    iter_job_stream,
    list_jobs,
    submit_jobs,
    wait_for_jobs,
)
from .http import DEFAULT_PORT, ROUTES, ServiceServer
from .jobs import Job, JobState, job_from_dict, job_to_dict
from .scheduler import BatchScheduler, ExecutionOutcome, SchedulerStats
from .service import ServiceStats, SimulationService
from .store import JobStore

__all__ = [
    "SimulationService",
    "ServiceStats",
    "BatchScheduler",
    "SchedulerStats",
    "ExecutionOutcome",
    "Job",
    "JobState",
    "job_to_dict",
    "job_from_dict",
    "JobStore",
    "ResultCache",
    "ServiceServer",
    "DEFAULT_PORT",
    "ROUTES",
    "submit_jobs",
    "get_job",
    "list_jobs",
    "get_stats",
    "wait_for_jobs",
    "iter_job_stream",
    "get_analytics_runs",
    "get_fundamental_diagram",
    "get_job_trace",
    "get_metrics_text",
]
