"""Job model: a submitted simulation request and its lifecycle.

A job is a :class:`~repro.config.SimulationConfig`-derived spec plus an
engine name, identified two ways:

* ``job_id`` — the submission handle ("job-000042"), unique per store;
* ``digest`` — the content address (:func:`repro.io.config_digest` of the
  resolved config), shared by every submission of the same simulation.
  The scheduler coalesces queued jobs with equal digests and the result
  cache serves repeats without re-execution.

States move ``queued → running → done | failed``; a restarted server
requeues jobs the previous process left ``running`` (the JSONL store
replays to the last recorded state).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Optional

from ..config import SimulationConfig
from ..errors import ServiceError
from ..io import config_digest
from ..obs import mint_trace_id

__all__ = ["JobState", "Job", "job_to_dict", "job_from_dict"]


class JobState(str, enum.Enum):
    """Lifecycle of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Job:
    """One submitted simulation request (mutable lifecycle record)."""

    job_id: str
    config: SimulationConfig = field(repr=False)
    engine: str
    #: Content address of the resolved config (cache / coalescing key).
    digest: str
    state: JobState = JobState.QUEUED
    #: Scheduling priority (higher first). The scheduler drains queues
    #: priority-first and the planner packs high-priority lanes before
    #: fill lanes; equal priorities keep submission order.
    priority: int = 0
    #: Optional urgency hint in seconds (client-relative): among equal
    #: priorities, jobs with sooner deadlines are drained first. Purely
    #: an ordering hint — jobs are never dropped for missing it.
    deadline_s: Optional[float] = None
    #: Serialised :class:`~repro.engine.base.RunResult` once done
    #: (:func:`repro.io.run_result_to_dict` format).
    result: Optional[dict] = field(repr=False, default=None)
    error: Optional[str] = None
    #: True when the result came from the cache (disk hit) or was
    #: coalesced onto another job's execution instead of running.
    cache_hit: bool = False
    #: Lanes in the launch that produced the result (1 = solo run,
    #: 0 = never executed here, e.g. a cache hit).
    lanes: int = 0
    #: Amortised wall seconds attributed to this job's lane.
    wall_seconds: float = 0.0
    #: Tracing identity, minted at submission; every span of this job's
    #: tree carries it (``GET /jobs/<id>/trace``, the analytics spans
    #: table). Empty for records from logs written before tracing.
    trace_id: str = ""
    #: Wall-clock submission stamp — the anchor for ``queue_wait``.
    submitted_unix: float = 0.0
    #: Seconds spent queued before the scheduler drained the job
    #: (set when it leaves the queue; 0 until then).
    queue_wait_s: float = 0.0
    #: True when the job had a ``deadline_s`` and was still queued past
    #: it. Reporting only — the job still runs (shedding is a separate
    #: roadmap item).
    deadline_missed: bool = False

    @classmethod
    def create(
        cls,
        job_id: str,
        config: SimulationConfig,
        engine: str = "vectorized",
        priority: int = 0,
        deadline_s: Optional[float] = None,
    ) -> "Job":
        """Build a queued job, deriving the content digest."""
        return cls(
            job_id=job_id,
            config=config,
            engine=str(engine),
            digest=config_digest(config),
            priority=int(priority),
            deadline_s=None if deadline_s is None else float(deadline_s),
            trace_id=mint_trace_id(),
            submitted_unix=time.time(),
        )

    @property
    def finished(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED)


def job_to_dict(job: Job, with_config: bool = True) -> dict:
    """JSON-ready dict for a job (HTTP payloads and the JSONL store)."""
    out = {
        "job_id": job.job_id,
        "engine": job.engine,
        "digest": job.digest,
        "state": job.state.value,
        "priority": job.priority,
        "deadline_s": job.deadline_s,
        "result": job.result,
        "error": job.error,
        "cache_hit": job.cache_hit,
        "lanes": job.lanes,
        "wall_seconds": job.wall_seconds,
        "trace_id": job.trace_id,
        "submitted_unix": job.submitted_unix,
        "queue_wait_s": job.queue_wait_s,
        "deadline_missed": job.deadline_missed,
        "scenario": job.config.scenario,
    }
    if with_config:
        out["config"] = job.config.to_dict()
    return out


def job_from_dict(data: dict) -> Job:
    """Rebuild a job from :func:`job_to_dict` output."""
    try:
        state = JobState(data.get("state", "queued"))
        deadline = data.get("deadline_s")
        return Job(
            job_id=str(data["job_id"]),
            config=SimulationConfig.from_dict(data["config"]),
            engine=str(data["engine"]),
            digest=str(data["digest"]),
            state=state,
            # Defaulted for logs written before priorities existed.
            priority=int(data.get("priority", 0)),
            deadline_s=None if deadline is None else float(deadline),
            result=data.get("result"),
            error=data.get("error"),
            cache_hit=bool(data.get("cache_hit", False)),
            lanes=int(data.get("lanes", 0)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            # Defaulted for logs written before tracing/deadline fields.
            trace_id=str(data.get("trace_id", "")),
            submitted_unix=float(data.get("submitted_unix", 0.0)),
            queue_wait_s=float(data.get("queue_wait_s", 0.0)),
            deadline_missed=bool(data.get("deadline_missed", False)),
        )
    except (KeyError, ValueError) as exc:
        raise ServiceError(f"malformed job record: {exc}") from None
