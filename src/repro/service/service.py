"""`SimulationService`: jobs in, batched launches out, answers remembered.

The in-process facade composing the serving subsystem::

    svc = SimulationService("state/")          # resumes a prior queue
    job = svc.submit(SimulationConfig(...))    # queued
    svc.run_until_idle()                       # micro-batched execution
    svc.job(job.job_id).result                 # RunResult wire dict

Each :meth:`tick` is one micro-batch: drain the queue priority-first,
answer what the content-addressed cache already knows, coalesce
duplicate digests onto one execution, pack the rest into batched
launches via the shared lane planner, persist everything as it happens.
With ``workers > 1`` the tick submits every planned launch to a
persistent :class:`repro.exec.ExecutorPool` at once and commits each
batch — job states, cache entries, durable log — as it completes, so
finished jobs become visible while siblings are still running. The HTTP
front end (:mod:`repro.service.http`) just calls :meth:`submit` and
:meth:`tick` from different threads; the internal lock makes that safe,
and the engine work itself runs outside the lock so submissions never
block on a running batch.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analytics import MetricStreamSpec, RunStore
from ..config import SimulationConfig
from ..errors import ServiceError
from ..exec import ExecutorPool
from ..io import run_result_to_dict
from ..obs import MetricsRegistry, SpanRecorder, span_dict
from .cache import ResultCache
from .jobs import Job, JobState, job_to_dict
from .scheduler import BatchScheduler, SchedulerStats
from .store import JobStore

__all__ = ["SimulationService", "ServiceStats"]


@dataclass
class ServiceStats:
    """Process-lifetime serving counters (reported by ``repro status``)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    #: Jobs answered from the on-disk result cache without any execution.
    cache_hits: int = 0
    #: Jobs coalesced onto an identical in-flight job within one tick.
    coalesced: int = 0
    #: Jobs requeued from the store at startup (previous process died).
    resumed: int = 0
    #: Jobs that were still queued past their ``deadline_s`` when the
    #: scheduler drained them (reported, never shed).
    deadline_missed: int = 0
    ticks: int = 0
    launches: SchedulerStats = field(default_factory=SchedulerStats)

    def to_dict(self) -> dict:
        out = {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "resumed": self.resumed,
            "deadline_missed": self.deadline_missed,
            "ticks": self.ticks,
        }
        out.update(self.launches.to_dict())
        return out


class SimulationService:
    """Long-running simulation-as-a-service over one state directory.

    Parameters
    ----------
    state_dir:
        Directory holding the JSONL job log (``jobs.jsonl``) and the
        content-addressed result cache (``cache/``). Created on demand;
        an existing log is replayed so a restarted service resumes its
        queue (jobs a dead process left running are requeued).
    max_lanes, pad_lanes, max_pad_waste, record_timeline:
        Forwarded to :class:`~repro.service.scheduler.BatchScheduler`.
        Padded packing defaults *on* for serving: independent requests
        rarely share a population, so padding is what makes continuous
        batching pay.
    workers:
        Engine worker processes. ``1`` (default) executes launches
        serially on the tick thread; larger values attach a persistent
        :class:`repro.exec.ExecutorPool` so independent launches of one
        tick run concurrently (results stay bit-identical — only
        latency changes). The pool spawns lazily on the first busy tick
        and is released by :meth:`close`.
    cache_entries, cache_bytes:
        Result-cache budgets forwarded to
        :class:`~repro.service.cache.ResultCache`; least-recently-used
        entries are evicted beyond either bound (``None`` = unbounded).
    analytics_db:
        Optional path to a SQLite analytics store
        (:class:`~repro.analytics.RunStore`). When set, every executed
        job becomes a persistent run record, launches stream per-step
        metrics into the store while they run (``GET /jobs/<id>/stream``
        reads them live), and the ``/analytics/*`` endpoints answer
        cross-run queries. ``None`` (default) disables all of it — no
        per-step overhead.
    executor:
        Optional *shared* :class:`repro.exec.ExecutorPool`. When given,
        the service dispatches its launches to the caller's pool instead
        of owning one — the same pool can simultaneously serve an
        in-process :class:`~repro.experiments.SweepRunner` — and
        :meth:`close` leaves it running (the caller owns its lifecycle).
        Mutually exclusive with ``workers > 1``.
    trace:
        Tracing on/off (default *on*). Every job gets a span tree —
        ``queue_wait → plan → dispatch → warm_backend → engine.run →
        to_host → commit`` — served on ``GET /jobs/<id>/trace``,
        persisted to the analytics spans table when analytics is
        enabled, and fed into the latency histograms behind
        ``GET /metrics`` and the ``latency`` section of ``/stats``.
        Tracing reads clocks only; results are bit-identical either way.
    trace_history:
        In-memory trace retention (most recent N jobs); older traces
        stay reachable through the analytics store when configured.
    """

    def __init__(
        self,
        state_dir: str,
        max_lanes: int = 8,
        pad_lanes: bool = True,
        max_pad_waste: Optional[float] = None,
        record_timeline: bool = False,
        workers: int = 1,
        cache_entries: Optional[int] = None,
        cache_bytes: Optional[int] = None,
        analytics_db: Optional[str] = None,
        executor: Optional[ExecutorPool] = None,
        trace: bool = True,
        trace_history: int = 1024,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if executor is not None and workers > 1:
            raise ServiceError(
                "pass either workers > 1 (service-owned pool) or a shared "
                "executor, not both"
            )
        self.state_dir = str(state_dir)
        self.workers = int(workers)
        self._owns_pool = executor is None
        self._pool: Optional[ExecutorPool] = (
            executor
            if executor is not None
            else (ExecutorPool(self.workers) if self.workers > 1 else None)
        )
        self.analytics: Optional[RunStore] = (
            RunStore(analytics_db) if analytics_db else None
        )
        self.trace = bool(trace)
        self.scheduler = BatchScheduler(
            max_lanes=max_lanes,
            pad_lanes=pad_lanes,
            max_pad_waste=max_pad_waste,
            record_timeline=record_timeline,
            executor=self._pool,
            # `is not None`, not truthiness: RunStore.__len__ makes an
            # empty (brand-new) store falsy, which must not disable
            # metric streaming.
            metrics_for=(
                self._metrics_spec if self.analytics is not None else None
            ),
            trace=self.trace,
        )
        self.registry = MetricsRegistry()
        self.recorder = SpanRecorder(self.registry)
        #: job_id -> trace payload, most recent ``trace_history`` jobs.
        self._traces: "OrderedDict[str, dict]" = OrderedDict()
        self._trace_history = max(1, int(trace_history))
        self.store = JobStore(os.path.join(self.state_dir, "jobs.jsonl"))
        self.cache = ResultCache(
            os.path.join(self.state_dir, "cache"),
            max_entries=cache_entries,
            max_bytes=cache_bytes,
        )
        self.stats = ServiceStats(resumed=self.store.resumed_jobs)
        #: Guards store/cache/stats mutation; engine work runs outside it.
        self._lock = threading.RLock()
        #: Serialises ticks (the drain→execute→commit cycle is one batch).
        self._tick_lock = threading.Lock()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool (if owned) and the analytics store
        (idempotent).

        Queued jobs stay durable in the store; a new service over the
        same state directory resumes them. A *shared* executor passed in
        at construction is detached but left running — its owner closes
        it.
        """
        pool, self._pool = self._pool, None
        self.scheduler.executor = None
        if pool is not None and self._owns_pool:
            pool.close()
        analytics, self.analytics = self.analytics, None
        if analytics is not None:
            analytics.close()

    # ------------------------------------------------------------------
    def _metrics_spec(self, lane_jobs) -> MetricStreamSpec:
        """The per-launch metric stream: one run per lane, keyed by job id.

        Bound as the scheduler's ``metrics_for`` hook only when
        analytics is enabled; reads ``self.analytics.path`` (not the
        store object) because the spec must pickle into pool workers.
        """
        return MetricStreamSpec(
            db_path=self.analytics.path,
            run_ids=tuple(j.job_id for j in lane_jobs),
        )

    # ------------------------------------------------------------------
    # Submission / inspection
    # ------------------------------------------------------------------
    def submit(
        self,
        config: SimulationConfig,
        engine: str = "vectorized",
        priority: int = 0,
        deadline_s: Optional[float] = None,
    ) -> Job:
        """Queue one simulation request; returns its job handle."""
        with self._lock:
            job = Job.create(
                self.store.next_job_id(), config, engine, priority, deadline_s
            )
            self.store.submit(job)
            self.stats.submitted += 1
            return job

    def submit_many(
        self, specs: List[tuple]
    ) -> List[Job]:
        """Queue ``(config, engine[, priority[, deadline_s]])`` tuples
        atomically (one burst).

        Holding the lock across the whole burst guarantees a concurrent
        tick sees either none or all of it — which is what lets a client
        burst land in a single micro-batch. The store persists the burst
        as one append (one fsync), so a large burst does not stall
        status reads behind a per-job fsync train.
        """
        with self._lock:
            jobs = [
                Job.create(self.store.next_job_id(), cfg, engine, *rest)
                for cfg, engine, *rest in specs
            ]
            self.store.submit_all(jobs)
            self.stats.submitted += len(jobs)
            return jobs

    def job(self, job_id: str) -> Job:
        """The job for ``job_id`` (raises :class:`ServiceError` if unknown)."""
        with self._lock:
            job = self.store.get(job_id)
            if job is None:
                raise ServiceError(f"unknown job id {job_id!r}")
            return job

    def jobs(self) -> List[Job]:
        with self._lock:
            return self.store.jobs()

    # -- lock-held dict snapshots (what the HTTP handlers serve) --------
    # Jobs are mutable and the tick loop updates them under the lock, so
    # serialising outside it could observe a half-committed transition;
    # these helpers snapshot while holding the lock.
    def submit_specs(self, specs: List[tuple]) -> List[dict]:
        with self._lock:
            return [job_to_dict(j) for j in self.submit_many(specs)]

    def job_payload(self, job_id: str) -> dict:
        with self._lock:
            return job_to_dict(self.job(job_id))

    def jobs_payload(self) -> List[dict]:
        with self._lock:
            return [job_to_dict(j, with_config=False) for j in self.jobs()]

    def stats_dict(self) -> dict:
        with self._lock:
            out = self.stats.to_dict()
            states: Dict[str, int] = {}
            for job in self.store.jobs():
                states[job.state.value] = states.get(job.state.value, 0) + 1
            out["jobs"] = states
            out["queued"] = states.get("queued", 0)
            out["workers"] = self.workers
            out["cache_entries"] = len(self.cache)
            out["cache_bytes"] = self.cache.total_bytes
            out["cache_evictions"] = self.cache.evictions
            out["trace"] = self.trace
            out["latency"] = self.recorder.summary()
            pool = self._pool
            if pool is not None:
                # Pool-wide transport counters plus this service's
                # owner-scoped slice — on a shared executor the two
                # differ, and the slice is what this service moved.
                transport = pool.transport_stats()
                transport["owner"] = pool.transport_stats(
                    owner=self.scheduler.owner
                )
                out["transport"] = transport
            else:
                out["transport"] = None
            if self.analytics is not None:
                out["analytics_db"] = self.analytics.path
                out.update(self.analytics.counts())
            else:
                out["analytics_db"] = None
            return out

    # ------------------------------------------------------------------
    # Micro-batching
    # ------------------------------------------------------------------
    @staticmethod
    def _drain_order(queued: List[Job]) -> List[Job]:
        """Queue drain order: priority desc, sooner deadlines, then FIFO.

        The sort is stable over the store's submission order, so equal
        urgency keeps first-come-first-served; the planner preserves
        this order, which is how high-priority lanes anchor batches and
        high-priority launches execute (or dispatch to the pool) first.
        """
        inf = float("inf")
        return sorted(
            queued,
            key=lambda j: (
                -j.priority,
                inf if j.deadline_s is None else j.deadline_s,
            ),
        )

    def tick(self) -> int:
        """Run one micro-batch over the currently queued jobs.

        Returns the number of jobs that reached a terminal state. Safe to
        call concurrently with :meth:`submit`; concurrent ticks serialise.
        Each launch commits as it completes — with a worker pool attached,
        jobs from a fast batch turn DONE (durably) while slower sibling
        batches are still executing.
        """
        with self._tick_lock:
            with self._lock:
                queued = self.store.queued()
                if not queued:
                    return 0
                reps: List[Job] = []
                followers: Dict[str, List[Job]] = {}
                # Coalescing keys on (digest, engine), not digest alone:
                # sharing a *success* across engines is sound (bit
                # identity) and the disk cache does it, but a failure is
                # engine-specific (e.g. the tiled engine rejecting a
                # grid), so a job must never inherit a failure from a
                # rep that ran a different engine.
                by_key: Dict[tuple, Job] = {}
                dirty: List[Job] = []
                done = 0
                drained_at = time.time()
                for job in self._drain_order(queued):
                    # Deadline visibility: stamp the queue wait the moment
                    # the job leaves the queue; a deadline it already blew
                    # is reported (wire form + /stats), never enforced.
                    if job.submitted_unix:
                        job.queue_wait_s = max(
                            0.0, drained_at - job.submitted_unix
                        )
                    if (
                        job.deadline_s is not None
                        and job.queue_wait_s > job.deadline_s
                        and not job.deadline_missed
                    ):
                        job.deadline_missed = True
                        self.stats.deadline_missed += 1
                    cached = self.cache.get(job.digest)
                    if cached is not None:
                        hit_t0 = time.perf_counter()
                        self._finish_from_payload(job, cached, disk_hit=True)
                        self._record_trace(
                            job,
                            (),
                            commit_started=drained_at,
                            commit_duration=time.perf_counter() - hit_t0,
                            cache_hit=True,
                        )
                        dirty.append(job)
                        done += 1
                        continue
                    job.state = JobState.RUNNING
                    dirty.append(job)
                    rep = by_key.get((job.digest, job.engine))
                    if rep is None:
                        by_key[(job.digest, job.engine)] = job
                        reps.append(job)
                    else:
                        followers.setdefault(rep.job_id, []).append(job)
                self.store.update_all(dirty)
                self.stats.ticks += 1

            # Register analytics runs before the first step executes, so
            # `/jobs/<id>/stream` and `/analytics/runs` can see a job the
            # moment it starts producing metrics. Outside the service
            # lock — the run store has its own.
            if self.analytics is not None and reps:
                self.analytics.begin_runs(
                    [(j.job_id, j.config, j.engine, j.digest) for j in reps]
                )

            # Engine work happens outside the lock: submissions (and
            # status reads) stay responsive while a batch executes. The
            # scheduler yields launches as they finish; each one commits
            # under the lock while the rest keep running.
            launch_stats = SchedulerStats()
            if reps:
                for batch, outcomes in self.scheduler.execute_iter(
                    reps, launch_stats
                ):
                    with self._lock:
                        done += self._commit_batch(
                            [reps[i] for i in batch.indices],
                            outcomes,
                            followers,
                        )

            with self._lock:
                self.stats.launches.merge(launch_stats)
                return done

    def _commit_batch(
        self,
        jobs: List[Job],
        outcomes,
        followers: Dict[str, List[Job]],
    ) -> int:
        """Finalise one completed launch (caller holds the lock).

        Returns the number of jobs (reps + coalesced followers) that
        reached a terminal state. One durable append per launch; the
        cache writes land first, so a crash mid-commit just means these
        jobs replay as queued and hit the cache next time.
        """
        dirty: List[Job] = []
        done = 0
        commit_started = time.time()
        commit_t0 = time.perf_counter()
        traced: List[Tuple[Job, Tuple[dict, ...], dict]] = []
        for job, outcome in zip(jobs, outcomes):
            if outcome.error is not None:
                self._fail(job, outcome.error)
                if self.analytics is not None:
                    self.analytics.finish_run(job.job_id, "failed")
                dirty.append(job)
                done += 1
                traced.append((job, tuple(outcome.spans), {}))
                for follower in followers.get(job.job_id, ()):
                    self._fail(follower, outcome.error, coalesced=True)
                    dirty.append(follower)
                    done += 1
                    traced.append((follower, (), {"coalesced": True}))
                continue
            payload = {
                "digest": job.digest,
                "config": job.config.to_dict(),
                "engine": job.engine,
                "result": run_result_to_dict(outcome.result),
                "lanes": outcome.lanes,
                "wall_seconds": outcome.wall_seconds,
            }
            self.cache.put(job.digest, payload)
            # Result fields land before the state flips to DONE, so even
            # a reader that skipped the lock could never see a "done"
            # job without its result.
            job.result = payload["result"]
            job.lanes = outcome.lanes
            job.wall_seconds = outcome.wall_seconds
            job.state = JobState.DONE
            if self.analytics is not None:
                # Seals the run row (status, throughput, mean flow) the
                # /analytics queries aggregate; the per-step rows were
                # streamed in by the launch itself.
                self.analytics.finish_run(
                    job.job_id,
                    "done",
                    throughput_total=outcome.result.throughput_total,
                    wall_seconds=outcome.wall_seconds,
                )
            dirty.append(job)
            self.stats.completed += 1
            done += 1
            traced.append((job, tuple(outcome.spans), {"lanes": outcome.lanes}))
            for follower in followers.get(job.job_id, ()):
                self._finish_from_payload(follower, payload, disk_hit=False)
                dirty.append(follower)
                done += 1
                traced.append((follower, (), {"coalesced": True}))
        # Traces close once the commit work above is done, so the commit
        # span covers cache writes + state flips + run sealing; only the
        # durable append below falls outside it (≈ sub-ms of the total).
        commit_duration = time.perf_counter() - commit_t0
        for job, launch_spans, attrs in traced:
            self._record_trace(
                job,
                launch_spans,
                commit_started=commit_started,
                commit_duration=commit_duration,
                **attrs,
            )
        self.store.update_all(dirty)
        return done

    def run_until_idle(self, max_ticks: int = 10_000) -> int:
        """Tick until the queue drains; returns finished-job count."""
        total = 0
        for _ in range(max_ticks):
            finished = self.tick()
            total += finished
            with self._lock:
                if not self.store.queued():
                    return total
        raise ServiceError(
            f"queue failed to drain within {max_ticks} ticks"
        )  # pragma: no cover - defensive bound

    # ------------------------------------------------------------------
    def _finish_from_payload(
        self, job: Job, payload: dict, disk_hit: bool
    ) -> None:
        """Complete ``job`` from a cached/coalesced result payload.

        Mutates the job and counters only; the caller batches the
        durable store append for its whole tick phase.
        """
        job.result = payload.get("result")
        job.cache_hit = True
        job.lanes = 0
        job.wall_seconds = 0.0
        job.state = JobState.DONE
        self.stats.completed += 1
        if disk_hit:
            self.stats.cache_hits += 1
        else:
            self.stats.coalesced += 1

    def _fail(self, job: Job, error: str, coalesced: bool = False) -> None:
        """Mark ``job`` failed (caller persists, like `_finish_from_payload`)."""
        job.error = error
        job.cache_hit = coalesced
        job.state = JobState.FAILED
        self.stats.failed += 1

    # ------------------------------------------------------------------
    # Tracing + metrics surface
    # ------------------------------------------------------------------
    def _record_trace(
        self,
        job: Job,
        launch_spans: Tuple[dict, ...],
        commit_started: float,
        commit_duration: float,
        **attrs,
    ) -> None:
        """Assemble and record one finished job's span tree.

        Caller holds the service lock. The launch-level spans (shared by
        every lane of a batch) are copied and grafted under this job's
        own root — each job's trace reports the *full* launch phases, not
        an amortised share, because the job really did wait for them.
        """
        if not self.trace or not job.trace_id:
            return
        failed = job.state is JobState.FAILED
        end = commit_started + commit_duration
        start = job.submitted_unix or commit_started
        root = span_dict(
            "job",
            start_unix=start,
            duration_s=max(commit_duration, end - start),
            status="error" if failed else "ok",
            error=job.error if failed else None,
            job_id=job.job_id,
            engine=job.engine,
            **attrs,
        )
        root["trace_id"] = job.trace_id
        spans: List[dict] = [root]
        if job.submitted_unix:
            wait = span_dict(
                "queue_wait",
                start_unix=job.submitted_unix,
                duration_s=job.queue_wait_s,
                **(
                    {"deadline_missed": True} if job.deadline_missed else {}
                ),
            )
            wait["trace_id"] = job.trace_id
            wait["parent_id"] = root["span_id"]
            spans.append(wait)
        launch_ids = {
            s.get("span_id") for s in launch_spans if s.get("span_id")
        }
        for span in launch_spans:
            copy = dict(span)
            copy["attrs"] = dict(span.get("attrs") or {})
            copy["trace_id"] = job.trace_id
            if copy.get("parent_id") not in launch_ids:
                copy["parent_id"] = root["span_id"]
            spans.append(copy)
        commit = span_dict("commit", commit_started, commit_duration)
        commit["trace_id"] = job.trace_id
        commit["parent_id"] = root["span_id"]
        spans.append(commit)

        payload = {
            "job_id": job.job_id,
            "trace_id": job.trace_id,
            "state": job.state.value,
            "spans": spans,
        }
        self._traces[job.job_id] = payload
        self._traces.move_to_end(job.job_id)
        while len(self._traces) > self._trace_history:
            self._traces.popitem(last=False)
        self.recorder.observe_trace(spans)
        if self.analytics is not None:
            self.analytics.append_spans(job.job_id, spans)

    def trace_payload(self, job_id: str) -> Optional[dict]:
        """One job's span tree for ``GET /jobs/<id>/trace``.

        Raises :class:`ServiceError` for an unknown job; returns ``None``
        when the job exists but has no recorded trace yet (still queued /
        running, or tracing disabled). Evicted in-memory traces fall back
        to the analytics spans table when available.
        """
        with self._lock:
            job = self.job(job_id)
            entry = self._traces.get(job_id)
            if entry is not None:
                return {
                    "job_id": entry["job_id"],
                    "trace_id": entry["trace_id"],
                    "state": entry["state"],
                    "spans": [dict(s) for s in entry["spans"]],
                }
            state = job.state.value
            trace_id = job.trace_id
        if self.analytics is not None:
            spans = self.analytics.spans(job_id)
            if spans:
                return {
                    "job_id": job_id,
                    "trace_id": trace_id or spans[0].get("trace_id", ""),
                    "state": state,
                    "spans": spans,
                }
        return None

    def metrics_text(self) -> str:
        """Prometheus text exposition for ``GET /metrics``.

        Histograms accumulate as traces close; counter/gauge mirrors of
        the service, cache, pool, and analytics counters are synced at
        scrape time (cheap: a few dozen reads under the lock).
        """
        self._sync_metrics()
        return self.registry.render()

    def _sync_metrics(self) -> None:
        reg = self.registry
        with self._lock:
            stats = self.stats
            for name, value, help_text in (
                ("repro_jobs_submitted_total", stats.submitted, "Jobs accepted."),
                ("repro_jobs_completed_total", stats.completed, "Jobs finished successfully."),
                ("repro_jobs_failed_total", stats.failed, "Jobs that ended in failure."),
                ("repro_cache_hits_total", stats.cache_hits, "Jobs answered from the result cache."),
                ("repro_jobs_coalesced_total", stats.coalesced, "Jobs coalesced onto an identical execution."),
                ("repro_jobs_resumed_total", stats.resumed, "Jobs requeued at startup."),
                ("repro_deadline_missed_total", stats.deadline_missed, "Jobs drained after their deadline_s."),
                ("repro_ticks_total", stats.ticks, "Scheduler micro-batch ticks."),
                ("repro_engine_launches_total", stats.launches.engine_launches, "Engine launches (batched or solo)."),
                ("repro_failed_launches_total", stats.launches.failed_launches, "Launches that raised."),
                ("repro_cache_evictions_total", self.cache.evictions, "Result-cache LRU evictions."),
            ):
                reg.counter(name, help_text).set_total(value)
            states: Dict[str, int] = {}
            for job in self.store.jobs():
                states[job.state.value] = states.get(job.state.value, 0) + 1
            for state in ("queued", "running", "done", "failed"):
                reg.gauge(
                    "repro_jobs", "Jobs currently in each state.", state=state
                ).set(states.get(state, 0))
            reg.gauge("repro_queue_depth", "Queued jobs.").set(
                states.get("queued", 0)
            )
            reg.gauge("repro_workers", "Configured engine workers.").set(
                self.workers
            )
            reg.gauge("repro_cache_entries", "Result-cache entries.").set(
                len(self.cache)
            )
            reg.gauge("repro_cache_bytes", "Result-cache bytes.").set(
                self.cache.total_bytes
            )
            reg.gauge(
                "repro_peak_concurrent_launches",
                "High-water mark of this service's concurrent launches.",
            ).set(stats.launches.peak_concurrent_launches)
            pool = self._pool
            if pool is not None:
                reg.counter(
                    "repro_worker_respawns_total",
                    "Pool workers respawned after dying mid-task.",
                ).set_total(pool.respawns)
                reg.gauge(
                    "repro_pool_peak_busy",
                    "Pool-lifetime peak of busy workers (all owners).",
                ).set(pool.peak_busy)
                transport = pool.transport_stats()
                for name, key, help_text in (
                    ("repro_shm_results_total", "shm_results",
                     "Results shipped zero-copy through shared memory."),
                    ("repro_inline_results_total", "inline_results",
                     "Results shipped through the legacy in-band pickle."),
                    ("repro_shm_payload_bytes_total", "shm_payload_bytes",
                     "Array bytes moved via segments instead of the pipe."),
                    ("repro_shm_head_bytes_total", "shm_head_bytes",
                     "Pipe bytes actually carried for shm results."),
                    ("repro_shm_segment_reclaims_total", "segment_reclaims",
                     "Segments reclaimed (crashed worker or parent unlink)."),
                    ("repro_shm_spills_total", "oversize_spills",
                     "Large results that spilled to the in-band path."),
                ):
                    reg.counter(name, help_text).set_total(transport[key])
                reg.gauge(
                    "repro_shm_segments_in_flight",
                    "Shared-memory segments currently mapped by the pool.",
                ).set(transport["segments_in_flight"])
                reg.gauge(
                    "repro_shm_segments_created",
                    "Shared-memory segments ever created by pool workers.",
                ).set(transport["segments_created"])
        if self.analytics is not None:
            reg.counter(
                "repro_dispatch_ops_total",
                "Backend dispatches recorded by profiled runs.",
            ).set_total(self.analytics.dispatch_ops_total())
