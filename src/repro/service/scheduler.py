"""Micro-batching scheduler: pack queued jobs into batched launches.

Whatever jobs are queued when a service tick fires are handed to
:func:`repro.planner.plan_lanes` — the same packer the sweep runner uses
offline — and executed with the fewest engine launches the compatibility
rules allow:

* jobs whose configs differ only in their seed stack into same-shape
  :func:`~repro.engine.run_batched` lanes;
* with ``pad_lanes`` (the serving default), jobs that agree on what the
  batched engine requires lanes to share — movement-model parameters,
  step budget, array backend, engine — fuse into *padded* heterogeneous
  batches under the cost-model waste ceiling, populations and grid
  shapes padded to the largest lane;
* everything else (sequential/tiled engines, waste-bound overflow) falls
  back to solo :func:`~repro.engine.run_simulation` calls.

Every lane is bit-identical to a solo run of its config (the batched
engine's core guarantee), so serving from a batch is invisible to the
requester except in latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..engine import run_batched, run_simulation
from ..engine.base import RunResult
from ..errors import ReproError
from ..planner import (
    LaneRequest,
    PlannedBatch,
    plan_lanes,
    validate_plan_parameters,
)

__all__ = ["BatchScheduler", "SchedulerStats", "ExecutionOutcome"]


@dataclass
class SchedulerStats:
    """Launch accounting for one or more scheduler passes.

    ``engine_launches`` counts actual engine invocations (batched or
    solo); a burst of N compatible jobs served in fewer than N launches
    is the whole point of the scheduler, and ``multi_lane_batches``
    proves it happened.
    """

    engine_launches: int = 0
    #: Launches that fused more than one job.
    multi_lane_batches: int = 0
    #: Multi-lane launches whose lanes spanned different configs (padded).
    padded_batches: int = 0
    lanes_executed: int = 0
    solo_runs: int = 0
    largest_batch: int = 0
    failed_launches: int = 0

    def merge(self, other: "SchedulerStats") -> None:
        self.engine_launches += other.engine_launches
        self.multi_lane_batches += other.multi_lane_batches
        self.padded_batches += other.padded_batches
        self.lanes_executed += other.lanes_executed
        self.solo_runs += other.solo_runs
        self.largest_batch = max(self.largest_batch, other.largest_batch)
        self.failed_launches += other.failed_launches

    def to_dict(self) -> dict:
        return {
            "engine_launches": self.engine_launches,
            "multi_lane_batches": self.multi_lane_batches,
            "padded_batches": self.padded_batches,
            "lanes_executed": self.lanes_executed,
            "solo_runs": self.solo_runs,
            "largest_batch": self.largest_batch,
            "failed_launches": self.failed_launches,
        }


@dataclass
class ExecutionOutcome:
    """What happened to one job in a scheduler pass."""

    result: Optional[RunResult] = None
    error: Optional[str] = None
    #: Lanes in the launch that carried this job (1 = solo).
    lanes: int = 1
    #: Amortised wall seconds attributed to this job's lane.
    wall_seconds: float = 0.0


class BatchScheduler:
    """Plan and execute a drained queue of jobs in batched launches."""

    def __init__(
        self,
        max_lanes: int = 8,
        pad_lanes: bool = True,
        max_pad_waste: Optional[float] = None,
        record_timeline: bool = False,
    ) -> None:
        validate_plan_parameters(max_lanes, max_pad_waste)
        self.max_lanes = int(max_lanes)
        self.pad_lanes = bool(pad_lanes)
        self.max_pad_waste = None if max_pad_waste is None else float(max_pad_waste)
        self.record_timeline = bool(record_timeline)

    # ------------------------------------------------------------------
    def plan(self, jobs: Sequence) -> List[PlannedBatch]:
        """Plan a job list into launches (indices into ``jobs``)."""
        requests = []
        for i, job in enumerate(jobs):
            cfg = job.config
            requests.append(
                LaneRequest(
                    index=i,
                    seed=cfg.seed,
                    engine=job.engine,
                    # Same batch key <=> same launch geometry and model;
                    # the config is hashable, so the config-minus-seed
                    # itself is the key.
                    batch_key=(job.engine, cfg.replace(seed=0)),
                    # Pad-fusable <=> agreement on what BatchedEngine
                    # requires lanes to share (params, steps, backend) on
                    # the same engine.
                    pad_key=(job.engine, cfg.params, cfg.steps, cfg.backend),
                    agents=cfg.total_agents,
                    config=cfg,
                )
            )
        return plan_lanes(
            requests,
            max_lanes=self.max_lanes,
            pad_lanes=self.pad_lanes,
            max_pad_waste=self.max_pad_waste,
        )

    # ------------------------------------------------------------------
    def execute(self, jobs: Sequence) -> Tuple[List[ExecutionOutcome], SchedulerStats]:
        """Run every job; outcomes align with ``jobs`` by position.

        A launch that raises (engine/build errors) fails only its own
        lanes — the remaining launches still run.
        """
        outcomes: List[Optional[ExecutionOutcome]] = [None] * len(jobs)
        stats = SchedulerStats()
        for batch in self.plan(jobs):
            lane_jobs = [jobs[i] for i in batch.indices]
            n = len(lane_jobs)
            try:
                if batch.batched:
                    out = run_batched(
                        [j.config for j in lane_jobs],
                        [j.config.seed for j in lane_jobs],
                        record_timeline=self.record_timeline,
                    )
                    stats.engine_launches += 1
                    stats.multi_lane_batches += 1
                    stats.padded_batches += 1 if batch.mixed else 0
                    stats.lanes_executed += n
                    stats.largest_batch = max(stats.largest_batch, n)
                    per_lane_wall = out.wall_seconds_per_lane
                    for i, result in zip(batch.indices, out.results):
                        outcomes[i] = ExecutionOutcome(
                            result=result, lanes=n, wall_seconds=per_lane_wall
                        )
                else:
                    job = lane_jobs[0]
                    timed = run_simulation(
                        job.config,
                        engine=job.engine,
                        record_timeline=self.record_timeline,
                    )
                    stats.engine_launches += 1
                    stats.solo_runs += 1
                    stats.lanes_executed += 1
                    stats.largest_batch = max(stats.largest_batch, 1)
                    outcomes[batch.indices[0]] = ExecutionOutcome(
                        result=timed.result,
                        lanes=1,
                        wall_seconds=timed.wall_seconds,
                    )
            except Exception as exc:  # noqa: BLE001 - a launch must never
                # strand its jobs: anything an engine throws (ReproError,
                # numpy shape/memory errors, bugs) becomes a per-job
                # failure the service can report, not a lost tick.
                stats.failed_launches += 1
                for i in batch.indices:
                    outcomes[i] = ExecutionOutcome(error=str(exc), lanes=n)
        # plan_lanes covers every index exactly once, so no slot is None;
        # guard anyway so a planner regression surfaces loudly here.
        missing = [i for i, o in enumerate(outcomes) if o is None]
        if missing:
            raise ReproError(
                f"scheduler lost jobs at positions {missing}"
            )  # pragma: no cover - planner invariant
        return outcomes, stats
