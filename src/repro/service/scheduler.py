"""Micro-batching scheduler: pack queued jobs into batched launches.

Whatever jobs are queued when a service tick fires are handed to
:func:`repro.planner.plan_lanes` — the same packer the sweep runner uses
offline — and executed with the fewest engine launches the compatibility
rules allow:

* jobs whose configs differ only in their seed stack into same-shape
  :func:`~repro.engine.run_batched` lanes;
* with ``pad_lanes`` (the serving default), jobs that agree on what the
  batched engine requires lanes to share — movement-model parameters,
  step budget, array backend, engine — fuse into *padded* heterogeneous
  batches under the cost-model waste ceiling, populations and grid
  shapes padded to the largest lane;
* everything else (sequential/tiled engines, waste-bound overflow) falls
  back to solo :func:`~repro.engine.run_simulation` calls.

Execution goes through the shared :class:`repro.exec.LaunchWork` payload
either way. Serially (the default) launches run on the calling thread in
plan order — priority-first, because the service drains its queue in
priority order and the planner preserves it. With an
:class:`~repro.exec.ExecutorPool` attached, every launch of the tick is
submitted to the pool at once (priority, then heaviest-first by real
agent-steps) and completed batches surface *as they finish*, so a
multi-worker service resolves independent jobs concurrently instead of
strictly one launch at a time.

Every lane is bit-identical to a solo run of its config (the batched
engine's core guarantee) and a launch computes the same trajectories
wherever it runs, so serving from a batch, a pool worker, or both is
invisible to the requester except in latency.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..engine.base import RunResult
from ..errors import ReproError
from ..exec import ExecutorPool, LaunchWork, execute_launch, launch_cost
from ..obs import TraceSpec, mint_span_id, span_dict
from ..planner import (
    LaneRequest,
    PlannedBatch,
    plan_lanes,
    validate_plan_parameters,
)

__all__ = ["BatchScheduler", "SchedulerStats", "ExecutionOutcome"]


@dataclass
class SchedulerStats:
    """Launch accounting for one or more scheduler passes.

    ``engine_launches`` counts actual engine invocations (batched or
    solo); a burst of N compatible jobs served in fewer than N launches
    is the whole point of the scheduler, and ``multi_lane_batches``
    proves it happened. ``peak_concurrent_launches`` is the high-water
    mark of launches in flight at once — 1 on the serial path, up to
    ``workers`` when an executor pool is attached.
    """

    engine_launches: int = 0
    #: Launches that fused more than one job.
    multi_lane_batches: int = 0
    #: Multi-lane launches whose lanes spanned different configs (padded).
    padded_batches: int = 0
    lanes_executed: int = 0
    solo_runs: int = 0
    largest_batch: int = 0
    failed_launches: int = 0
    peak_concurrent_launches: int = 0

    def merge(self, other: "SchedulerStats") -> None:
        self.engine_launches += other.engine_launches
        self.multi_lane_batches += other.multi_lane_batches
        self.padded_batches += other.padded_batches
        self.lanes_executed += other.lanes_executed
        self.solo_runs += other.solo_runs
        self.largest_batch = max(self.largest_batch, other.largest_batch)
        self.failed_launches += other.failed_launches
        self.peak_concurrent_launches = max(
            self.peak_concurrent_launches, other.peak_concurrent_launches
        )

    def to_dict(self) -> dict:
        return {
            "engine_launches": self.engine_launches,
            "multi_lane_batches": self.multi_lane_batches,
            "padded_batches": self.padded_batches,
            "lanes_executed": self.lanes_executed,
            "solo_runs": self.solo_runs,
            "largest_batch": self.largest_batch,
            "failed_launches": self.failed_launches,
            "peak_concurrent_launches": self.peak_concurrent_launches,
        }


@dataclass
class ExecutionOutcome:
    """What happened to one job in a scheduler pass."""

    result: Optional[RunResult] = None
    error: Optional[str] = None
    #: Lanes in the launch that carried this job (1 = solo).
    lanes: int = 1
    #: Amortised wall seconds attributed to this job's lane.
    wall_seconds: float = 0.0
    #: Launch-level span tree (wire dicts): the tick's ``plan`` span plus
    #: whatever the executing side recorded. Shared by every lane of the
    #: launch — the committing side copies before rewriting ids.
    spans: Tuple[dict, ...] = ()


class BatchScheduler:
    """Plan and execute a drained queue of jobs in batched launches.

    Parameters
    ----------
    max_lanes, pad_lanes, max_pad_waste, record_timeline:
        Packing knobs, shared with the sweep runner via the planner.
    executor:
        Optional :class:`repro.exec.ExecutorPool`. When set, each pass
        submits all its launches to the pool concurrently and yields
        batches as they complete; when ``None``, launches run serially
        on the calling thread. Results are bit-identical either way.
        The scheduler does not own the pool — the service (or other
        caller) that created it closes it.
    metrics_for:
        Optional callable mapping one launch's lane jobs to a
        :class:`~repro.analytics.MetricStreamSpec` (or ``None``). When
        set, each :class:`~repro.exec.LaunchWork` carries the returned
        spec, so launches stream per-step metrics into the analytics
        store as they execute. The service supplies this when started
        with an analytics database.
    trace:
        When true (the serving default), every launch carries a
        :class:`~repro.obs.TraceSpec` stamped at submit-to-executor time
        and each :class:`ExecutionOutcome` returns the launch's span
        tree (plus the tick's ``plan`` span) for the service to graft
        onto its jobs' traces.
    """

    def __init__(
        self,
        max_lanes: int = 8,
        pad_lanes: bool = True,
        max_pad_waste: Optional[float] = None,
        record_timeline: bool = False,
        executor: Optional[ExecutorPool] = None,
        metrics_for: Optional[Callable[[Sequence], Optional[object]]] = None,
        trace: bool = False,
    ) -> None:
        validate_plan_parameters(max_lanes, max_pad_waste)
        self.max_lanes = int(max_lanes)
        self.pad_lanes = bool(pad_lanes)
        self.max_pad_waste = None if max_pad_waste is None else float(max_pad_waste)
        self.record_timeline = bool(record_timeline)
        self.executor = executor
        self.metrics_for = metrics_for
        self.trace = bool(trace)
        #: Concurrency-accounting tag on a (possibly borrowed) pool: this
        #: scheduler's ``peak_concurrent_launches`` must count only its
        #: own overlap, not other owners sharing the executor.
        self._owner = f"sched-{mint_span_id()}"

    @property
    def owner(self) -> str:
        """The accounting tag this scheduler stamps on pool submissions.

        Pool-side per-owner counters (:meth:`repro.exec.ExecutorPool.
        peak_busy_for`, :meth:`~repro.exec.ExecutorPool.transport_stats`)
        are keyed by it — how a service reads *its own* slice of a
        shared pool's accounting.
        """
        return self._owner

    # ------------------------------------------------------------------
    def plan(self, jobs: Sequence) -> List[PlannedBatch]:
        """Plan a job list into launches (indices into ``jobs``)."""
        requests = []
        for i, job in enumerate(jobs):
            cfg = job.config
            requests.append(
                LaneRequest(
                    index=i,
                    seed=cfg.seed,
                    engine=job.engine,
                    # Same batch key <=> same launch geometry and model;
                    # the config is hashable, so the config-minus-seed
                    # itself is the key.
                    batch_key=(job.engine, cfg.replace(seed=0)),
                    # Pad-fusable <=> agreement on what BatchedEngine
                    # requires lanes to share (params, steps, backend) on
                    # the same engine.
                    pad_key=(job.engine, cfg.params, cfg.steps, cfg.backend),
                    agents=cfg.total_agents,
                    config=cfg,
                    priority=getattr(job, "priority", 0),
                )
            )
        return plan_lanes(
            requests,
            max_lanes=self.max_lanes,
            pad_lanes=self.pad_lanes,
            max_pad_waste=self.max_pad_waste,
        )

    # ------------------------------------------------------------------
    def _work_for(self, batch: PlannedBatch, lane_jobs: Sequence) -> LaunchWork:
        """Lower one planned batch to the shared launch payload."""
        return LaunchWork(
            configs=tuple(j.config for j in lane_jobs),
            engine=lane_jobs[0].engine,
            # Service batches always ship per-lane config lists (the
            # coalescing pass guarantees distinct digests, so lanes are
            # heterogeneous-or-seed-distinct either way).
            batched=batch.batched,
            mixed=batch.batched,
            record_timeline=self.record_timeline,
            metrics=self.metrics_for(lane_jobs) if self.metrics_for else None,
            trace=TraceSpec(dispatched_unix=time.time()) if self.trace else None,
        )

    def _score(self, batch: PlannedBatch, stats: SchedulerStats) -> None:
        n = batch.n_lanes
        stats.engine_launches += 1
        stats.lanes_executed += n
        stats.largest_batch = max(stats.largest_batch, n)
        if batch.batched:
            stats.multi_lane_batches += 1
            stats.padded_batches += 1 if batch.mixed else 0
        else:
            stats.solo_runs += 1

    def _resolve(
        self,
        batch: PlannedBatch,
        outcome,
        extra_spans: Tuple[dict, ...] = (),
    ) -> List[ExecutionOutcome]:
        n = batch.n_lanes
        spans = extra_spans + tuple(getattr(outcome, "spans", ()))
        return [
            ExecutionOutcome(
                result=result, lanes=n, wall_seconds=wall, spans=spans
            )
            for result, wall in zip(outcome.results, outcome.wall_seconds)
        ]

    def _fail(
        self,
        batch: PlannedBatch,
        exc: BaseException,
        work: Optional[LaunchWork] = None,
        extra_spans: Tuple[dict, ...] = (),
    ) -> List[ExecutionOutcome]:
        spans = extra_spans
        if self.trace:
            # The launch never reported back (crashed worker, engine
            # error): stand in for its torn spans with one error span
            # covering dispatch → failure detection.
            started = (
                work.trace.dispatched_unix
                if work is not None and work.trace is not None
                else time.time()
            )
            spans = extra_spans + (
                span_dict(
                    "engine.run",
                    start_unix=started,
                    duration_s=time.time() - started,
                    status="error",
                    error=f"{type(exc).__name__}: {exc}",
                ),
            )
        return [
            ExecutionOutcome(error=str(exc), lanes=batch.n_lanes, spans=spans)
            for _ in batch.indices
        ]

    # ------------------------------------------------------------------
    def execute_iter(
        self, jobs: Sequence, stats: SchedulerStats
    ) -> Iterator[Tuple[PlannedBatch, List[ExecutionOutcome]]]:
        """Run every job, yielding ``(batch, outcomes)`` per launch.

        Outcomes align with ``batch.indices`` (positions in ``jobs``).
        ``stats`` is mutated as launches complete so a caller consuming
        incrementally always sees current counters. A launch that raises
        (engine/build errors, or a crashed pool worker) fails only its
        own lanes — the remaining launches still run.

        Serially, launches yield in plan order (priority-first). With an
        executor attached and more than one launch, all launches are
        submitted up front — priority first, then heaviest by real
        agent-steps — and yield in *completion* order, so the caller can
        resolve finished jobs while siblings are still running.
        """
        plan_started = time.time()
        plan_t0 = time.perf_counter()
        plan = self.plan(jobs)
        entries = []
        for batch in plan:
            lane_jobs = [jobs[i] for i in batch.indices]
            work = self._work_for(batch, lane_jobs)
            priority = max(getattr(j, "priority", 0) for j in lane_jobs)
            entries.append((batch, work, priority))
        # One plan span per tick, shared (by copy) across every launch:
        # planning + lowering happen once for the whole drained queue.
        extra: Tuple[dict, ...] = ()
        if self.trace:
            extra = (
                span_dict(
                    "plan",
                    start_unix=plan_started,
                    duration_s=time.perf_counter() - plan_t0,
                    jobs=len(jobs),
                    launches=len(entries),
                ),
            )

        pool = self.executor
        if pool is not None and len(entries) > 1:
            order = sorted(
                range(len(entries)),
                key=lambda i: (-entries[i][2], -launch_cost(entries[i][1]), i),
            )
            futures = {}
            for i in order:
                batch, work, priority = entries[i]
                future = pool.submit(
                    execute_launch,
                    work,
                    cost=launch_cost(work),
                    priority=priority,
                    owner=self._owner,
                )
                futures[future] = (batch, work)
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    batch, work = futures[future]
                    exc = future.exception()
                    if exc is not None:
                        stats.failed_launches += 1
                        outcomes = self._fail(batch, exc, work, extra)
                    else:
                        self._score(batch, stats)
                        outcomes = self._resolve(batch, future.result(), extra)
                    stats.peak_concurrent_launches = max(
                        stats.peak_concurrent_launches,
                        pool.peak_busy_for(self._owner),
                    )
                    yield batch, outcomes
            return

        for batch, work, _ in entries:
            try:
                outcome = execute_launch(work)
            except Exception as exc:  # noqa: BLE001 - a launch must never
                # strand its jobs: anything an engine throws (ReproError,
                # numpy shape/memory errors, bugs) becomes a per-job
                # failure the service can report, not a lost tick.
                stats.failed_launches += 1
                yield batch, self._fail(batch, exc, work, extra)
                continue
            self._score(batch, stats)
            stats.peak_concurrent_launches = max(
                stats.peak_concurrent_launches, 1
            )
            yield batch, self._resolve(batch, outcome, extra)

    # ------------------------------------------------------------------
    def execute(self, jobs: Sequence) -> Tuple[List[ExecutionOutcome], SchedulerStats]:
        """Run every job; outcomes align with ``jobs`` by position."""
        outcomes: List[Optional[ExecutionOutcome]] = [None] * len(jobs)
        stats = SchedulerStats()
        for batch, batch_outcomes in self.execute_iter(jobs, stats):
            for i, outcome in zip(batch.indices, batch_outcomes):
                outcomes[i] = outcome
        # plan_lanes covers every index exactly once, so no slot is None;
        # guard anyway so a planner regression surfaces loudly here.
        missing = [i for i, o in enumerate(outcomes) if o is None]
        if missing:
            raise ReproError(
                f"scheduler lost jobs at positions {missing}"
            )  # pragma: no cover - planner invariant
        return outcomes, stats
