"""Kernel launch configurations: grids, blocks and warps.

Mirrors the paper's launch geometry: 16x16-thread blocks for the per-cell
kernels (one thread per environment cell, 256 threads = 100% occupancy on
CC 2.0) and 32x8-row blocks for the per-agent tour-construction kernel
(8 slot-threads per agent, 32 agent rows per block = 256 threads).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import LaunchConfigError
from .device import ComputeCapabilityLimits, DeviceSpec

__all__ = ["Dim3", "KernelLaunchConfig", "cell_kernel_launch", "agent_kernel_launch"]


@dataclass(frozen=True)
class Dim3:
    """CUDA dim3: x/y/z extents, all >= 1."""

    x: int
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        if min(self.x, self.y, self.z) < 1:
            raise LaunchConfigError(f"dim3 extents must be >= 1, got {self}")

    @property
    def count(self) -> int:
        """Total element count."""
        return self.x * self.y * self.z


@dataclass(frozen=True)
class KernelLaunchConfig:
    """A validated (grid, block) launch configuration."""

    grid: Dim3
    block: Dim3
    limits: ComputeCapabilityLimits

    def __post_init__(self) -> None:
        if self.block.count > self.limits.max_threads_per_block:
            raise LaunchConfigError(
                f"block of {self.block.count} threads exceeds the "
                f"{self.limits.max_threads_per_block}-thread limit of "
                f"CC {self.limits.compute_capability}"
            )

    @property
    def threads_per_block(self) -> int:
        """Threads in one block."""
        return self.block.count

    @property
    def total_blocks(self) -> int:
        """Blocks in the grid."""
        return self.grid.count

    @property
    def total_threads(self) -> int:
        """Threads across the whole launch."""
        return self.total_blocks * self.threads_per_block

    @property
    def warps_per_block(self) -> int:
        """Warps per block (rounded up to whole warps)."""
        return math.ceil(self.threads_per_block / self.limits.warp_size)

    @property
    def total_warps(self) -> int:
        """Warps across the whole launch."""
        return self.total_blocks * self.warps_per_block

    def waves(self, device: DeviceSpec, active_blocks_per_sm: int) -> int:
        """Number of full SM 'waves' needed to drain the grid."""
        if active_blocks_per_sm < 1:
            raise LaunchConfigError("active_blocks_per_sm must be >= 1")
        concurrent = device.sm_count * active_blocks_per_sm
        return math.ceil(self.total_blocks / concurrent)


def cell_kernel_launch(
    height: int, width: int, tile: int = 16, limits: ComputeCapabilityLimits = None
) -> KernelLaunchConfig:
    """Launch config for the per-cell kernels: one thread per cell, 16x16 tiles.

    The paper requires the environment edge to be a multiple of the tile
    edge ("an environment size is chosen to be a multiple of size 16").
    """
    from .device import CC_20_LIMITS

    limits = limits or CC_20_LIMITS
    if height % tile or width % tile:
        raise LaunchConfigError(
            f"grid {height}x{width} is not a multiple of the {tile}-cell tile"
        )
    return KernelLaunchConfig(
        grid=Dim3(width // tile, height // tile),
        block=Dim3(tile, tile),
        limits=limits,
    )


def agent_kernel_launch(
    n_agents: int,
    slots: int = 8,
    rows_per_block: int = 32,
    limits: ComputeCapabilityLimits = None,
) -> KernelLaunchConfig:
    """Launch config for the tour-construction kernel: 8 threads per agent.

    The paper groups 32 agent rows of 8 slot-threads into 256-thread blocks.
    """
    from .device import CC_20_LIMITS

    limits = limits or CC_20_LIMITS
    if n_agents < 1:
        raise LaunchConfigError(f"n_agents must be >= 1, got {n_agents}")
    blocks = math.ceil(n_agents / rows_per_block)
    return KernelLaunchConfig(
        grid=Dim3(blocks),
        block=Dim3(slots, rows_per_block),
        limits=limits,
    )
