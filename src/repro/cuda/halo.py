"""Halo-load warp mapping (paper Figure 3).

Loading the 68 halo elements of an 18x18 shared tile naively (each border
thread fetching its own out-of-tile neighbours) produces heavy thread
divergence. The paper instead dedicates the block's *first warp* (the 32
threads of the first two 16-thread rows) to the halo: through index
mapping, thread ``t`` of the warp loads halo elements ``t``, ``t + 32`` and
``t + 64`` — three coalesced-ish passes with no divergent branching inside
a pass (a single uniform bounds check per pass).

This module reproduces that mapping so the tiled engine can emulate it and
the cost model can count its transactions; the tests verify that the 68
halo cells are covered exactly once and that only the final pass has
inactive lanes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["halo_perimeter", "HaloAssignment", "halo_warp_schedule", "halo_pass_count"]


def halo_perimeter(tile_size: int = 16) -> List[Tuple[int, int]]:
    """The halo cell coordinates of a ``(tile+2)^2`` shared array.

    Enumerated in the paper's load order: top row left-to-right, bottom row
    left-to-right, then the left and right columns top-to-bottom (corners
    belong to the rows). For ``tile_size = 16`` this yields
    ``2*18 + 2*16 = 68`` cells.
    """
    n = tile_size + 2
    cells: List[Tuple[int, int]] = []
    cells.extend((0, c) for c in range(n))  # top row, 18 cells
    cells.extend((n - 1, c) for c in range(n))  # bottom row, 18 cells
    cells.extend((r, 0) for r in range(1, n - 1))  # left column, 16 cells
    cells.extend((r, n - 1) for r in range(1, n - 1))  # right column, 16 cells
    return cells


@dataclass(frozen=True)
class HaloAssignment:
    """One halo element load: which warp lane fetches which shared cell."""

    pass_index: int
    lane: int
    shared_pos: Tuple[int, int]


def halo_warp_schedule(tile_size: int = 16, warp_size: int = 32) -> List[HaloAssignment]:
    """The warp's halo-load schedule: lane ``t`` covers ``t + 32k``."""
    perimeter = halo_perimeter(tile_size)
    schedule = []
    for h, pos in enumerate(perimeter):
        schedule.append(
            HaloAssignment(pass_index=h // warp_size, lane=h % warp_size, shared_pos=pos)
        )
    return schedule


def halo_pass_count(tile_size: int = 16, warp_size: int = 32) -> int:
    """Number of warp passes to load the full halo (3 for 16-cell tiles)."""
    return -(-len(halo_perimeter(tile_size)) // warp_size)
