"""Timing utilities styled after CUDA events.

The paper measures GPU time with ``cudaEvent`` pairs and CPU time with the
C ``time`` function; these helpers play both roles for the measured-mode
experiments (Fig 5 benchmarks).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["CudaEvent", "event_elapsed_ms", "Stopwatch"]


@dataclass
class CudaEvent:
    """A recordable timestamp, mirroring ``cudaEventRecord`` semantics."""

    _timestamp: Optional[float] = None

    def record(self) -> "CudaEvent":
        """Capture the current time; returns self for chaining."""
        self._timestamp = time.perf_counter()
        return self

    @property
    def recorded(self) -> bool:
        """True once :meth:`record` has been called."""
        return self._timestamp is not None

    @property
    def timestamp(self) -> float:
        """The recorded time in seconds; raises if never recorded."""
        if self._timestamp is None:
            raise RuntimeError("event has not been recorded")
        return self._timestamp


def event_elapsed_ms(start: CudaEvent, stop: CudaEvent) -> float:
    """Milliseconds between two recorded events (``cudaEventElapsedTime``)."""
    return (stop.timestamp - start.timestamp) * 1e3


@dataclass
class Stopwatch:
    """Accumulating stopwatch with lap recording (for per-stage timing)."""

    laps: List[float] = field(default_factory=list)
    _started: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        """Begin a lap."""
        if self._started is not None:
            raise RuntimeError("stopwatch already running")
        self._started = time.perf_counter()

    def stop(self) -> float:
        """End the lap; returns and records its duration in seconds."""
        if self._started is None:
            raise RuntimeError("stopwatch not running")
        lap = time.perf_counter() - self._started
        self._started = None
        self.laps.append(lap)
        return lap

    @property
    def total(self) -> float:
        """Sum of all recorded laps in seconds."""
        return sum(self.laps)

    @property
    def mean(self) -> float:
        """Mean lap duration in seconds (0.0 when no laps)."""
        return self.total / len(self.laps) if self.laps else 0.0
