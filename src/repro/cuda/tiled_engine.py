"""Tiled engine: the shared-memory-faithful GPU emulation.

Executes the per-cell stages (initial calculation and movement) tile by
tile, each tile reading only its 18x18 shared-memory image loaded through
:meth:`repro.cuda.tiling.Tile.load_shared` — the exact data flow of the
paper's kernels, including the halo ring and the out-of-grid sentinel. The
results are bit-identical to :class:`repro.engine.vectorized.VectorizedEngine`
(property-tested), which is the correctness argument for the paper's tiled
shared-memory implementation. All array math routes through the engine's
resolved backend (``self.xp``), so the tile sweep runs unchanged on NumPy
or CuPy device arrays.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import SimulationConfig
from ..engine.base import ABS_STEP_COSTS
from ..engine.vectorized import VectorizedEngine
from ..grid.neighborhood import ABSOLUTE_OFFSETS
from ..errors import LaunchConfigError
from ..rng import Stream
from ..types import Group
from .tiling import DEFAULT_TILE, OUT_OF_GRID, TileDecomposition
from ..engine.conflict import winner_rank

__all__ = ["TiledEngine"]


class TiledEngine(VectorizedEngine):
    """Per-tile execution of the scan and movement kernels."""

    platform = "tiled"

    def __init__(
        self,
        config: SimulationConfig,
        seed: Optional[int] = None,
        tile_size: int = DEFAULT_TILE,
    ) -> None:
        if config.height % tile_size or config.width % tile_size:
            raise LaunchConfigError(
                f"tiled engine requires grid edges that are multiples of "
                f"{tile_size} (paper Section IV.a); got "
                f"{config.height}x{config.width}"
            )
        super().__init__(config, seed)
        self.tiles = TileDecomposition(config.height, config.width, tile_size)
        #: Constant-memory tour-increment table, resident on the device.
        self._step_costs = self.backend.from_host(np.asarray(ABS_STEP_COSTS))

    # ------------------------------------------------------------------
    # Stage 1: per-tile initial calculation
    # ------------------------------------------------------------------
    def _stage_scan(self, t: int) -> None:
        xp = self.xp
        env, pop = self.env, self.pop
        mat = env.mat
        index = env.index
        for tile in self.tiles:
            shared_mat = tile.load_shared(mat, fill=OUT_OF_GRID, xp=xp)
            shared_idx = tile.load_shared(index, fill=0, xp=xp)
            shared_tau = None
            if self.pher is not None:
                # The paper loads both group fields into one 36x18 local
                # array; the (2, tile+2, tile+2) stack cut is equivalent.
                shared_tau = tile.load_shared(self.pher.stack, fill=0.0, xp=xp)
            # Fused per-tile scan: both groups' agents in one launch.
            # gslot follows the pheromone-stack slot order (TOP=0,
            # BOTTOM=1); the scan rows are disjoint per agent, so the
            # fused write order matches the per-group passes bit for bit.
            interior_mat = shared_mat[1:-1, 1:-1]
            sel = (interior_mat == int(Group.TOP)) | (
                interior_mat == int(Group.BOTTOM)
            )
            lr, lc = xp.nonzero(sel)
            if lr.size == 0:
                continue
            gslot = (interior_mat[lr, lc] == int(Group.BOTTOM)).astype(np.int64)
            idx = shared_idx[1:-1, 1:-1][lr, lc].astype(np.int64)
            # Local coordinates within the shared image.
            slr = lr + 1
            slc = lc + 1
            off = self._offsets_stack[gslot]  # (n, 8, 2)
            nr = slr[:, None] + off[:, :, 0]
            nc = slc[:, None] + off[:, :, 1]
            candidates = shared_mat[nr, nc] == 0
            rows = pop.rows[idx]
            dist = self._dist_stack[gslot, rows]
            tau = (
                shared_tau[gslot[:, None], nr, nc]
                if shared_tau is not None
                else None
            )
            self.scan[idx] = self.model.scan_values(dist, candidates, tau)
            pop.front_empty[idx] = candidates[:, 0]

    # ------------------------------------------------------------------
    # Stage 3: per-tile movement
    # ------------------------------------------------------------------
    def _stage_move(self, t: int) -> int:
        xp = self.xp
        env, pop = self.env, self.pop
        mat, index = env.mat, env.index
        ts = self.tiles.tile_size

        if self.pher is not None:
            self.pher.evaporate()

        # Kernel-launch snapshot: every tile reads the start-of-stage state.
        mat0 = mat.copy()
        index0 = index.copy()

        moved = 0
        for tile in self.tiles:
            shared_idx = tile.load_shared(index0, fill=0, xp=xp)
            interior_empty = (
                tile.load_shared(mat0, fill=OUT_OF_GRID, xp=xp)[1:-1, 1:-1] == 0
            )
            grow = tile.row0 + xp.arange(ts)[:, None]
            gcol = tile.col0 + xp.arange(ts)[None, :]

            counts = xp.zeros((ts, ts), dtype=np.int16)
            matches = []
            for dr, dc in ABSOLUTE_OFFSETS:
                nidx = shared_idx[1 + dr : 1 + ts + dr, 1 + dc : 1 + ts + dc]
                fr = pop.future_rows[nidx]
                fc = pop.future_cols[nidx]
                match = interior_empty & (nidx > 0) & (fr == grow) & (fc == gcol)
                matches.append(match)
                counts += match
            rr, cc = xp.nonzero(counts > 0)
            if rr.size == 0:
                continue
            dst_r = grow[rr, 0]
            dst_c = gcol[0, cc]
            lanes = env.cell_lane(dst_r, dst_c)
            u = self.rng.uniform(Stream.MOVE_WINNER, t, lanes)
            pick = winner_rank(u, counts[rr, cc], xp=xp)

            cum = xp.zeros(rr.size, dtype=np.int64)
            winners = xp.full(rr.size, -1, dtype=np.int64)
            windir = xp.zeros(rr.size, dtype=np.int64)
            for d in range(8):
                m = matches[d][rr, cc]
                hit = m & (cum == pick)
                # Unconditional where-select: each contested cell hits in
                # exactly one direction, so this equals the masked write —
                # without a per-direction any() host sync.
                drr, dcc = ABSOLUTE_OFFSETS[d]
                src = shared_idx[1 + rr + drr, 1 + cc + dcc]
                winners = xp.where(hit, src, winners)
                windir = xp.where(hit, d, windir)
                cum += m
            agents = winners
            costs = self._step_costs[windir]
            src_r = pop.rows[agents]
            src_c = pop.cols[agents]
            mat[dst_r, dst_c] = pop.ids[agents]
            index[dst_r, dst_c] = agents
            mat[src_r, src_c] = 0
            index[src_r, src_c] = 0
            pop.rows[agents] = dst_r
            pop.cols[agents] = dst_c
            pop.tour[agents] += costs
            if self.pher is not None:
                # Fused deposit (see VectorizedEngine._stage_move): one
                # scatter into the (2, H, W) stack for both groups.
                amounts = self.params_deposit(agents)
                gslot = (pop.ids[agents] == int(Group.BOTTOM)).astype(np.int64)
                self.pher.deposit_stacked(gslot, dst_r, dst_c, amounts)
            moved += int(agents.size)
        return moved
