"""Memory hierarchy traffic model.

Utility estimators used by the cost model and by the implementation-notes
reporting: global-memory transaction counts under Fermi's 128-byte
coalescing rules, shared-memory bank-conflict multipliers, and effective
bandwidth under a given coalescing efficiency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .device import DeviceSpec

__all__ = [
    "global_transactions_per_warp",
    "bank_conflict_degree",
    "MemoryTraffic",
    "effective_bandwidth_bytes",
]

#: Fermi L1 cache-line / global transaction size in bytes.
TRANSACTION_BYTES = 128

#: Number of shared memory banks on Fermi.
SHARED_BANKS = 32


def global_transactions_per_warp(
    bytes_per_thread: int,
    coalesced: bool = True,
    warp_size: int = 32,
    transaction_bytes: int = TRANSACTION_BYTES,
) -> int:
    """128-byte transactions issued by one warp's access.

    A coalesced access packs the warp's ``32 * bytes_per_thread`` bytes into
    contiguous cache lines; a fully scattered access costs one transaction
    per thread.
    """
    if bytes_per_thread <= 0:
        return 0
    if coalesced:
        return math.ceil(warp_size * bytes_per_thread / transaction_bytes)
    return warp_size


def bank_conflict_degree(stride_words: int, banks: int = SHARED_BANKS) -> int:
    """Serialisation degree of a strided shared-memory access.

    With a stride of ``s`` 32-bit words, a warp touches ``banks / gcd(s,
    banks)`` distinct banks, so the access replays ``gcd(s, banks)`` times
    (degree 1 = conflict-free). Stride 0 (broadcast) is also conflict-free.
    """
    if stride_words == 0:
        return 1
    return math.gcd(abs(stride_words), banks)


def effective_bandwidth_bytes(device: DeviceSpec, coalescing_efficiency: float) -> float:
    """Sustained bandwidth under a coalescing efficiency in (0, 1]."""
    if not (0.0 < coalescing_efficiency <= 1.0):
        raise ValueError(
            f"coalescing_efficiency must be in (0, 1], got {coalescing_efficiency}"
        )
    return device.peak_bandwidth_bytes * coalescing_efficiency


@dataclass(frozen=True)
class MemoryTraffic:
    """Aggregate global traffic of one kernel launch, in bytes."""

    loads: float
    stores: float

    @property
    def total(self) -> float:
        """Loads plus stores."""
        return self.loads + self.stores

    def time_seconds(self, device: DeviceSpec, coalescing_efficiency: float = 1.0) -> float:
        """Transfer time at the device's effective bandwidth."""
        return self.total / effective_bandwidth_bytes(device, coalescing_efficiency)
