"""Per-kernel workload descriptors for the paper's simulation pipeline.

One descriptor per kernel per step, parameterised by grid size, agent count
and movement model. The instruction and byte counts are engineering
estimates of the paper's kernels (reasoned in the comments); they fix the
*relative* weights of the kernels and the *scaling* with N and grid area,
while two global efficiency scalars are later calibrated against the
paper's published endpoint timings (see :mod:`repro.cuda.costmodel`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["KernelWorkload", "gpu_kernel_workloads", "cpu_stage_workloads", "HALO_FACTOR"]

#: Shared-tile load amplification: an 18x18 shared array serves a 16x16
#: tile, so each per-cell kernel loads 324/256 of a cell's bytes.
HALO_FACTOR = 324.0 / 256.0


@dataclass(frozen=True)
class KernelWorkload:
    """Resource footprint of one kernel launch (one simulation step).

    ``category`` groups kernels by their thread-count scaling — "cell"
    kernels launch one thread per environment cell, "agent" kernels launch
    8 threads per agent — which is also the granularity at which the cost
    model calibrates efficiency.
    """

    name: str
    category: str  # "cell" | "agent"
    threads: int
    #: Dynamic instructions per thread (arithmetic + logic + address math).
    instructions_per_thread: float
    #: Global memory bytes touched per thread (loads + stores).
    bytes_per_thread: float
    #: Registers per thread (occupancy input).
    registers_per_thread: int
    #: Shared memory per block in bytes (occupancy input).
    shared_per_block: int
    threads_per_block: int = 256


def gpu_kernel_workloads(
    height: int, width: int, total_agents: int, model_name: str
) -> List[KernelWorkload]:
    """The four per-step kernels of Section IV for the given scenario.

    LEM vs ACO differences: the ACO scan kernel additionally loads both
    pheromone tiles into shared memory and evaluates the eq. 2 numerator
    (powers) instead of a distance copy; the ACO movement kernel
    additionally evaporates and re-deposits the pheromone tiles.
    """
    cells = height * width
    density = total_agents / float(cells) if cells else 0.0
    aco = model_name == "aco"

    # --- initial calculation (scan) kernel: one thread per cell ----------
    # Loads mat+index through the 18x18 shared tile (1 + 4 bytes per cell),
    # reads the constant-memory distance row (cached, ~free), and occupied
    # threads write their 8-double scan row. ACO adds two pheromone tiles
    # (8 bytes each through the halo) and the numerator arithmetic.
    scan_bytes = (1 + 4) * HALO_FACTOR + 64.0 * density
    scan_instr = 120.0
    if aco:
        scan_bytes += 2 * 8.0 * HALO_FACTOR
        scan_instr += 40.0

    # --- tour construction kernel: 8 threads per agent -------------------
    # Loads the agent's scan row into shared memory (8 bytes/thread), warp
    # reduction for the rank/denominator, one CURAND draw per agent, writes
    # FUTURE ROW/COLUMN (16 bytes across the row's threads).
    tour_bytes = 8.0 + 2.0
    tour_instr = 80.0 if not aco else 90.0

    # --- movement kernel: one thread per cell -----------------------------
    # Loads mat+index through the halo, gathers up to 8 neighbours' FUTURE
    # fields (property-matrix reads scale with local density), one CURAND
    # draw per contested cell, exchange writes. ACO adds the evaporation
    # and deposit traffic on both pheromone tiles (load+store).
    move_bytes = (1 + 4) * HALO_FACTOR + 16.0 * density + 8.0 * density
    move_instr = 140.0
    if aco:
        move_bytes += 2 * 2 * 8.0 * HALO_FACTOR
        move_instr += 40.0

    # --- support kernel: resets scan rows and FUTURE fields ---------------
    support_bytes = 8.0 + 2.0
    support_instr = 10.0

    agent_threads = 8 * max(1, total_agents)
    return [
        KernelWorkload(
            name="initial_calculation",
            category="cell",
            threads=cells,
            instructions_per_thread=scan_instr,
            bytes_per_thread=scan_bytes,
            registers_per_thread=20,
            shared_per_block=(18 * 18) * (5 + (16 if aco else 0)),
        ),
        KernelWorkload(
            name="tour_construction",
            category="agent",
            threads=agent_threads,
            instructions_per_thread=tour_instr,
            bytes_per_thread=tour_bytes,
            registers_per_thread=18,
            shared_per_block=32 * 8 * 8,
        ),
        KernelWorkload(
            name="agent_movement",
            category="cell",
            threads=cells,
            instructions_per_thread=move_instr,
            bytes_per_thread=move_bytes,
            # 20 registers is the most the compiler may use here without
            # dropping below 6 blocks/SM — the "care taken towards the
            # number of registers without endangering the 100% occupancy".
            registers_per_thread=20,
            shared_per_block=(18 * 18) * 5 + (32 * 16 * 8 if aco else 0),
        ),
        KernelWorkload(
            name="support_reset",
            category="agent",
            threads=agent_threads,
            instructions_per_thread=support_instr,
            bytes_per_thread=support_bytes,
            registers_per_thread=10,
            shared_per_block=0,
        ),
    ]


def cpu_stage_workloads(
    height: int, width: int, total_agents: int, model_name: str
) -> List[KernelWorkload]:
    """Single-threaded CPU stage costs for the same pipeline.

    The CPU implementation sweeps the environment per step (scan data
    structures, conflict resolution bookkeeping) and processes each agent's
    decision; instruction estimates reflect scalar code with branches.
    ``threads`` counts loop iterations; categories mirror the GPU split so
    the same two-point calibration applies.
    """
    cells = height * width
    aco = model_name == "aco"
    cell_instr = 100.0 + (15.0 if aco else 0.0)
    agent_instr = 250.0 + (60.0 if aco else 0.0)
    return [
        KernelWorkload(
            name="cpu_cell_sweep",
            category="cell",
            threads=cells,
            instructions_per_thread=cell_instr,
            bytes_per_thread=0.0,
            registers_per_thread=0,
            shared_per_block=0,
            threads_per_block=1,
        ),
        KernelWorkload(
            name="cpu_agent_loop",
            category="agent",
            threads=max(1, total_agents),
            instructions_per_thread=agent_instr,
            bytes_per_thread=0.0,
            registers_per_thread=0,
            shared_per_block=0,
            threads_per_block=1,
        ),
    ]
