"""Batched tiled engine: shared-memory-faithful sweeps over many lanes.

:class:`BatchedTiledEngine` is to :class:`repro.cuda.tiled_engine.TiledEngine`
what :class:`repro.engine.batched.BatchedEngine` is to the vectorized
engine: ``B`` replications advance in lock-step, and the per-cell stages
execute tile by tile — but each tile now loads *every lane's* image in one
cut (``(B, 18, 18)`` for the grid matrices, ``(2, B, 18, 18)`` for the
fused pheromone stack), so a replication sweep launches one tile pass for
the whole batch instead of one per lane.

Bit-identity: the scan/select kernels are row-independent and the movement
winner draw is keyed per (lane, cell), so the tile partition only reorders
independent work. Every lane's trajectory equals the solo engines' (and
:class:`BatchedEngine`'s) bit for bit — pinned by the golden-digest parity
tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..config import SimulationConfig
from ..engine.base import ABS_STEP_COSTS
from ..engine.batched import BatchedEngine
from ..errors import LaunchConfigError
from ..grid.neighborhood import ABSOLUTE_OFFSETS
from ..rng import Stream
from ..types import Group
from ..engine.conflict import winner_rank
from .tiling import DEFAULT_TILE, OUT_OF_GRID, TileDecomposition

__all__ = ["BatchedTiledEngine"]

#: Padding sentinel of the batched grid (mirrors ``engine.batched._PAD_CELL``):
#: any non-zero value reads as "occupied", so padding cells behave exactly
#: like the tiled engine's out-of-grid halo sentinel.
_PAD_CELL = -1


class BatchedTiledEngine(BatchedEngine):
    """Per-tile execution of the batched scan and movement kernels."""

    platform = "batched_tiled"

    def __init__(
        self,
        config: Union[SimulationConfig, Sequence[SimulationConfig]],
        seeds: Sequence[int],
        tile_size: int = DEFAULT_TILE,
    ) -> None:
        super().__init__(config, seeds)
        for cfg in self.configs:
            if cfg.height % tile_size or cfg.width % tile_size:
                raise LaunchConfigError(
                    f"tiled engine requires grid edges that are multiples "
                    f"of {tile_size} (paper Section IV.a); got "
                    f"{cfg.height}x{cfg.width}"
                )
        # Lane edges are all multiples of the tile, so the padded maxima
        # are too; tiles covering padding see only occupied sentinels.
        self.tiles = TileDecomposition(self.h_max, self.w_max, tile_size)
        #: Constant-memory tour-increment table, resident on the device.
        self._step_costs = self.backend.from_host(np.asarray(ABS_STEP_COSTS))

    # ------------------------------------------------------------------
    # Stage 1: per-tile initial calculation (all lanes per tile)
    # ------------------------------------------------------------------
    def _stage_scan(self, t: int) -> None:
        xp = self.xp
        for tile in self.tiles:
            shared_mat = tile.load_shared(self.mats, fill=OUT_OF_GRID, xp=xp)
            shared_idx = tile.load_shared(self.index, fill=0, xp=xp)
            shared_tau = None
            if self.pher is not None:
                # One (2, B, 18, 18) image: both groups, every lane.
                shared_tau = tile.load_shared(self.pher.stack, fill=0.0, xp=xp)
            interior_mat = shared_mat[:, 1:-1, 1:-1]
            sel = (interior_mat == int(Group.TOP)) | (
                interior_mat == int(Group.BOTTOM)
            )
            bb, lr, lc = xp.nonzero(sel)
            if bb.size == 0:
                continue
            gslot = (interior_mat[bb, lr, lc] == int(Group.BOTTOM)).astype(
                np.int64
            )
            agent = shared_idx[:, 1:-1, 1:-1][bb, lr, lc].astype(np.int64)
            # Local coordinates within the shared image.
            slr = lr + 1
            slc = lc + 1
            off = self._offsets_stack[gslot]  # (n, 8, 2)
            nr = slr[:, None] + off[:, :, 0]
            nc = slc[:, None] + off[:, :, 1]
            # Halo sentinels and padding cells both read non-zero, so the
            # emptiness test is the only bounds check needed (exactly the
            # solo tiled engine's data flow).
            candidates = shared_mat[bb[:, None], nr, nc] == 0
            rows = self.rows[bb, agent]
            dist = self._dist_stack[gslot, bb, rows]  # (n, 8)
            tau = (
                shared_tau[gslot[:, None], bb[:, None], nr, nc]
                if shared_tau is not None
                else None
            )
            if self._homogeneous:
                values = self.model.scan_values(dist, candidates, tau)
            else:
                # Partition by parameter group, as the batched engine does:
                # scan_values is row-independent, so per-group calls over
                # row subsets are bit-identical to one shared call.
                values = xp.empty(dist.shape, dtype=np.float64)
                pg = self._lane_pg[bb]
                for gid, (_params, model, _lanes) in enumerate(
                    self._param_groups
                ):
                    gsel = pg == gid
                    if not bool(xp.any(gsel)):
                        continue
                    values[gsel] = model.scan_values(
                        dist[gsel],
                        candidates[gsel],
                        tau[gsel] if tau is not None else None,
                    )
            self.scan[bb, agent, :] = values
            self.front_empty[bb, agent] = candidates[:, 0]

    # ------------------------------------------------------------------
    # Stage 3: per-tile movement (all lanes per tile)
    # ------------------------------------------------------------------
    def _stage_move(self, t: int) -> np.ndarray:
        xp = self.xp
        ts = self.tiles.tile_size
        moved = xp.zeros(self.n_lanes, dtype=np.int64)

        if self.pher is not None:
            if self._homogeneous:
                self.pher.evaporate()
            else:
                for _params, _model, lanes in self._param_groups:
                    self.pher.evaporate_lanes(lanes, _params)

        # Kernel-launch snapshot: every tile reads the start-of-stage state.
        mats0 = self.mats.copy()
        index0 = self.index.copy()

        for tile in self.tiles:
            shared_idx = tile.load_shared(index0, fill=0, xp=xp)
            interior_empty = (
                tile.load_shared(mats0, fill=OUT_OF_GRID, xp=xp)[:, 1:-1, 1:-1]
                == 0
            )
            grow = tile.row0 + xp.arange(ts)[:, None]  # (ts, 1)
            gcol = tile.col0 + xp.arange(ts)[None, :]  # (1, ts)

            counts = xp.zeros((self.n_lanes, ts, ts), dtype=np.int16)
            matches: List[np.ndarray] = []
            for dr, dc in ABSOLUTE_OFFSETS:
                nidx = shared_idx[
                    :, 1 + dr : 1 + ts + dr, 1 + dc : 1 + ts + dc
                ]
                fr = self.future_rows[self._bidx, nidx]
                fc = self.future_cols[self._bidx, nidx]
                match = (
                    interior_empty
                    & (nidx > 0)
                    & (fr == grow[None])
                    & (fc == gcol[None])
                )
                matches.append(match)
                counts += match
            bb, rr, cc = xp.nonzero(counts > 0)
            if bb.size == 0:
                continue
            dst_r = tile.row0 + rr
            dst_c = tile.col0 + cc
            # Winner draws key by each lane's *real* width — the same
            # (lane, cell) address the batched/vectorized engines use.
            cell_lanes = dst_r.astype(np.uint64) * self._widths_u64[
                bb
            ] + dst_c.astype(np.uint64)
            u = self.rng.uniform_at(Stream.MOVE_WINNER, t, bb, cell_lanes)
            pick = winner_rank(u, counts[bb, rr, cc], xp=xp)

            cum = xp.zeros(bb.size, dtype=np.int64)
            winners = xp.full(bb.size, -1, dtype=np.int64)
            windir = xp.zeros(bb.size, dtype=np.int64)
            for d in range(8):
                m = matches[d][bb, rr, cc]
                hit = m & (cum == pick)
                # Unconditional where-select: each contested cell hits in
                # exactly one direction, so this equals the masked write —
                # without a per-direction any() host sync.
                drr, dcc = ABSOLUTE_OFFSETS[d]
                src = shared_idx[bb, 1 + rr + drr, 1 + cc + dcc]
                winners = xp.where(hit, src, winners)
                windir = xp.where(hit, d, windir)
                cum += m
            costs = self._step_costs[windir]
            src_r = self.rows[bb, winners]
            src_c = self.cols[bb, winners]
            self.mats[bb, dst_r, dst_c] = self.ids[bb, winners]
            self.index[bb, dst_r, dst_c] = winners
            self.mats[bb, src_r, src_c] = 0
            self.index[bb, src_r, src_c] = 0
            self.rows[bb, winners] = dst_r
            self.cols[bb, winners] = dst_c
            self.tour[bb, winners] += costs
            if self.pher is not None:
                # Fused deposit into the (2, B, H, W) stack (see
                # BatchedEngine._stage_move for the clamp argument).
                gslot = (self.ids[bb, winners] == int(Group.BOTTOM)).astype(
                    np.int64
                )
                if self._homogeneous:
                    amounts = self.pher.params.deposit_q / self.tour[bb, winners]
                    self.pher.deposit_stacked(gslot, bb, dst_r, dst_c, amounts)
                else:
                    amounts = self._deposit_q[bb] / self.tour[bb, winners]
                    self.pher.deposit_raw_stacked(
                        gslot, bb, dst_r, dst_c, amounts
                    )
                    for _params, _model, lanes in self._param_groups:
                        self.pher.clamp_max(lanes, _params.tau_max)
            self.backend.scatter_add(moved, bb, 1)
        return moved
