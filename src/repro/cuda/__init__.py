"""CUDA execution-model substrate: devices, occupancy, tiling, cost model.

This package is the documented substitution for the paper's missing
hardware: it models the GTX 560 Ti / i7-930 pair of Table I (device specs,
CC 2.0 occupancy rules, 16x16 tiles with 18x18 halos, warp divergence and
memory-transaction accounting) and prices the paper's exact experimental
configurations through a calibrated analytic cost model to regenerate
Figures 5a-5c. :class:`TiledEngine` additionally *executes* the simulation
through the tiled shared-memory data flow to prove it computes the same
result as the global data-parallel engine.
"""

from .costmodel import (
    CpuCostModel,
    GpuCostModel,
    KernelTime,
    PAPER_ACO_OVER_LEM,
    PAPER_ENDPOINTS,
    PAPER_GRID,
    PAPER_STEPS,
    paper_speedup_curve,
)
from .device import (
    CC_20_LIMITS,
    ComputeCapabilityLimits,
    CpuSpec,
    DeviceSpec,
    GTX_560_TI_448,
    I7_930,
)
from .divergence import (
    branchless_factor,
    expected_serialization_factor,
    prob_warp_diverges,
)
from .halo import HaloAssignment, halo_pass_count, halo_perimeter, halo_warp_schedule
from .kernels import (
    HALO_FACTOR,
    KernelWorkload,
    cpu_stage_workloads,
    gpu_kernel_workloads,
)
from .launch import (
    Dim3,
    KernelLaunchConfig,
    agent_kernel_launch,
    cell_kernel_launch,
)
from .memory import (
    MemoryTraffic,
    bank_conflict_degree,
    effective_bandwidth_bytes,
    global_transactions_per_warp,
)
from .occupancy import OccupancyResult, occupancy
from .report import KernelNote, implementation_notes, implementation_report
from .batched_tiled import BatchedTiledEngine
from .tiled_engine import TiledEngine
from .tiling import DEFAULT_TILE, OUT_OF_GRID, Tile, TileDecomposition
from .timers import CudaEvent, Stopwatch, event_elapsed_ms

__all__ = [
    "DeviceSpec",
    "CpuSpec",
    "ComputeCapabilityLimits",
    "GTX_560_TI_448",
    "I7_930",
    "CC_20_LIMITS",
    "Dim3",
    "KernelLaunchConfig",
    "cell_kernel_launch",
    "agent_kernel_launch",
    "OccupancyResult",
    "occupancy",
    "Tile",
    "TileDecomposition",
    "DEFAULT_TILE",
    "OUT_OF_GRID",
    "HaloAssignment",
    "halo_perimeter",
    "halo_warp_schedule",
    "halo_pass_count",
    "MemoryTraffic",
    "global_transactions_per_warp",
    "bank_conflict_degree",
    "effective_bandwidth_bytes",
    "prob_warp_diverges",
    "expected_serialization_factor",
    "branchless_factor",
    "KernelWorkload",
    "gpu_kernel_workloads",
    "cpu_stage_workloads",
    "HALO_FACTOR",
    "GpuCostModel",
    "CpuCostModel",
    "KernelTime",
    "PAPER_GRID",
    "PAPER_STEPS",
    "PAPER_ENDPOINTS",
    "PAPER_ACO_OVER_LEM",
    "paper_speedup_curve",
    "KernelNote",
    "implementation_notes",
    "implementation_report",
    "TiledEngine",
    "BatchedTiledEngine",
    "CudaEvent",
    "event_elapsed_ms",
    "Stopwatch",
]
