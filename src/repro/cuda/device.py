"""Device specifications — the paper's Table I hardware.

The evaluation hardware is an NVIDIA GeForce GTX 560 Ti (the 448-core
GF110-based variant: 14 SMs x 32 SPs, Fermi, compute capability 2.0) against
an Intel Core i7-930 used single-threaded. These specs drive the occupancy
calculator and the analytic cost model; the table printed by
``repro.experiments.tables.table1_hardware`` is generated from them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ComputeCapabilityLimits",
    "DeviceSpec",
    "CpuSpec",
    "CC_20_LIMITS",
    "GTX_560_TI_448",
    "I7_930",
]


@dataclass(frozen=True)
class ComputeCapabilityLimits:
    """Per-SM resource limits of a CUDA compute capability."""

    compute_capability: str
    max_threads_per_sm: int
    max_blocks_per_sm: int
    max_warps_per_sm: int
    warp_size: int
    max_threads_per_block: int
    registers_per_sm: int
    #: Register allocation granularity (registers, allocated per warp).
    register_allocation_unit: int
    shared_memory_per_sm: int
    #: Shared memory allocation granularity in bytes.
    shared_allocation_unit: int
    #: Warp allocation granularity (warps per block round up to this).
    warp_allocation_granularity: int


#: Compute capability 2.0 (Fermi) limits — the paper's GPU.
CC_20_LIMITS = ComputeCapabilityLimits(
    compute_capability="2.0",
    max_threads_per_sm=1536,
    max_blocks_per_sm=8,
    max_warps_per_sm=48,
    warp_size=32,
    max_threads_per_block=1024,
    registers_per_sm=32768,
    register_allocation_unit=64,
    shared_memory_per_sm=49152,
    shared_allocation_unit=128,
    warp_allocation_granularity=2,
)


@dataclass(frozen=True)
class DeviceSpec:
    """A CUDA device model (paper Table I row for the GPU)."""

    name: str
    manufacturer: str
    sm_count: int
    cores_per_sm: int
    clock_ghz: float
    limits: ComputeCapabilityLimits
    #: Peak global memory bandwidth in GB/s.
    memory_bandwidth_gbs: float
    #: Global memory latency in cycles (Fermi: roughly 400-800).
    global_latency_cycles: int
    #: L1/shared configuration string (Table I "L1 cache" row).
    l1_description: str
    l2_cache_bytes: int
    dram_description: str
    #: Fixed host-side cost of one kernel launch, in seconds.
    kernel_launch_overhead_s: float = 5e-6

    @property
    def total_cores(self) -> int:
        """Total number of streaming processors (Table I "Processor Cores")."""
        return self.sm_count * self.cores_per_sm

    @property
    def peak_ips(self) -> float:
        """Peak scalar instructions per second (1 instruction/core/clock)."""
        return self.total_cores * self.clock_ghz * 1e9

    @property
    def peak_bandwidth_bytes(self) -> float:
        """Peak global memory bandwidth in bytes/s."""
        return self.memory_bandwidth_gbs * 1e9


@dataclass(frozen=True)
class CpuSpec:
    """A CPU model (paper Table I row for the CPU; used single-threaded)."""

    name: str
    manufacturer: str
    cores: int
    clock_ghz: float
    l1_description: str
    l2_cache_bytes: int
    l3_cache_bytes: int
    dram_description: str
    #: Effective sustained instructions/cycle for the scalar simulation code.
    effective_ipc: float = 1.0

    @property
    def scalar_ips(self) -> float:
        """Sustained single-thread instructions per second."""
        return self.clock_ghz * 1e9 * self.effective_ipc


#: The paper's GPU: GeForce GTX 560 Ti, 448-core Fermi variant (Table I).
GTX_560_TI_448 = DeviceSpec(
    name="GeForce GTX 560 Ti",
    manufacturer="Nvidia",
    sm_count=14,
    cores_per_sm=32,
    clock_ghz=1.464,
    limits=CC_20_LIMITS,
    memory_bandwidth_gbs=152.0,
    global_latency_cycles=600,
    l1_description="16 KB + 48 KB (shared memory configurable)",
    l2_cache_bytes=768 * 1024,
    dram_description="1.25 GB GDDR5",
)

#: The paper's CPU: Intel Core i7-930 (Table I), single-threaded baseline.
I7_930 = CpuSpec(
    name="Core i7-930",
    manufacturer="Intel",
    cores=4,
    clock_ghz=2.8,
    l1_description="32 KB + 32 KB",
    l2_cache_bytes=256 * 1024,
    l3_cache_bytes=8 * 1024 * 1024,
    dram_description="6 GB DDR3",
)
