"""Tile decomposition with halo regions (paper Section IV.b, Figure 3).

The per-cell kernels load each 16x16 tile of ``mat``/the index matrix into
an 18x18 shared-memory array: the 16x16 *internal* elements plus one ring of
*halo* elements from the neighbouring tiles, so that every internal thread
can inspect its full Moore neighbourhood without touching global memory
again. This module provides the index arithmetic; the halo-load warp
mapping lives in :mod:`repro.cuda.halo`, and
:class:`repro.cuda.tiled_engine.TiledEngine` executes the simulation
tile-by-tile through these decompositions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..errors import LaunchConfigError

__all__ = ["Tile", "TileDecomposition", "DEFAULT_TILE", "OUT_OF_GRID"]

#: The paper's tile edge (16 cells; 256 threads per block).
DEFAULT_TILE = 16

#: Sentinel stored in halo cells that fall outside the grid: any non-zero
#: value reads as "unavailable", mirroring the global engine's bounds check.
OUT_OF_GRID = -1


@dataclass(frozen=True)
class Tile:
    """One tile of the decomposition.

    ``row0``/``col0`` index the tile's top-left *internal* cell in the
    global grid; the halo extends one cell beyond each edge (clipped at the
    grid border).
    """

    block_row: int
    block_col: int
    row0: int
    col0: int
    tile_size: int
    grid_height: int
    grid_width: int

    @property
    def interior(self) -> Tuple[slice, slice]:
        """Global-array slices of the 16x16 internal region."""
        return (
            slice(self.row0, self.row0 + self.tile_size),
            slice(self.col0, self.col0 + self.tile_size),
        )

    @property
    def halo_bounds(self) -> Tuple[int, int, int, int]:
        """Unclipped halo bounds ``(row_lo, row_hi, col_lo, col_hi)``.

        The bounds describe the 18x18 shared array footprint; rows/cols
        outside ``[0, grid)`` do not exist in global memory and are filled
        with the out-of-bounds sentinel by the loader.
        """
        return (
            self.row0 - 1,
            self.row0 + self.tile_size + 1,
            self.col0 - 1,
            self.col0 + self.tile_size + 1,
        )

    def load_shared(self, arr: np.ndarray, fill, xp=np) -> np.ndarray:
        """Materialise the (tile+2)x(tile+2) shared array with halos.

        Out-of-grid halo cells get ``fill`` (the engines use an "occupied"
        sentinel so border agents see the outside world as unavailable,
        exactly like the bounds checks of the global engine). ``xp`` is the
        array namespace of ``arr`` (the shared image stays on its device).

        ``arr`` may carry leading axes (``(..., H, W)``): the tile cut
        applies to the trailing two, so one call loads e.g. the fused
        ``(2, H, W)`` pheromone stack — or a batched ``(2, B, H, W)``
        stack — as a single shared image per tile.
        """
        ts = self.tile_size
        shared = xp.full(arr.shape[:-2] + (ts + 2, ts + 2), fill, dtype=arr.dtype)
        r_lo, r_hi, c_lo, c_hi = self.halo_bounds
        gr_lo, gr_hi = max(r_lo, 0), min(r_hi, self.grid_height)
        gc_lo, gc_hi = max(c_lo, 0), min(c_hi, self.grid_width)
        if gr_lo < gr_hi and gc_lo < gc_hi:
            shared[
                ..., gr_lo - r_lo : gr_hi - r_lo, gc_lo - c_lo : gc_hi - c_lo
            ] = arr[..., gr_lo:gr_hi, gc_lo:gc_hi]
        return shared


class TileDecomposition:
    """The full set of tiles covering a grid (multiple-of-tile-size edges)."""

    def __init__(self, height: int, width: int, tile_size: int = DEFAULT_TILE) -> None:
        if tile_size < 2:
            raise LaunchConfigError(f"tile_size must be >= 2, got {tile_size}")
        if height % tile_size or width % tile_size:
            raise LaunchConfigError(
                f"grid {height}x{width} is not a multiple of the "
                f"{tile_size}-cell tile (paper Section IV.a)"
            )
        self.height = height
        self.width = width
        self.tile_size = tile_size
        self.blocks_y = height // tile_size
        self.blocks_x = width // tile_size

    @property
    def n_tiles(self) -> int:
        """Total number of tiles (= thread blocks of a per-cell kernel)."""
        return self.blocks_y * self.blocks_x

    def tile(self, block_row: int, block_col: int) -> Tile:
        """The tile at block coordinates ``(block_row, block_col)``."""
        if not (0 <= block_row < self.blocks_y and 0 <= block_col < self.blocks_x):
            raise IndexError(
                f"block ({block_row}, {block_col}) outside "
                f"{self.blocks_y}x{self.blocks_x} decomposition"
            )
        return Tile(
            block_row=block_row,
            block_col=block_col,
            row0=block_row * self.tile_size,
            col0=block_col * self.tile_size,
            tile_size=self.tile_size,
            grid_height=self.height,
            grid_width=self.width,
        )

    def __iter__(self) -> Iterator[Tile]:
        for br in range(self.blocks_y):
            for bc in range(self.blocks_x):
                yield self.tile(br, bc)
