"""Warp divergence accounting.

The paper repeatedly stresses that its kernels avoid warp divergence by
replacing data-dependent branches with index mapping and logical operators.
These helpers quantify what that buys: the expected serialisation factor of
a divergent branch and the fraction of warps that actually diverge for a
given predicate density.
"""

from __future__ import annotations

__all__ = [
    "prob_warp_diverges",
    "expected_serialization_factor",
    "branchless_factor",
]


def prob_warp_diverges(predicate_density: float, warp_size: int = 32) -> float:
    """Probability that a warp takes *both* sides of a branch.

    Threads take the "true" side independently with probability
    ``predicate_density``; the warp diverges unless all 32 agree.
    """
    if not (0.0 <= predicate_density <= 1.0):
        raise ValueError(f"predicate_density must be in [0, 1], got {predicate_density}")
    p = predicate_density
    return 1.0 - p**warp_size - (1.0 - p) ** warp_size


def expected_serialization_factor(
    predicate_density: float, warp_size: int = 32, paths: int = 2
) -> float:
    """Expected execution-time multiplier of a data-dependent branch.

    A non-divergent warp executes one path (factor 1); a divergent warp
    executes both (factor ``paths``). This is the cost the paper's
    logical-operator rewrites eliminate.
    """
    if paths < 1:
        raise ValueError(f"paths must be >= 1, got {paths}")
    p_div = prob_warp_diverges(predicate_density, warp_size)
    return 1.0 + (paths - 1) * p_div


def branchless_factor() -> float:
    """Serialisation factor of the paper's branch-free kernels (exactly 1)."""
    return 1.0
