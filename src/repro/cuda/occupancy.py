"""CC 2.0 occupancy calculator (the paper's "CUDA Occupancy Calculator").

Computes the number of thread blocks resident on one SM given the block's
thread count, per-thread register usage and per-block shared memory, under
the Fermi allocation rules: registers are allocated per warp in units of
``register_allocation_unit``, shared memory in units of
``shared_allocation_unit``, and warps per block round up to the warp
allocation granularity.

The paper's claim "maintaining 100% occupancy, the maximum number of
threads that could be launched in a single thread block is 256" is verified
in the tests: 1536 threads/SM / 256 = 6 blocks <= 8, and 6 x 8 warps fills
all 48 warp slots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import OccupancyError
from .device import CC_20_LIMITS, ComputeCapabilityLimits

__all__ = ["OccupancyResult", "occupancy"]


def _round_up(value: int, granularity: int) -> int:
    return ((value + granularity - 1) // granularity) * granularity


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of an occupancy calculation for one launch configuration."""

    threads_per_block: int
    warps_per_block: int
    active_blocks_per_sm: int
    active_warps_per_sm: int
    occupancy: float
    #: Which resource limits the block count: "threads", "blocks",
    #: "registers" or "shared".
    limiter: str

    @property
    def is_full(self) -> bool:
        """True at 100% theoretical occupancy."""
        return self.occupancy >= 1.0


def occupancy(
    threads_per_block: int,
    registers_per_thread: int = 20,
    shared_per_block: int = 0,
    limits: ComputeCapabilityLimits = CC_20_LIMITS,
) -> OccupancyResult:
    """Theoretical occupancy of one SM for the given block resources."""
    if threads_per_block < 1 or threads_per_block > limits.max_threads_per_block:
        raise OccupancyError(
            f"threads_per_block must be in [1, {limits.max_threads_per_block}], "
            f"got {threads_per_block}"
        )
    if registers_per_thread < 0:
        raise OccupancyError("registers_per_thread must be >= 0")
    if shared_per_block < 0 or shared_per_block > limits.shared_memory_per_sm:
        raise OccupancyError(
            f"shared_per_block must be in [0, {limits.shared_memory_per_sm}], "
            f"got {shared_per_block}"
        )

    warps_per_block = _round_up(
        math.ceil(threads_per_block / limits.warp_size),
        limits.warp_allocation_granularity,
    )

    by_threads = limits.max_threads_per_sm // threads_per_block
    by_blocks = limits.max_blocks_per_sm
    by_warps = limits.max_warps_per_sm // warps_per_block

    if registers_per_thread > 0:
        regs_per_warp = _round_up(
            registers_per_thread * limits.warp_size, limits.register_allocation_unit
        )
        regs_per_block = regs_per_warp * warps_per_block
        if regs_per_block > limits.registers_per_sm:
            by_registers = 0
        else:
            by_registers = limits.registers_per_sm // regs_per_block
    else:
        by_registers = by_blocks

    if shared_per_block > 0:
        shared_alloc = _round_up(shared_per_block, limits.shared_allocation_unit)
        by_shared = limits.shared_memory_per_sm // shared_alloc
    else:
        by_shared = by_blocks

    candidates = {
        "threads": min(by_threads, by_warps),
        "blocks": by_blocks,
        "registers": by_registers,
        "shared": by_shared,
    }
    blocks = min(candidates.values())
    limiter = min(candidates, key=lambda k: candidates[k])
    if blocks == 0:
        raise OccupancyError(
            "kernel cannot launch: a single block exceeds SM resources "
            f"(limited by {limiter})"
        )
    active_warps = blocks * warps_per_block
    return OccupancyResult(
        threads_per_block=threads_per_block,
        warps_per_block=warps_per_block,
        active_blocks_per_sm=blocks,
        active_warps_per_sm=active_warps,
        occupancy=active_warps / limits.max_warps_per_sm,
        limiter=limiter,
    )
