"""Implementation-notes report (paper Section IV as a generated artifact).

The paper spends Section IV on how each kernel avoids warp divergence,
keeps occupancy at 100%, replaces atomics with scatter-to-gather, and
loads halos with a single warp. This module regenerates those claims as a
per-kernel engineering table from the models in :mod:`repro.cuda`:
launch geometry, occupancy, memory traffic per warp, halo-load passes and
the divergence factor of the branch-free formulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .device import DeviceSpec, GTX_560_TI_448
from .divergence import branchless_factor, expected_serialization_factor
from .halo import halo_pass_count
from .kernels import gpu_kernel_workloads
from .launch import agent_kernel_launch, cell_kernel_launch
from .memory import global_transactions_per_warp
from .occupancy import occupancy

__all__ = ["KernelNote", "implementation_notes", "implementation_report"]


@dataclass(frozen=True)
class KernelNote:
    """Engineering summary of one kernel."""

    name: str
    category: str
    total_threads: int
    blocks: int
    threads_per_block: int
    occupancy: float
    occupancy_limiter: str
    waves: int
    bytes_per_thread: float
    transactions_per_warp: int
    halo_passes: int
    divergence_factor: float
    naive_divergence_factor: float

    @property
    def divergence_saving(self) -> float:
        """Serialization factor avoided by the branch-free formulation."""
        return self.naive_divergence_factor / self.divergence_factor


def implementation_notes(
    height: int = 480,
    width: int = 480,
    total_agents: int = 25600,
    model: str = "aco",
    device: DeviceSpec = GTX_560_TI_448,
) -> List[KernelNote]:
    """Per-kernel notes for the given scenario."""
    notes = []
    density = total_agents / float(height * width)
    for wl in gpu_kernel_workloads(height, width, total_agents, model):
        if wl.category == "cell":
            launch = cell_kernel_launch(height, width)
            halo = halo_pass_count()
        else:
            launch = agent_kernel_launch(total_agents)
            halo = 0
        occ = occupancy(
            wl.threads_per_block,
            registers_per_thread=wl.registers_per_thread,
            shared_per_block=wl.shared_per_block,
        )
        # The naive kernel branches per cell on occupancy (cell kernels) or
        # per agent on front-cell state (agent kernels); the paper's index
        # mapping + logical operators make both branch-free.
        predicate = density if wl.category == "cell" else 0.5
        notes.append(
            KernelNote(
                name=wl.name,
                category=wl.category,
                total_threads=launch.total_threads,
                blocks=launch.total_blocks,
                threads_per_block=launch.threads_per_block,
                occupancy=occ.occupancy,
                occupancy_limiter=occ.limiter,
                waves=launch.waves(device, occ.active_blocks_per_sm),
                bytes_per_thread=wl.bytes_per_thread,
                transactions_per_warp=global_transactions_per_warp(
                    max(1, round(wl.bytes_per_thread))
                ),
                halo_passes=halo,
                divergence_factor=branchless_factor(),
                naive_divergence_factor=expected_serialization_factor(predicate),
            )
        )
    return notes


def implementation_report(
    height: int = 480,
    width: int = 480,
    total_agents: int = 25600,
    model: str = "aco",
) -> str:
    """Formatted Section IV engineering table."""
    notes = implementation_notes(height, width, total_agents, model)
    header = (
        f"{'kernel':<22} {'threads':>8} {'blk':>5} {'occ':>5} {'waves':>6} "
        f"{'B/thr':>6} {'txn/warp':>8} {'halo':>5} {'div saved':>9}"
    )
    lines = [
        f"Implementation notes: {model.upper()} on {height}x{width}, "
        f"{total_agents} agents",
        header,
        "-" * len(header),
    ]
    for n in notes:
        lines.append(
            f"{n.name:<22} {n.total_threads:>8} {n.blocks:>5} "
            f"{n.occupancy:>5.0%} {n.waves:>6} {n.bytes_per_thread:>6.1f} "
            f"{n.transactions_per_warp:>8} {n.halo_passes:>5} "
            f"{n.divergence_saving:>8.2f}x"
        )
    lines.append(
        "halo = warp passes to load the 18x18 shared tile ring (Figure 3); "
        "div saved = serialization factor avoided by the branch-free kernels"
    )
    return "\n".join(lines)
