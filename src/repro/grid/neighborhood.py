"""Direction-relative neighbourhood geometry (paper Figure 1).

The paper numbers the eight Moore neighbours 1..8 relative to the agent's
direction of travel: slot 1 is the forward cell, 2/3 the forward diagonals,
4/5 the laterals, 6 the backward cell, 7/8 the backward diagonals. A TOP
agent moves toward increasing rows; a BOTTOM agent's frame is the TOP frame
rotated 180 degrees, so the two groups are exactly symmetric.

This module also fixes the *absolute* neighbour ordering used by the
movement stage's scatter-to-gather (which is a property of the cell, not of
any agent's heading).
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from ..types import Group, N_NEIGHBOR_SLOTS

__all__ = [
    "SLOT_OFFSETS",
    "ABSOLUTE_OFFSETS",
    "STEP_COSTS",
    "slot_offsets",
    "step_cost",
    "offsets_array",
    "absolute_offsets_array",
]

# Relative (drow, dcol) for slots 1..8, TOP frame (forward = +row).
_TOP_OFFSETS = (
    (1, 0),    # 1 forward
    (1, -1),   # 2 forward-left
    (1, 1),    # 3 forward-right
    (0, -1),   # 4 left
    (0, 1),    # 5 right
    (-1, 0),   # 6 backward
    (-1, -1),  # 7 backward-left
    (-1, 1),   # 8 backward-right
)

# BOTTOM frame: 180-degree rotation of the TOP frame.
_BOTTOM_OFFSETS = tuple((-dr, -dc) for (dr, dc) in _TOP_OFFSETS)

#: Slot offsets per group: ``SLOT_OFFSETS[group][slot - 1] -> (drow, dcol)``.
SLOT_OFFSETS: Dict[Group, tuple] = {
    Group.TOP: _TOP_OFFSETS,
    Group.BOTTOM: _BOTTOM_OFFSETS,
}

#: Absolute (heading-independent) Moore offsets in the fixed gather order
#: used by the movement stage: NW, N, NE, W, E, SW, S, SE.
ABSOLUTE_OFFSETS = (
    (-1, -1),
    (-1, 0),
    (-1, 1),
    (0, -1),
    (0, 1),
    (1, -1),
    (1, 0),
    (1, 1),
)

#: Euclidean length of a move into each slot (same for both frames):
#: 1 for orthogonal slots, sqrt(2) for diagonal slots. This is the paper's
#: constant-memory table of tour-length increments.
STEP_COSTS = tuple(
    math.sqrt(dr * dr + dc * dc) for (dr, dc) in _TOP_OFFSETS
)


def slot_offsets(group: Group) -> tuple:
    """Return the 8 ``(drow, dcol)`` offsets for ``group``, slot order 1..8."""
    return SLOT_OFFSETS[Group(group)]


def step_cost(slot: int) -> float:
    """Tour-length increment for a move into 1-based ``slot``."""
    if not (1 <= slot <= N_NEIGHBOR_SLOTS):
        raise ValueError(f"slot must be in 1..{N_NEIGHBOR_SLOTS}, got {slot}")
    return STEP_COSTS[slot - 1]


def offsets_array(group: Group) -> np.ndarray:
    """Slot offsets as an ``(8, 2)`` int64 array (rows: slots 1..8)."""
    return np.array(slot_offsets(group), dtype=np.int64)


def absolute_offsets_array() -> np.ndarray:
    """Absolute gather offsets as an ``(8, 2)`` int64 array."""
    return np.array(ABSOLUTE_OFFSETS, dtype=np.int64)
