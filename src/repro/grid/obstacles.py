"""Static obstacle layouts.

The paper's motivation includes cross-walks and mass-gathering venues,
which are never empty rectangles; this module provides the standard
pedestrian-dynamics fixtures — a mid-corridor **bottleneck** wall with a
gap, a field of **pillars**, and arbitrary rectangular walls — as frozen,
hashable specs that :class:`repro.config.SimulationConfig` can carry.

Obstacle cells read as occupied to every kernel (scan candidates, movement
destinations, halo loads), so no engine needs obstacle-specific logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = ["ObstacleSpec", "bottleneck_mask", "pillars_mask", "rects_mask"]


def bottleneck_mask(
    height: int, width: int, gap: int, thickness: int = 1, wall_row: int = None
) -> np.ndarray:
    """A wall across the corridor with a centred gap of ``gap`` cells."""
    if not (1 <= gap <= width):
        raise ConfigurationError(f"gap must be in [1, {width}], got {gap}")
    if thickness < 1:
        raise ConfigurationError(f"thickness must be >= 1, got {thickness}")
    row = height // 2 if wall_row is None else int(wall_row)
    if not (0 <= row and row + thickness <= height):
        raise ConfigurationError(
            f"wall rows [{row}, {row + thickness}) outside grid of height {height}"
        )
    mask = np.zeros((height, width), dtype=bool)
    gap_lo = (width - gap) // 2
    mask[row : row + thickness, :gap_lo] = True
    mask[row : row + thickness, gap_lo + gap :] = True
    return mask


def pillars_mask(
    height: int, width: int, spacing: int = 8, size: int = 2, band: float = 0.5
) -> np.ndarray:
    """A regular field of square pillars in the central ``band`` of rows."""
    if spacing < size + 1:
        raise ConfigurationError(
            f"spacing ({spacing}) must exceed pillar size ({size})"
        )
    if not (0.0 < band <= 1.0):
        raise ConfigurationError(f"band must be in (0, 1], got {band}")
    mask = np.zeros((height, width), dtype=bool)
    r_lo = int(height * (0.5 - band / 2))
    r_hi = int(height * (0.5 + band / 2))
    for r0 in range(r_lo, max(r_lo + 1, r_hi - size + 1), spacing):
        for c0 in range(spacing // 2, width - size + 1, spacing):
            mask[r0 : r0 + size, c0 : c0 + size] = True
    return mask


def rects_mask(height: int, width: int, rects: Tuple[Tuple[int, int, int, int], ...]) -> np.ndarray:
    """Walls from half-open rectangles ``(row0, col0, row1, col1)``."""
    mask = np.zeros((height, width), dtype=bool)
    for r0, c0, r1, c1 in rects:
        if not (0 <= r0 < r1 <= height and 0 <= c0 < c1 <= width):
            raise ConfigurationError(
                f"rect {(r0, c0, r1, c1)} outside {height}x{width} grid"
            )
        mask[r0:r1, c0:c1] = True
    return mask


@dataclass(frozen=True)
class ObstacleSpec:
    """Hashable obstacle description carried by a simulation config.

    ``kind`` selects the layout: ``"bottleneck"`` (uses gap/thickness/
    wall_row), ``"pillars"`` (spacing/size/band) or ``"rects"`` (rects).
    """

    kind: str
    gap: int = 8
    thickness: int = 1
    wall_row: int = None
    spacing: int = 8
    size: int = 2
    band: float = 0.5
    rects: Tuple[Tuple[int, int, int, int], ...] = field(default_factory=tuple)

    def validate(self) -> None:
        """Check the kind; geometric limits are checked against the grid."""
        if self.kind not in ("bottleneck", "pillars", "rects"):
            raise ConfigurationError(
                f"obstacle kind must be bottleneck/pillars/rects, got {self.kind!r}"
            )
        if self.kind == "rects" and not self.rects:
            raise ConfigurationError("rects obstacle spec needs at least one rect")

    def build(self, height: int, width: int) -> np.ndarray:
        """Materialise the boolean mask for a grid."""
        self.validate()
        if self.kind == "bottleneck":
            return bottleneck_mask(
                height, width, self.gap, self.thickness, self.wall_row
            )
        if self.kind == "pillars":
            return pillars_mask(height, width, self.spacing, self.size, self.band)
        return rects_mask(height, width, tuple(self.rects))
