"""Initial agent placement — the paper's data-preparation stage.

Agents of each group are placed "randomly but kept confined to the
pre-defined number of rows". We realise the random choice with a keyed
Philox shuffle of the band's cells so placement is a pure function of
``(seed, group)`` and therefore identical for every engine.

Agent indexing follows the paper's Figure 2b: indices start at 1 and
increase in row-major order of the *occupied cells*, top group first, so
the index matrix ends up exactly like the paper's example (top agents
1..n_top in reading order, bottom agents n_top+1..n_top+n_bottom).
"""

from __future__ import annotations

import numpy as np

from ..errors import PlacementError
from ..rng import PhiloxKeyedRNG, Stream
from ..types import Group
from .environment import Environment

__all__ = ["place_groups", "band_cells"]


def band_cells(height: int, width: int, group: Group, band: int) -> np.ndarray:
    """All ``(row, col)`` cells of a group's starting band, row-major."""
    lo, hi = Group(group).start_row_range(height, band)
    rows = np.repeat(np.arange(lo, hi, dtype=np.int64), width)
    cols = np.tile(np.arange(width, dtype=np.int64), hi - lo)
    return np.stack([rows, cols], axis=1)


def _choose_cells(
    rng: PhiloxKeyedRNG,
    height: int,
    width: int,
    group: Group,
    band: int,
    n: int,
    blocked=None,
) -> np.ndarray:
    """Pick ``n`` distinct free band cells, returned in row-major order.

    Each band cell draws one keyed uniform; the ``n`` smallest draws win.
    This is order-independent (no sequential shuffle state) and unbiased.
    ``blocked`` is an optional (H, W) bool mask of unavailable cells
    (obstacles).
    """
    cells = band_cells(height, width, group, band)
    if blocked is not None:
        free = ~np.asarray(blocked, dtype=bool)[cells[:, 0], cells[:, 1]]
        cells = cells[free]
    if n > len(cells):
        raise PlacementError(
            f"cannot place {n} agents of group {group} in a band of "
            f"{len(cells)} free cells"
        )
    lanes = cells[:, 0].astype(np.uint64) * np.uint64(width) + cells[:, 1].astype(
        np.uint64
    )
    u = rng.uniform(Stream.PLACEMENT, step=int(group), lane=lanes)
    order = np.argsort(u, kind="stable")[:n]
    chosen = cells[np.sort(order)]
    return chosen


def place_groups(
    height: int,
    width: int,
    n_per_side: int,
    band: int,
    rng: PhiloxKeyedRNG,
    obstacles=None,
) -> Environment:
    """Build an :class:`Environment` with both groups placed in their bands.

    Returns the environment; agent ``i`` of the top group gets index ``i+1``
    (1-based), bottom agents follow after all top agents. ``obstacles`` is
    an optional (H, W) bool mask applied before placement.
    """
    env = Environment(height, width)
    if obstacles is not None:
        env.add_obstacles(obstacles)
    next_index = 1
    for group in (Group.TOP, Group.BOTTOM):
        chosen = _choose_cells(
            rng, height, width, group, band, n_per_side, blocked=obstacles
        )
        rows = chosen[:, 0]
        cols = chosen[:, 1]
        env.mat[rows, cols] = int(group)
        env.index[rows, cols] = np.arange(
            next_index, next_index + n_per_side, dtype=np.int32
        )
        next_index += n_per_side
    env.validate()
    return env
