"""Grid substrate: environment matrices, neighbourhoods, distances, placement."""

from .distance import MIN_DISTANCE, DistanceTable, build_distance_tables
from .environment import Environment
from .neighborhood import (
    ABSOLUTE_OFFSETS,
    SLOT_OFFSETS,
    STEP_COSTS,
    absolute_offsets_array,
    offsets_array,
    slot_offsets,
    step_cost,
)
from .obstacles import ObstacleSpec, bottleneck_mask, pillars_mask, rects_mask
from .placement import band_cells, place_groups

__all__ = [
    "Environment",
    "DistanceTable",
    "build_distance_tables",
    "MIN_DISTANCE",
    "SLOT_OFFSETS",
    "ABSOLUTE_OFFSETS",
    "STEP_COSTS",
    "slot_offsets",
    "offsets_array",
    "absolute_offsets_array",
    "step_cost",
    "place_groups",
    "band_cells",
    "ObstacleSpec",
    "bottleneck_mask",
    "pillars_mask",
    "rects_mask",
]
