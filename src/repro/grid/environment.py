"""The environment matrix ``mat`` and index matrix (paper Figures 2a/2b).

``mat`` holds the cell labels (0 empty, 1 top-group agent, 2 bottom-group
agent). The index matrix holds, for occupied cells, the 1-based row of the
property matrix belonging to the agent standing there; empty cells hold 0
(which addresses the sentinel 0th row of the property/scan matrices — the
paper's trick for letting threads on empty cells write somewhere harmless).
"""

from __future__ import annotations

import numpy as np

from ..backend import resolve_backend
from ..types import CellState, Group

__all__ = ["Environment"]


class Environment:
    """Mutable 2-D cell grid with the paper's ``mat`` / index-matrix pair.

    ``backend`` selects the array namespace the matrices live on (host
    NumPy by default). Placement builds environments on the host; engines
    move them to their device with :meth:`to_backend` before stepping.
    """

    def __init__(self, height: int, width: int, backend=None) -> None:
        if height < 1 or width < 1:
            raise ValueError(f"grid dims must be positive, got {height}x{width}")
        self.height = int(height)
        self.width = int(width)
        self.backend = resolve_backend(backend)
        xp = self.backend.xp
        #: Cell labels, int8: CellState values.
        self.mat = xp.zeros((self.height, self.width), dtype=np.int8)
        #: 1-based agent indices; 0 marks an empty cell.
        self.index = xp.zeros((self.height, self.width), dtype=np.int32)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        """Grid shape ``(height, width)``."""
        return (self.height, self.width)

    @property
    def n_cells(self) -> int:
        """Total number of cells."""
        return self.height * self.width

    def in_bounds(self, row: int, col: int) -> bool:
        """True when ``(row, col)`` lies inside the grid."""
        return 0 <= row < self.height and 0 <= col < self.width

    def is_empty(self, row: int, col: int) -> bool:
        """True when the in-bounds cell ``(row, col)`` is unoccupied."""
        return self.mat[row, col] == CellState.EMPTY

    def count(self, group: Group) -> int:
        """Number of agents of ``group`` currently on the grid."""
        return int(self.backend.xp.count_nonzero(self.mat == int(Group(group))))

    def occupied_cells(self) -> np.ndarray:
        """``(n, 2)`` array of (row, col) of occupied cells, row-major order."""
        xp = self.backend.xp
        rows, cols = xp.nonzero(self.mat)
        return xp.stack([rows, cols], axis=1)

    def cell_lane(self, row, col):
        """Row-major lane id of a cell — the RNG lane for per-cell draws."""
        xp = self.backend.xp
        return xp.asarray(row, dtype=np.uint64) * np.uint64(self.width) + xp.asarray(
            col, dtype=np.uint64
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def place(self, row: int, col: int, label: int, agent_index: int) -> None:
        """Place an agent on an empty cell."""
        if not self.in_bounds(row, col):
            raise ValueError(f"cell ({row}, {col}) out of bounds {self.shape}")
        if self.mat[row, col] != CellState.EMPTY:
            raise ValueError(f"cell ({row}, {col}) already occupied")
        if agent_index < 1:
            raise ValueError(f"agent_index must be >= 1, got {agent_index}")
        self.mat[row, col] = label
        self.index[row, col] = agent_index

    def move(self, src_row: int, src_col: int, dst_row: int, dst_col: int) -> None:
        """Move the agent at src into the empty cell dst (exchange contents)."""
        if self.mat[src_row, src_col] == CellState.EMPTY:
            raise ValueError(f"source cell ({src_row}, {src_col}) is empty")
        if self.mat[dst_row, dst_col] != CellState.EMPTY:
            raise ValueError(f"destination cell ({dst_row}, {dst_col}) occupied")
        self.mat[dst_row, dst_col] = self.mat[src_row, src_col]
        self.index[dst_row, dst_col] = self.index[src_row, src_col]
        self.mat[src_row, src_col] = CellState.EMPTY
        self.index[src_row, src_col] = 0

    # ------------------------------------------------------------------
    # Copies / comparison
    # ------------------------------------------------------------------
    def copy(self) -> "Environment":
        """Deep copy of the environment (same backend)."""
        env = Environment(self.height, self.width, backend=self.backend)
        env.mat[...] = self.mat
        env.index[...] = self.index
        return env

    def to_backend(self, backend) -> "Environment":
        """The same grid with its matrices on ``backend``.

        Returns ``self`` when the backend already matches (the zero-copy
        NumPy-to-NumPy path); otherwise a transferred copy.
        """
        backend = resolve_backend(backend)
        if backend is self.backend:
            return self
        env = Environment(self.height, self.width, backend=backend)
        env.mat = backend.from_host(self.backend.to_host(self.mat))
        env.index = backend.from_host(self.backend.to_host(self.index))
        return env

    def equals(self, other: "Environment") -> bool:
        """Exact equality of both matrices (the engine-equivalence check)."""
        xp = self.backend.xp
        return (
            self.shape == other.shape
            and bool(xp.array_equal(self.mat, other.mat))
            and bool(xp.array_equal(self.index, other.index))
        )

    def add_obstacles(self, mask: np.ndarray) -> None:
        """Mark cells as static obstacles (walls, pillars, barriers).

        Obstacle cells read as occupied to every kernel but carry no agent
        index; placing obstacles over agents is rejected.
        """
        xp = self.backend.xp
        mask = self.backend.from_host(np.asarray(mask, dtype=bool))
        if mask.shape != self.shape:
            raise ValueError(
                f"obstacle mask shape {mask.shape} != grid shape {self.shape}"
            )
        if bool(xp.any((self.mat != CellState.EMPTY) & mask)):
            raise ValueError("obstacle mask overlaps occupied cells")
        self.mat[mask] = CellState.OBSTACLE

    def obstacle_mask(self) -> np.ndarray:
        """Boolean mask of obstacle cells."""
        return self.mat == CellState.OBSTACLE

    def validate(self) -> None:
        """Check the mat/index consistency invariants; raise on violation."""
        xp = self.backend.xp
        empty = self.mat == CellState.EMPTY
        if bool(xp.any(self.index[empty] != 0)):
            raise AssertionError("index matrix non-zero on an empty cell")
        agents = (self.mat == CellState.TOP) | (self.mat == CellState.BOTTOM)
        if bool(xp.any(self.index[agents] < 1)):
            raise AssertionError("agent cell without a valid agent index")
        obstacles = self.mat == CellState.OBSTACLE
        if bool(xp.any(self.index[obstacles] != 0)):
            raise AssertionError("obstacle cell carries an agent index")
        idx = self.index[agents]
        if int(xp.unique(idx).size) != int(idx.size):
            raise AssertionError("duplicate agent index in the index matrix")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Environment({self.height}x{self.width}, "
            f"top={self.count(Group.TOP)}, bottom={self.count(Group.BOTTOM)})"
        )
