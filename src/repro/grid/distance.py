"""Distance tables — the paper's constant-memory distance matrix.

For an agent of group g in row i, the distance of neighbour slot s to the
target (the end row of the opposite side) is

    D(i, s) = sqrt(rowdist(i + dr_s)**2 + dc_s**2)

where ``rowdist(r)`` is the vertical distance from row r to the group's
target row, and (dr_s, dc_s) is the slot offset. Because the target is a
whole row, D depends only on the agent's row and the slot — the paper
pre-computes exactly this table once and stores it in constant memory.

For a TOP agent at vertical distance d from its target this yields

    D1 = d-1            (forward)
    D2 = D3 = sqrt((d-1)^2 + 1)   (forward diagonals)
    D4 = D5 = sqrt(d^2 + 1)       (laterals)
    D6 = d+1            (backward)
    D7 = D8 = sqrt((d+1)^2 + 1)   (backward diagonals)

which reproduces the paper's ranking: slot 1 is always nearest, then 2/3,
then 4/5, then 6, then 7/8. Slots whose row falls outside the grid get
``inf`` (never candidates). A forward cell sitting exactly on the target
row has D = 0; eq. 1 requires D != 0, so distances are floored at
``MIN_DISTANCE`` which makes a target-row cell maximally attractive.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..backend import resolve_backend
from ..types import Group, N_NEIGHBOR_SLOTS
from .neighborhood import slot_offsets

__all__ = ["MIN_DISTANCE", "DistanceTable", "build_distance_tables"]

#: Floor applied to distances so eq. 1 / eq. 2 stay defined on the target row.
MIN_DISTANCE = 1e-6


class DistanceTable:
    """Per-(row, slot) distance-to-target lookup for one group.

    Attributes
    ----------
    table:
        ``(height, 8)`` float64; ``table[i, s-1]`` is the distance of slot
        ``s`` from the target when the agent stands in row ``i``. ``inf``
        marks slots whose row is outside the grid.

    ``scan_range`` implements the paper's Section VII extension
    ("increasing the scanning range... to make decisions would be more
    practical"): the heuristic evaluates the cell ``scan_range`` steps
    along the slot direction (clamped at the grid edge) while the movement
    range stays 1 — agents look farther than they step. The default of 1
    reproduces the paper's evaluated model exactly.
    """

    def __init__(
        self, height: int, group: Group, scan_range: int = 1, backend=None
    ) -> None:
        if height < 2:
            raise ValueError(f"height must be >= 2, got {height}")
        if scan_range < 1:
            raise ValueError(f"scan_range must be >= 1, got {scan_range}")
        self.height = int(height)
        self.group = Group(group)
        self.scan_range = int(scan_range)
        self.backend = resolve_backend(backend)
        self.target_row = self.group.target_row(self.height)
        # Built on the host (pure setup), then moved to the backend device —
        # the constant-memory upload.
        table = self._build()
        if not self.backend.capabilities.is_gpu:
            # Read-only: this is the constant-memory analogue.
            table.setflags(write=False)
        self.table = self.backend.from_host(table)

    def _build(self) -> np.ndarray:
        rows = np.arange(self.height, dtype=np.int64)
        table = np.empty((self.height, N_NEIGHBOR_SLOTS), dtype=np.float64)
        r = self.scan_range
        for s, (dr, dc) in enumerate(slot_offsets(self.group)):
            nrow = rows + dr  # the movement cell decides availability
            inside = (nrow >= 0) & (nrow < self.height)
            look_row = np.clip(rows + r * dr, 0, self.height - 1)
            rowdist = np.abs(self.target_row - look_row).astype(np.float64)
            d = np.sqrt(rowdist * rowdist + float((r * dc) * (r * dc)))
            d = np.maximum(d, MIN_DISTANCE)
            table[:, s] = np.where(inside, d, np.inf)
        return table

    def distances(self, rows) -> np.ndarray:
        """Distances for agents in ``rows``: shape ``(n, 8)``."""
        return self.table[self.backend.xp.asarray(rows, dtype=np.int64)]

    def distance(self, row: int, slot: int) -> float:
        """Distance of 1-based ``slot`` for an agent in ``row``."""
        if not (1 <= slot <= N_NEIGHBOR_SLOTS):
            raise ValueError(f"slot must be in 1..{N_NEIGHBOR_SLOTS}, got {slot}")
        return float(self.table[row, slot - 1])

    def vertical_distance(self, row: int) -> int:
        """Vertical cell distance from ``row`` to the target row."""
        return abs(self.target_row - int(row))


def build_distance_tables(
    height: int, scan_range: int = 1, backend=None
) -> Dict[Group, DistanceTable]:
    """Distance tables for both groups on a grid of ``height`` rows."""
    return {
        g: DistanceTable(height, g, scan_range, backend=backend)
        for g in (Group.TOP, Group.BOTTOM)
    }
