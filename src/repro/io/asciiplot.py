"""Terminal line plots.

Offline stand-in for the paper's MATLAB figures: multi-series scatter/line
charts rendered with unicode block characters, used by the experiment
drivers and examples so every figure is viewable in a terminal and
reproducible in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["line_plot", "bar_chart"]

_MARKERS = "ox+*#@%&"


def line_plot(
    series: Dict[str, Sequence[float]],
    x: Optional[Sequence[float]] = None,
    width: int = 72,
    height: int = 20,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render named y-series against a shared x-axis as ASCII art.

    Returns the chart as a string (print it). Each series gets a marker
    from ``oxX+*...``; the legend maps markers to names.
    """
    if not series:
        raise ValueError("need at least one series")
    ys = {k: np.asarray(v, dtype=np.float64).ravel() for k, v in series.items()}
    n = max(v.size for v in ys.values())
    if n == 0:
        raise ValueError("series are empty")
    xs = (
        np.asarray(x, dtype=np.float64).ravel()
        if x is not None
        else np.arange(n, dtype=np.float64)
    )
    finite_vals = np.concatenate([v[np.isfinite(v)] for v in ys.values()])
    if finite_vals.size == 0:
        raise ValueError("no finite values to plot")
    y_lo, y_hi = float(finite_vals.min()), float(finite_vals.max())
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(xs.min()), float(xs.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for si, (name, yv) in enumerate(ys.items()):
        marker = _MARKERS[si % len(_MARKERS)]
        for i in range(min(yv.size, xs.size)):
            if not np.isfinite(yv[i]):
                continue
            cx = int(round((xs[i] - x_lo) / (x_hi - x_lo) * (width - 1)))
            cy = int(round((yv[i] - y_lo) / (y_hi - y_lo) * (height - 1)))
            canvas[height - 1 - cy][cx] = marker

    lines = []
    if title:
        lines.append(title.center(width + 12))
    for r, row in enumerate(canvas):
        y_val = y_hi - (y_hi - y_lo) * r / (height - 1)
        lines.append(f"{y_val:>10.3g} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':>11s} {x_lo:<.4g}{'':^{max(1, width - 16)}}{x_hi:>.4g}")
    if xlabel:
        lines.append(xlabel.center(width + 12))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}" for i, name in enumerate(ys)
    )
    lines.append(legend.center(width + 12))
    if ylabel:
        lines.insert(1 if title else 0, f"[y: {ylabel}]")
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal ASCII bar chart."""
    vals = np.asarray(values, dtype=np.float64)
    if vals.size == 0 or len(labels) != vals.size:
        raise ValueError("labels and values must be equal-length and non-empty")
    peak = float(np.max(np.abs(vals))) or 1.0
    label_w = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, v in zip(labels, vals):
        bar = "#" * int(round(abs(v) / peak * width))
        lines.append(f"{str(label):>{label_w}s} | {bar} {v:.4g}")
    return "\n".join(lines)
