"""Wire format for :class:`~repro.engine.base.RunResult`.

The serving layer persists completed results in the content-addressed
cache and ships them over HTTP; both need a JSON round trip that
preserves every field bit-for-bit (timelines included, when recorded).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..engine.base import RunResult
from ..errors import ConfigurationError

__all__ = ["run_result_to_dict", "run_result_from_dict"]


def _timeline_out(arr) -> Optional[list]:
    return None if arr is None else np.asarray(arr).tolist()


def _timeline_in(values) -> Optional[np.ndarray]:
    return None if values is None else np.asarray(values, dtype=np.int64)


def run_result_to_dict(result: RunResult) -> dict:
    """JSON-ready dict for a run result (inverse of
    :func:`run_result_from_dict`)."""
    return {
        "platform": result.platform,
        "seed": int(result.seed),
        "steps_run": int(result.steps_run),
        "throughput_total": int(result.throughput_total),
        "throughput_top": int(result.throughput_top),
        "throughput_bottom": int(result.throughput_bottom),
        "moved_per_step": _timeline_out(result.moved_per_step),
        "crossings_per_step": _timeline_out(result.crossings_per_step),
    }


def run_result_from_dict(data: dict) -> RunResult:
    """Rebuild a :class:`RunResult` written by :func:`run_result_to_dict`."""
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"result payload must be a JSON object, got {type(data).__name__}"
        )
    try:
        return RunResult(
            platform=str(data["platform"]),
            seed=int(data["seed"]),
            steps_run=int(data["steps_run"]),
            throughput_total=int(data["throughput_total"]),
            throughput_top=int(data["throughput_top"]),
            throughput_bottom=int(data["throughput_bottom"]),
            moved_per_step=_timeline_in(data.get("moved_per_step")),
            crossings_per_step=_timeline_in(data.get("crossings_per_step")),
        )
    except KeyError as exc:
        raise ConfigurationError(f"result payload missing field {exc}") from None
