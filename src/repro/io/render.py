"""Grid rendering for terminals.

Visual inspection of the environment matrix: top agents render as ``v``
(moving down), bottom agents as ``^`` (moving up), empty cells as ``.``.
Large grids can be downsampled into a density view.
"""

from __future__ import annotations

import numpy as np

from ..engine.base import BaseEngine
from ..types import Group

__all__ = ["render_grid", "render_density", "render_engine"]

_GLYPHS = {0: ".", int(Group.TOP): "v", int(Group.BOTTOM): "^", 3: "#"}
_SHADES = " .:-=+*#%@"


def render_grid(mat: np.ndarray, max_cols: int = 160) -> str:
    """Render ``mat`` cell-per-character (clipped to ``max_cols`` columns)."""
    mat = np.asarray(mat)
    cols = min(mat.shape[1], max_cols)
    rows = []
    for r in range(mat.shape[0]):
        rows.append("".join(_GLYPHS.get(int(v), "?") for v in mat[r, :cols]))
    return "\n".join(rows)


def render_density(mat: np.ndarray, out_rows: int = 24, out_cols: int = 72) -> str:
    """Downsampled dominant-group density view for large grids.

    Each output character covers a block of cells; the glyph brightness
    encodes occupancy and the sign encodes the dominant group (``v`` rows
    vs ``^`` rows are summarised as lowercase/uppercase shading is not
    distinguishable, so we show net direction: 'v', '^' or mixed 'x' for
    blocks above half the peak occupancy, shades below).
    """
    mat = np.asarray(mat)
    h, w = mat.shape
    out_rows = min(out_rows, h)
    out_cols = min(out_cols, w)
    r_edges = np.linspace(0, h, out_rows + 1, dtype=np.int64)
    c_edges = np.linspace(0, w, out_cols + 1, dtype=np.int64)
    lines = []
    for i in range(out_rows):
        row = []
        for j in range(out_cols):
            block = mat[r_edges[i] : r_edges[i + 1], c_edges[j] : c_edges[j + 1]]
            n_top = int(np.count_nonzero(block == int(Group.TOP)))
            n_bot = int(np.count_nonzero(block == int(Group.BOTTOM)))
            occ = (n_top + n_bot) / block.size
            if occ >= 0.5:
                if n_top > 2 * n_bot:
                    row.append("v")
                elif n_bot > 2 * n_top:
                    row.append("^")
                else:
                    row.append("x")
            else:
                row.append(_SHADES[min(len(_SHADES) - 1, int(occ * 2 * len(_SHADES)))])
        lines.append("".join(row))
    return "\n".join(lines)


def render_engine(engine: BaseEngine, max_cells: int = 4000) -> str:
    """Render an engine's environment, choosing full or density view.

    Rendering is a host-side recording boundary: the grid is brought back
    through the engine's backend first, so device-resident (CuPy) engines
    render without an implicit-conversion error.
    """
    mat = engine.backend.to_host(engine.env.mat)
    if mat.size <= max_cells:
        return render_grid(mat)
    return render_density(mat)
