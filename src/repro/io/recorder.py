"""Result recording.

The paper records simulation data "into text files and MATLAB is used for
plotting"; this module reproduces that data flow with whitespace-delimited
text tables (MATLAB ``load``-compatible), JSON for structured records, and
round-trip readers used by the experiment harness and tests.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, is_dataclass
from typing import Dict, List, Sequence

import numpy as np

__all__ = [
    "write_text_table",
    "read_text_table",
    "write_json_record",
    "read_json_record",
]


def write_text_table(
    path: str,
    columns: Dict[str, Sequence],
    header_comment: str = "",
) -> None:
    """Write named columns as a whitespace-delimited text table.

    The header line is a ``#`` comment listing the column names (MATLAB's
    ``load`` skips it with ``importdata``; NumPy's ``loadtxt`` skips ``#``
    natively).
    """
    names = list(columns)
    if not names:
        raise ValueError("need at least one column")
    arrays = [np.asarray(columns[n]).ravel() for n in names]
    length = arrays[0].size
    for name, arr in zip(names, arrays):
        if arr.size != length:
            raise ValueError(
                f"column {name!r} has {arr.size} rows, expected {length}"
            )
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        if header_comment:
            for line in header_comment.splitlines():
                fh.write(f"# {line}\n")
        fh.write("# " + " ".join(names) + "\n")
        for i in range(length):
            fh.write(" ".join(_fmt(arr[i]) for arr in arrays) + "\n")


def _fmt(value) -> str:
    if isinstance(value, (np.floating, float)):
        return f"{float(value):.10g}"
    return str(value)


def read_text_table(path: str) -> Dict[str, np.ndarray]:
    """Read a table written by :func:`write_text_table`."""
    names: List[str] = []
    with open(path, "r", encoding="utf-8") as fh:
        comment_lines = []
        for line in fh:
            if line.startswith("#"):
                comment_lines.append(line[1:].strip())
            else:
                break
    if not comment_lines:
        raise ValueError(f"{path} has no header comment with column names")
    names = comment_lines[-1].split()
    data = np.loadtxt(path, ndmin=2)
    if data.shape[1] != len(names):
        raise ValueError(
            f"{path}: {data.shape[1]} data columns but {len(names)} names"
        )
    return {name: data[:, i] for i, name in enumerate(names)}


def write_json_record(path: str, record) -> None:
    """Write a dataclass or dict as pretty JSON (numpy-safe)."""
    if is_dataclass(record) and not isinstance(record, type):
        record = asdict(record)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, default=_json_default)
        fh.write("\n")


def _json_default(obj):
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"cannot serialise {type(obj)!r}")


def read_json_record(path: str) -> dict:
    """Read a JSON record written by :func:`write_json_record`."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
