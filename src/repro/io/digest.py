"""Canonical content digests for configs and engine state.

Two digest families back the repo's reproducibility machinery:

* :func:`config_digest` — a canonical SHA-256 over a resolved
  :class:`~repro.config.SimulationConfig`. Stable across processes,
  Python versions and field order (the JSON encoding sorts keys), so it
  can key a content-addressed result cache on disk: two requests with
  byte-equal digests are the *same simulation* and may share one result.
  The engines' bit-identity guarantee is what makes this sound — a
  digest never encodes which engine or backend executes, because every
  engine/backend pair produces the same trajectory for the same config.
* :func:`engine_state_digest` — a SHA-256 over an engine's final agent
  property matrix and environment grid, the golden-trajectory fingerprint
  the backend parity suite pins against digests captured from the seed
  engines.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

__all__ = ["canonical_config_json", "config_digest", "engine_state_digest"]


def canonical_config_json(config) -> str:
    """The canonical JSON encoding of a config (sorted keys, no spaces).

    Hash input for :func:`config_digest`; exposed separately so tests and
    debugging tools can inspect exactly what was hashed. The ``backend``
    field is excluded for the same reason the engine never enters the
    digest: it selects an executor, not a simulation, and trajectories
    are bit-identical across executors.
    """
    spec = config.to_dict()
    spec.pop("backend", None)
    return json.dumps(spec, sort_keys=True, separators=(",", ":"), allow_nan=False)


def config_digest(config) -> str:
    """Canonical hex SHA-256 of a resolved simulation config.

    >>> from repro.config import SimulationConfig
    >>> a = SimulationConfig(height=16, width=16, n_per_side=8, steps=5)
    >>> config_digest(a) == config_digest(a.replace())
    True
    >>> config_digest(a) == config_digest(a.replace(seed=1))
    False
    """
    blob = canonical_config_json(config).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def engine_state_digest(engine, length: int = 16) -> str:
    """Hex SHA-256 fingerprint of an engine's final simulation state.

    Hashes the agent property matrix (ids, rows, cols, tour, crossed,
    crossed_step) and the environment grid, after a host round-trip
    through the engine's backend — so NumPy and CuPy runs of the same
    trajectory produce the same fingerprint. ``length`` truncates the hex
    digest (the parity suite's goldens keep 16 chars).
    """
    h = hashlib.sha256()
    to_host = engine.backend.to_host
    pop = engine.pop
    for arr in (pop.ids, pop.rows, pop.cols, pop.tour, pop.crossed, pop.crossed_step):
        h.update(np.ascontiguousarray(to_host(arr)).tobytes())
    h.update(np.ascontiguousarray(to_host(engine.env.mat)).tobytes())
    return h.hexdigest()[:length]
