"""I/O: text-table recording (paper data flow), ASCII plots, grid rendering."""

from .asciiplot import bar_chart, line_plot
from .recorder import (
    read_json_record,
    read_text_table,
    write_json_record,
    write_text_table,
)
from .render import render_density, render_engine, render_grid

__all__ = [
    "write_text_table",
    "read_text_table",
    "write_json_record",
    "read_json_record",
    "line_plot",
    "bar_chart",
    "render_grid",
    "render_density",
    "render_engine",
]
