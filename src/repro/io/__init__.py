"""I/O: text-table recording (paper data flow), ASCII plots, grid
rendering, canonical content digests and result wire formats."""

from .asciiplot import bar_chart, line_plot
from .digest import canonical_config_json, config_digest, engine_state_digest
from .recorder import (
    read_json_record,
    read_text_table,
    write_json_record,
    write_text_table,
)
from .render import render_density, render_engine, render_grid
from .results import run_result_from_dict, run_result_to_dict

__all__ = [
    "write_text_table",
    "read_text_table",
    "write_json_record",
    "read_json_record",
    "line_plot",
    "bar_chart",
    "render_grid",
    "render_density",
    "render_engine",
    "canonical_config_json",
    "config_digest",
    "engine_state_digest",
    "run_result_to_dict",
    "run_result_from_dict",
]
