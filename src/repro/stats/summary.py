"""Descriptive statistics helpers for experiment reporting."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import StatsError

__all__ = ["Summary", "summarize", "mean_ci"]


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} med={self.median:.4g} max={self.maximum:.4g}"
        )


def summarize(values) -> Summary:
    """Build a :class:`Summary`; raises on empty input."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise StatsError("cannot summarize an empty sample")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
    )


def mean_ci(values, confidence: float = 0.95) -> tuple:
    """``(mean, halfwidth)`` normal-approximation confidence interval."""
    from scipy import stats as _sps

    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise StatsError("cannot compute a CI on an empty sample")
    if not (0.0 < confidence < 1.0):
        raise StatsError(f"confidence must be in (0, 1), got {confidence}")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, float("inf")
    se = float(arr.std(ddof=1) / np.sqrt(arr.size))
    t = float(_sps.t.ppf(0.5 + confidence / 2.0, arr.size - 1))
    return mean, t * se
