"""Link functions for generalized linear models.

Only what the paper's Fig 6b analysis needs: the binomial family with the
logit link (plus probit as a robustness alternative), each exposing the
inverse link, its derivative and the variance function used by IRLS.
"""

from __future__ import annotations

import abc

import numpy as np
from scipy import stats as _sps

__all__ = ["Link", "LogitLink", "ProbitLink", "get_link"]

#: Clamp for fitted probabilities, keeps IRLS weights finite.
_EPS = 1e-10


class Link(abc.ABC):
    """A GLM link: eta = g(mu) with mu in (0, 1) for the binomial family."""

    name: str = "abstract"

    @abc.abstractmethod
    def inverse(self, eta: np.ndarray) -> np.ndarray:
        """mu = g^{-1}(eta)."""

    @abc.abstractmethod
    def inverse_deriv(self, eta: np.ndarray) -> np.ndarray:
        """d mu / d eta."""

    def clip(self, mu: np.ndarray) -> np.ndarray:
        """Keep probabilities strictly inside (0, 1)."""
        return np.clip(mu, _EPS, 1.0 - _EPS)


class LogitLink(Link):
    """The canonical binomial link: eta = log(mu / (1 - mu))."""

    name = "logit"

    def inverse(self, eta: np.ndarray) -> np.ndarray:
        eta = np.asarray(eta, dtype=np.float64)
        # Numerically stable two-sided logistic.
        out = np.empty_like(eta)
        pos = eta >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-eta[pos]))
        ex = np.exp(eta[~pos])
        out[~pos] = ex / (1.0 + ex)
        return out

    def inverse_deriv(self, eta: np.ndarray) -> np.ndarray:
        mu = self.inverse(eta)
        return mu * (1.0 - mu)


class ProbitLink(Link):
    """eta = Phi^{-1}(mu); robustness alternative for the Fig 6b test."""

    name = "probit"

    def inverse(self, eta: np.ndarray) -> np.ndarray:
        return _sps.norm.cdf(np.asarray(eta, dtype=np.float64))

    def inverse_deriv(self, eta: np.ndarray) -> np.ndarray:
        return _sps.norm.pdf(np.asarray(eta, dtype=np.float64))


def get_link(name: str) -> Link:
    """Link registry lookup ("logit" or "probit")."""
    links = {"logit": LogitLink, "probit": ProbitLink}
    try:
        return links[name.lower()]()
    except KeyError:
        raise ValueError(f"unknown link {name!r}; expected one of {sorted(links)}") from None
