"""Statistics substrate: binomial GLM (IRLS), t-tests, summaries.

Implements the paper's Fig 6b validation analysis (binomial GLM of crossing
probability against agent count and a CPU/GPU platform indicator, with a
t-test on the platform coefficient) from first principles.
"""

from .glm import BinomialGLM, GLMResult, add_intercept
from .links import Link, LogitLink, ProbitLink, get_link
from .summary import Summary, mean_ci, summarize
from .tests_ import TTestResult, paired_ttest, wald_test, welch_ttest

__all__ = [
    "BinomialGLM",
    "GLMResult",
    "add_intercept",
    "Link",
    "LogitLink",
    "ProbitLink",
    "get_link",
    "TTestResult",
    "welch_ttest",
    "paired_ttest",
    "wald_test",
    "Summary",
    "summarize",
    "mean_ci",
]
