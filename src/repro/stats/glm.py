"""Binomial generalized linear model fitted by IRLS.

The paper validates the GPU against the CPU (Fig 6b) by fitting "a binomial
generalized linear model, where the probability that an agent crosses over
to the other side is modeled with respect to the different number of agents
and an indicator for the simulation run being run on either the CPU or
GPU", then testing the platform indicator (t-test, p = 0.6145). This module
implements that model from scratch: iteratively reweighted least squares
with the logit link, Wald/t inference on coefficients, deviance and a
summary table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np
from scipy import stats as _sps

from ..errors import StatsError
from .links import Link, LogitLink, get_link

__all__ = ["GLMResult", "BinomialGLM", "add_intercept"]


def add_intercept(x: np.ndarray) -> np.ndarray:
    """Prepend a column of ones to a design matrix.

    A 1-D input is treated as a single predictor column.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 1:
        x = x[:, None]
    if x.ndim != 2:
        raise StatsError(f"design must be 1-D or 2-D, got shape {x.shape}")
    return np.column_stack([np.ones(x.shape[0]), x])


@dataclass
class GLMResult:
    """Fitted binomial GLM.

    ``pvalues`` use the t distribution with the residual degrees of freedom
    (the paper reports a t-test on the platform coefficient); ``pvalues_z``
    give the asymptotic normal (Wald) version.
    """

    coef: np.ndarray
    stderr: np.ndarray
    tvalues: np.ndarray
    pvalues: np.ndarray
    pvalues_z: np.ndarray
    df_resid: int
    deviance: float
    null_deviance: float
    iterations: int
    converged: bool
    #: Estimated dispersion (1.0 for the plain binomial family; the Pearson
    #: X^2/df estimate under the quasi-binomial option).
    dispersion: float = 1.0
    names: List[str] = field(default_factory=list)

    def coef_table(self) -> str:
        """Human-readable coefficient table."""
        lines = [
            f"{'term':>12s} {'coef':>12s} {'stderr':>10s} {'t':>8s} {'p':>8s}"
        ]
        for i, name in enumerate(self.names):
            lines.append(
                f"{name:>12s} {self.coef[i]:>12.5g} {self.stderr[i]:>10.3g} "
                f"{self.tvalues[i]:>8.3f} {self.pvalues[i]:>8.4f}"
            )
        return "\n".join(lines)

    def test_coefficient(self, index_or_name) -> tuple:
        """``(t, p)`` for a single coefficient (the Fig 6b platform test)."""
        if isinstance(index_or_name, str):
            index = self.names.index(index_or_name)
        else:
            index = int(index_or_name)
        return float(self.tvalues[index]), float(self.pvalues[index])


class BinomialGLM:
    """Binomial GLM with counts/trials responses, fitted by IRLS.

    ``dispersion`` selects the variance model: ``"fixed"`` is the plain
    binomial family (dispersion 1); ``"pearson"`` is the quasi-binomial,
    scaling the coefficient covariance by the Pearson X^2/df estimate.
    Crowd-crossing counts are strongly over-dispersed relative to
    independent Bernoulli trials (jams are collective events), so the
    Fig 6b analysis uses the quasi-binomial.
    """

    def __init__(
        self,
        link: Optional[Link] = None,
        max_iter: int = 100,
        tol: float = 1e-10,
        dispersion: str = "fixed",
    ) -> None:
        self.link = link if link is not None else LogitLink()
        if isinstance(self.link, str):  # convenience
            self.link = get_link(self.link)
        if dispersion not in ("fixed", "pearson"):
            raise StatsError(
                f"dispersion must be 'fixed' or 'pearson', got {dispersion!r}"
            )
        self.dispersion = dispersion
        self.max_iter = int(max_iter)
        self.tol = float(tol)

    def fit(
        self,
        design: np.ndarray,
        successes: np.ndarray,
        trials: np.ndarray,
        names: Optional[Sequence[str]] = None,
    ) -> GLMResult:
        """Fit successes/trials against the design matrix (with intercept).

        Parameters
        ----------
        design:
            ``(n, p)`` design matrix — include the intercept column
            yourself or via :func:`add_intercept`.
        successes, trials:
            Per-observation counts; ``0 <= successes <= trials``.
        names:
            Optional coefficient names for the summary.
        """
        x = np.atleast_2d(np.asarray(design, dtype=np.float64))
        y = np.asarray(successes, dtype=np.float64)
        m = np.asarray(trials, dtype=np.float64)
        n, p = x.shape
        if y.shape != (n,) or m.shape != (n,):
            raise StatsError(
                f"shape mismatch: design {x.shape}, successes {y.shape}, trials {m.shape}"
            )
        if np.any(m <= 0):
            raise StatsError("all trial counts must be positive")
        if np.any((y < 0) | (y > m)):
            raise StatsError("successes must satisfy 0 <= successes <= trials")
        if n <= p:
            raise StatsError(f"need more observations ({n}) than parameters ({p})")

        prop = y / m
        # Standard IRLS initialisation: start from the adjusted proportions.
        mu = self.link.clip((y + 0.5) / (m + 1.0))
        eta = self._link_forward(mu)
        beta = np.zeros(p)
        converged = False
        it = 0
        for it in range(1, self.max_iter + 1):
            mu = self.link.clip(self.link.inverse(eta))
            dmu = self.link.inverse_deriv(eta)
            dmu = np.where(np.abs(dmu) < 1e-12, 1e-12, dmu)
            var = mu * (1.0 - mu) / m
            w = dmu * dmu / var
            z = eta + (prop - mu) / dmu
            wx = x * w[:, None]
            xtwx = x.T @ wx
            xtwz = wx.T @ z
            try:
                new_beta = np.linalg.solve(xtwx, xtwz)
            except np.linalg.LinAlgError as exc:
                raise StatsError(f"IRLS normal equations singular: {exc}") from exc
            delta = np.max(np.abs(new_beta - beta))
            beta = new_beta
            eta = x @ beta
            if delta < self.tol * (1.0 + np.max(np.abs(beta))):
                converged = True
                break

        mu = self.link.clip(self.link.inverse(eta))
        dmu = self.link.inverse_deriv(eta)
        dmu = np.where(np.abs(dmu) < 1e-12, 1e-12, dmu)
        var = mu * (1.0 - mu) / m
        w = dmu * dmu / var
        cov = np.linalg.inv(x.T @ (x * w[:, None]))
        df = n - p
        phi = 1.0
        if self.dispersion == "pearson":
            pearson = np.sum((prop - mu) ** 2 / var)
            phi = max(1.0, float(pearson / df))
            cov = cov * phi
        stderr = np.sqrt(np.diag(cov))
        tvals = beta / stderr
        pvals_t = 2.0 * _sps.t.sf(np.abs(tvals), df)
        pvals_z = 2.0 * _sps.norm.sf(np.abs(tvals))
        deviance = self._deviance(y, m, mu)
        null_mu = np.full(n, y.sum() / m.sum())
        null_dev = self._deviance(y, m, self.link.clip(null_mu))
        coef_names = (
            list(names) if names is not None else [f"x{i}" for i in range(p)]
        )
        if len(coef_names) != p:
            raise StatsError(f"got {len(coef_names)} names for {p} coefficients")
        return GLMResult(
            coef=beta,
            stderr=stderr,
            tvalues=tvals,
            pvalues=pvals_t,
            pvalues_z=pvals_z,
            df_resid=df,
            deviance=float(deviance),
            null_deviance=float(null_dev),
            iterations=it,
            converged=converged,
            dispersion=phi,
            names=coef_names,
        )

    def _link_forward(self, mu: np.ndarray) -> np.ndarray:
        """g(mu) via bisection-free closed forms for the known links."""
        if isinstance(self.link, LogitLink):
            return np.log(mu / (1.0 - mu))
        return _sps.norm.ppf(mu)

    @staticmethod
    def _deviance(y: np.ndarray, m: np.ndarray, mu: np.ndarray) -> float:
        """Binomial deviance with the usual 0*log(0) = 0 convention."""
        with np.errstate(divide="ignore", invalid="ignore"):
            term1 = np.where(y > 0, y * np.log(y / (m * mu)), 0.0)
            fail = m - y
            term2 = np.where(
                fail > 0, fail * np.log(fail / (m * (1.0 - mu))), 0.0
            )
        return float(2.0 * np.sum(term1 + term2))
