"""Hypothesis tests used by the experiment analyses.

Implemented from first principles on top of scipy's distribution functions:
Welch's two-sample t-test (the Fig 6b cross-check), the paired t-test, and
the Wald chi-square test for GLM coefficient subsets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _sps

from ..errors import StatsError

__all__ = ["TTestResult", "welch_ttest", "paired_ttest", "wald_test"]


@dataclass(frozen=True)
class TTestResult:
    """Outcome of a t-type test."""

    statistic: float
    pvalue: float
    df: float

    @property
    def significant(self) -> bool:
        """True at the conventional 5% level."""
        return self.pvalue < 0.05


def welch_ttest(a, b) -> TTestResult:
    """Welch's unequal-variance two-sample t-test (two-sided)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size < 2 or b.size < 2:
        raise StatsError("welch_ttest needs at least two observations per sample")
    va = a.var(ddof=1) / a.size
    vb = b.var(ddof=1) / b.size
    denom = np.sqrt(va + vb)
    if denom == 0:
        # Identical constant samples: no evidence of difference.
        return TTestResult(statistic=0.0, pvalue=1.0, df=float(a.size + b.size - 2))
    t = (a.mean() - b.mean()) / denom
    df = (va + vb) ** 2 / (va**2 / (a.size - 1) + vb**2 / (b.size - 1))
    p = 2.0 * _sps.t.sf(abs(t), df)
    return TTestResult(statistic=float(t), pvalue=float(p), df=float(df))


def paired_ttest(a, b) -> TTestResult:
    """Paired two-sided t-test on matched observations."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise StatsError(f"paired samples must match in shape: {a.shape} vs {b.shape}")
    if a.size < 2:
        raise StatsError("paired_ttest needs at least two pairs")
    d = a - b
    sd = d.std(ddof=1)
    if sd == 0:
        return TTestResult(statistic=0.0, pvalue=1.0, df=float(d.size - 1))
    t = d.mean() / (sd / np.sqrt(d.size))
    df = d.size - 1
    p = 2.0 * _sps.t.sf(abs(t), df)
    return TTestResult(statistic=float(t), pvalue=float(p), df=float(df))


def wald_test(coef: np.ndarray, cov: np.ndarray, indices) -> TTestResult:
    """Wald chi-square test that a subset of coefficients is zero.

    Returns the chi-square statistic in ``statistic`` with ``df`` equal to
    the subset size.
    """
    coef = np.asarray(coef, dtype=np.float64)
    cov = np.asarray(cov, dtype=np.float64)
    idx = np.asarray(indices, dtype=np.int64).ravel()
    if idx.size == 0:
        raise StatsError("wald_test needs at least one coefficient index")
    sub = coef[idx]
    sub_cov = cov[np.ix_(idx, idx)]
    try:
        stat = float(sub @ np.linalg.solve(sub_cov, sub))
    except np.linalg.LinAlgError as exc:
        raise StatsError(f"singular covariance in wald_test: {exc}") from exc
    p = float(_sps.chi2.sf(stat, idx.size))
    return TTestResult(statistic=stat, pvalue=p, df=float(idx.size))
