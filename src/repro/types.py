"""Core enumerations and small value types shared across the library.

The vocabulary follows the paper:

* cells of the environment matrix ``mat`` hold ``0`` (empty), ``1`` (agent of
  the top group) or ``2`` (agent of the bottom group);
* the eight neighbours of a cell are numbered 1..8 as in the paper's
  Figure 1, *relative to the agent's direction of travel* (slot 1 is always
  the forward cell, slots 2/3 the forward diagonals, 4/5 the laterals,
  6 the backward cell and 7/8 the backward diagonals).
"""

from __future__ import annotations

import enum
from typing import Tuple

__all__ = [
    "CellState",
    "Group",
    "NeighborSlot",
    "EMPTY",
    "TOP",
    "BOTTOM",
    "N_NEIGHBOR_SLOTS",
    "GroupLike",
    "coerce_group",
]

#: Number of neighbour slots in the Moore neighbourhood (paper Figure 1).
N_NEIGHBOR_SLOTS: int = 8


class CellState(enum.IntEnum):
    """Contents of a cell of the environment matrix ``mat``.

    ``OBSTACLE`` extends the paper's {0, 1, 2} alphabet with static walls:
    any non-zero value reads as "unavailable" to every kernel, so obstacles
    need no special-casing on the decision or movement paths.
    """

    EMPTY = 0
    TOP = 1
    BOTTOM = 2
    OBSTACLE = 3


class Group(enum.IntEnum):
    """A pedestrian group, identified by its label in ``mat``.

    ``TOP`` agents start in the first rows and target the last row;
    ``BOTTOM`` agents start in the last rows and target the first row.
    """

    TOP = 1
    BOTTOM = 2

    @property
    def forward_row_step(self) -> int:
        """Row increment of one forward step (+1 for TOP, -1 for BOTTOM)."""
        return 1 if self is Group.TOP else -1

    @property
    def opponent(self) -> "Group":
        """The other group."""
        return Group.BOTTOM if self is Group.TOP else Group.TOP

    def target_row(self, height: int) -> int:
        """End row this group tries to reach in a grid of ``height`` rows."""
        return height - 1 if self is Group.TOP else 0

    def start_row_range(self, height: int, band: int) -> Tuple[int, int]:
        """Half-open row range ``[lo, hi)`` of the initial placement band."""
        if band <= 0 or band > height:
            raise ValueError(f"band must be in [1, {height}], got {band}")
        if self is Group.TOP:
            return (0, band)
        return (height - band, height)


class NeighborSlot(enum.IntEnum):
    """Direction-relative neighbour numbering of the paper's Figure 1.

    Slot values are 1-based as in the paper; slot 0 is the centre cell and is
    never a movement candidate.
    """

    FORWARD = 1
    FORWARD_LEFT = 2
    FORWARD_RIGHT = 3
    LEFT = 4
    RIGHT = 5
    BACKWARD = 6
    BACKWARD_LEFT = 7
    BACKWARD_RIGHT = 8


EMPTY = CellState.EMPTY
TOP = Group.TOP
BOTTOM = Group.BOTTOM

GroupLike = "Group | int | str"


def coerce_group(value) -> Group:
    """Coerce an int label, name string or :class:`Group` into a ``Group``.

    >>> coerce_group(1) is Group.TOP
    True
    >>> coerce_group("bottom") is Group.BOTTOM
    True
    """
    if isinstance(value, Group):
        return value
    if isinstance(value, str):
        try:
            return Group[value.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown group name {value!r}") from None
    try:
        return Group(int(value))
    except ValueError:
        raise ValueError(f"unknown group label {value!r}") from None
