"""repro — GPU-accelerated nature-inspired bi-directional pedestrian movement.

Full reproduction of Dutta, McLeod & Friesen, "GPU Accelerated Nature
Inspired Methods for Modelling Large Scale Bi-Directional Pedestrian
Movement" (IPPS 2014 workshops): the Least Effort Model and the modified
Ant Colony Optimization pedestrian models, the four-stage data-driven
kernel pipeline (sequential, vectorized and tiled engines), a Fermi
execution-model cost simulator, and the full Figure 5 / Figure 6
experiment harness.

Quickstart::

    from repro import SimulationConfig, run_simulation
    cfg = SimulationConfig(height=64, width=64, n_per_side=256,
                           steps=500).with_model("aco")
    out = run_simulation(cfg, engine="vectorized")
    print(out.result.throughput_total, "agents crossed")
"""

from ._version import __version__
from .analytics import MetricStreamSpec, RunStore, scenario_key
from .backend import (
    ArrayBackend,
    BackendCapabilities,
    available_backends,
    register_backend,
    resolve_backend,
)
from .components import (
    MODEL_PARAMS,
    Registry,
    register_model,
    register_model_params,
)
from .components.hooks import HOOKS, PanicHook, StepHook, register_hook
from .components.scenarios import (
    SCENARIOS,
    build_scenario,
    expand_scenarios,
    register_scenario,
)
from .config import SimulationConfig, paper_config
from .engine import (
    BaseEngine,
    BatchedEngine,
    BatchedTimedResult,
    RunResult,
    SequentialEngine,
    StepReport,
    TimedRunResult,
    VectorizedEngine,
    available_engines,
    build_engine,
    run_batched,
    run_simulation,
)
from .errors import (
    AnalyticsError,
    BackendUnavailableError,
    ConfigurationError,
    EngineError,
    ExperimentError,
    LaunchConfigError,
    OccupancyError,
    PlacementError,
    ReproError,
    StatsError,
    WorkerCrashError,
)
from .exec import ExecutorPool
from .models import (
    ACOModel,
    ACOParams,
    GreedyParams,
    LEMModel,
    LEMParams,
    ModelParams,
    PheromoneField,
    RandomParams,
    build_model,
    params_from_name,
)
from .grid import ObstacleSpec
from .types import BOTTOM, EMPTY, TOP, CellState, Group, NeighborSlot

__all__ = [
    "__version__",
    # configuration
    "SimulationConfig",
    "paper_config",
    # component framework
    "Registry",
    "MODEL_PARAMS",
    "HOOKS",
    "SCENARIOS",
    "register_model",
    "register_model_params",
    "register_hook",
    "register_scenario",
    "StepHook",
    "PanicHook",
    "build_scenario",
    "expand_scenarios",
    # backends
    "ArrayBackend",
    "BackendCapabilities",
    "available_backends",
    "register_backend",
    "resolve_backend",
    # engines
    "BaseEngine",
    "SequentialEngine",
    "VectorizedEngine",
    "BatchedEngine",
    "build_engine",
    "available_engines",
    "run_simulation",
    "run_batched",
    "RunResult",
    "StepReport",
    "TimedRunResult",
    "BatchedTimedResult",
    # execution layer
    "ExecutorPool",
    # analytics
    "RunStore",
    "MetricStreamSpec",
    "scenario_key",
    # models
    "ModelParams",
    "LEMParams",
    "ACOParams",
    "RandomParams",
    "GreedyParams",
    "LEMModel",
    "ACOModel",
    "PheromoneField",
    "build_model",
    "params_from_name",
    # types
    "ObstacleSpec",
    "Group",
    "CellState",
    "NeighborSlot",
    "TOP",
    "BOTTOM",
    "EMPTY",
    # errors
    "ReproError",
    "AnalyticsError",
    "BackendUnavailableError",
    "ConfigurationError",
    "PlacementError",
    "EngineError",
    "LaunchConfigError",
    "OccupancyError",
    "StatsError",
    "ExperimentError",
    "WorkerCrashError",
]
