"""The optional CuPy GPU backend.

This is the **only** module allowed to import ``cupy``, and it does so
inside :func:`_import_cupy` — never at module top level — so importing
:mod:`repro` (and resolving the NumPy backend) works on machines without
a GPU stack. ``tests/test_backend.py`` enforces the guard with an AST
walk over the whole package, and CI greps for stray top-level imports.

When ``cupy`` is missing, :func:`make_cupy_backend` raises
:class:`~repro.errors.BackendUnavailableError` with install guidance
(``pip install repro[gpu]``); the CLI surfaces that as a clean exit 2.
The backend is unit-tested GPU-less by injecting a mock module pair
through the ``cupy_module``/``cupyx_module`` constructor hooks (see
``tests/test_backend_cupy_mock.py``).
"""

from __future__ import annotations

from typing import Tuple

from ..errors import BackendUnavailableError
from .core import ArrayBackend, BackendCapabilities

__all__ = ["CupyBackend", "make_cupy_backend"]


def _import_cupy() -> Tuple[object, object]:
    """Guarded import of ``(cupy, cupyx)``; the sole cupy import site.

    Kept as a module-level function so tests can monkeypatch it to inject
    a mock module pair (or a deterministic ImportError).
    """
    import cupy  # noqa: PLC0415 - deliberate lazy import; cupy is optional
    import cupyx  # noqa: PLC0415

    return cupy, cupyx


class CupyBackend(ArrayBackend):
    """Whole-array execution on a CUDA device through CuPy.

    The kernels' randomness (keyed Philox) is pure integer arithmetic and
    the decision paths avoid transcendental functions, so per-lane
    trajectories remain bit-identical to the NumPy backend.
    """

    def __init__(self, cupy_module=None, cupyx_module=None) -> None:
        if cupy_module is None:
            try:
                cupy_module, cupyx_module = _import_cupy()
            except ImportError as exc:
                raise BackendUnavailableError(
                    "the 'cupy' backend needs CuPy and a CUDA runtime; "
                    "install the GPU extra (pip install repro[gpu] or "
                    "pip install cupy-cuda12x) or run with --backend numpy"
                ) from exc
        if cupyx_module is None:
            raise BackendUnavailableError(
                "CupyBackend needs the cupyx module for scatter_add"
            )
        self.xp = cupy_module
        self._cupy = cupy_module
        self._cupyx = cupyx_module
        self.capabilities = BackendCapabilities(
            name="cupy",
            module="cupy",
            device="cuda",
            native_scatter_add=False,
            supports_float64=True,
        )

    def from_host(self, arr):
        """Host -> device transfer (``cupy.asarray``)."""
        return self._cupy.asarray(arr)

    def to_host(self, arr):
        """Device -> host transfer (``cupy.asnumpy``)."""
        return self._cupy.asnumpy(arr)

    def scatter_add(self, arr, index, values) -> None:
        """``cupyx.scatter_add`` — CuPy's unbuffered duplicate-safe scatter."""
        self._cupyx.scatter_add(arr, index, values)

    def synchronize(self) -> None:
        """Fence the current CUDA device stream (timing boundaries).

        Defensive attribute walk so GPU-less mock modules (which have no
        ``cuda`` submodule) degrade to a no-op.
        """
        cuda = getattr(self._cupy, "cuda", None)
        device = getattr(cuda, "Device", None) if cuda is not None else None
        if device is not None:
            device().synchronize()


def make_cupy_backend() -> CupyBackend:
    """Registry factory: build the CuPy backend or raise unavailability."""
    return CupyBackend()
