"""The optional CuPy GPU backend.

This is the **only** module allowed to import ``cupy``, and it does so
inside :func:`_import_cupy` — never at module top level — so importing
:mod:`repro` (and resolving the NumPy backend) works on machines without
a GPU stack. ``tests/test_backend.py`` enforces the guard with an AST
walk over the whole package, and CI greps for stray top-level imports.

When ``cupy`` is missing, :func:`make_cupy_backend` raises
:class:`~repro.errors.BackendUnavailableError` with install guidance
(``pip install repro[gpu]``); the CLI surfaces that as a clean exit 2.
The backend is unit-tested GPU-less by injecting a mock module pair
through the ``cupy_module``/``cupyx_module`` constructor hooks (see
``tests/test_backend_cupy_mock.py``).
"""

from __future__ import annotations

from typing import Tuple

from ..errors import BackendUnavailableError
from .core import ArrayBackend, BackendCapabilities

__all__ = ["CupyBackend", "make_cupy_backend"]


def _import_cupy() -> Tuple[object, object]:
    """Guarded import of ``(cupy, cupyx)``; the sole cupy import site.

    Kept as a module-level function so tests can monkeypatch it to inject
    a mock module pair (or a deterministic ImportError).
    """
    import cupy  # noqa: PLC0415 - deliberate lazy import; cupy is optional
    import cupyx  # noqa: PLC0415

    return cupy, cupyx


class CupyBackend(ArrayBackend):
    """Whole-array execution on a CUDA device through CuPy.

    The kernels' randomness (keyed Philox) is pure integer arithmetic and
    the decision paths avoid transcendental functions, so per-lane
    trajectories remain bit-identical to the NumPy backend.
    """

    def __init__(self, cupy_module=None, cupyx_module=None) -> None:
        if cupy_module is None:
            try:
                cupy_module, cupyx_module = _import_cupy()
            except ImportError as exc:
                raise BackendUnavailableError(
                    "the 'cupy' backend needs CuPy and a CUDA runtime; "
                    "install the GPU extra (pip install repro[gpu] or "
                    "pip install cupy-cuda12x) or run with --backend numpy"
                ) from exc
        if cupyx_module is None:
            raise BackendUnavailableError(
                "CupyBackend needs the cupyx module for scatter_add"
            )
        self.xp = cupy_module
        self._cupy = cupy_module
        self._cupyx = cupyx_module
        # Pinned-host staging and side-stream transfer support are probed
        # rather than assumed so mock module pairs (and stripped-down CuPy
        # builds) degrade to the base one-copy-per-array loop.
        cuda = getattr(cupy_module, "cuda", None)
        self._stream_cls = getattr(cuda, "Stream", None) if cuda is not None else None
        self._empty_pinned = getattr(cupyx_module, "empty_pinned", None)
        self.capabilities = BackendCapabilities(
            name="cupy",
            module="cupy",
            device="cuda",
            native_scatter_add=False,
            supports_float64=True,
            pinned_memory=self._empty_pinned is not None,
            supports_streams=self._stream_cls is not None,
        )

    def from_host(self, arr):
        """Host -> device transfer (``cupy.asarray``)."""
        return self._cupy.asarray(arr)

    def to_host(self, arr):
        """Device -> host transfer (``cupy.asnumpy``)."""
        return self._cupy.asnumpy(arr)

    def to_host_many(self, arrays):
        """Overlapped device -> host transfer of several arrays.

        When the runtime exposes pinned host allocation and CUDA streams
        (``capabilities.pinned_memory`` / ``supports_streams``), every
        array copies asynchronously on one non-blocking side stream into a
        pinned staging buffer, and a single fence at the end covers the
        whole batch — the recording-boundary transfer pattern the batched
        engines rely on. Otherwise this falls back to the base class's
        one-synchronous-copy-per-array loop.
        """
        arrays = list(arrays)
        if not arrays:
            return []
        if self._stream_cls is None or self._empty_pinned is None:
            return [self.to_host(arr) for arr in arrays]
        stream = self._stream_cls(non_blocking=True)
        outs = []
        for arr in arrays:
            pinned = self._empty_pinned(arr.shape, dtype=arr.dtype)
            arr.get(stream=stream, out=pinned)
            outs.append(pinned)
        stream.synchronize()
        return outs

    def scatter_add(self, arr, index, values) -> None:
        """``cupyx.scatter_add`` — CuPy's unbuffered duplicate-safe scatter."""
        self._cupyx.scatter_add(arr, index, values)

    def synchronize(self) -> None:
        """Fence the current CUDA device stream (timing boundaries).

        Defensive attribute walk so GPU-less mock modules (which have no
        ``cuda`` submodule) degrade to a no-op.
        """
        cuda = getattr(self._cupy, "cuda", None)
        device = getattr(cuda, "Device", None) if cuda is not None else None
        if device is not None:
            device().synchronize()


def make_cupy_backend() -> CupyBackend:
    """Registry factory: build the CuPy backend or raise unavailability."""
    return CupyBackend()
