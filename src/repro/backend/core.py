"""Array-backend protocol and registry — the device-dispatch layer.

Every compute module in :mod:`repro` routes its array math through an
:class:`ArrayBackend` instead of the module-level ``numpy`` namespace. A
backend bundles three things:

* ``xp`` — the array namespace (``numpy`` or ``cupy``): ``asarray``,
  ``zeros``, ``full``, ``arange``, ``where``, ``nonzero``, ``argsort``,
  ``cumsum``, ``concatenate`` and friends. The whole-array kernels call
  only functions that exist with identical semantics in both namespaces,
  so the *same* engine code runs unchanged on either device;
* device transfer — :meth:`ArrayBackend.from_host` moves a host array
  onto the backend's device and :meth:`ArrayBackend.to_host` brings
  results back (both are identity for NumPy, so the CPU path stays
  zero-copy). Engines call these only at setup and recording boundaries;
* the few operations whose spelling differs per namespace, e.g.
  :meth:`ArrayBackend.scatter_add` (``np.add.at`` vs
  ``cupyx.scatter_add``).

Backends are looked up by name through :func:`resolve_backend`; the NumPy
backend is always available, the CuPy backend registers itself lazily and
raises :class:`~repro.errors.BackendUnavailableError` with an actionable
message when ``cupy`` is not installed.

Bit-identity note: with ``backend="numpy"`` every ``xp.*`` call *is* the
corresponding ``numpy`` call, so the dispatch layer cannot perturb a
single bit of the seed engines' trajectories — the property
``tests/test_backend_parity.py`` pins against golden digests. The keyed
Philox RNG is pure integer/bit arithmetic, so its words are identical on
every backend; only transcendental-free float paths (which the decision
kernels already guarantee) are exactly portable across devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import ModuleType
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from ..errors import BackendUnavailableError

__all__ = [
    "ArrayBackend",
    "BackendCapabilities",
    "ScratchArena",
    "available_backends",
    "register_backend",
    "registered_backends",
    "resolve_backend",
]


class ScratchArena:
    """Keyed reusable step-loop buffers — the allocation-free hot path.

    The engines' per-step temporaries (the shift gather buffer, the
    conflict count/rank maps, clipped index matrices) have a fixed shape
    for the lifetime of an engine; allocating them fresh every step costs
    an allocator round-trip per array on NumPy and allocator traffic on
    the GPU critical path on CuPy. An arena hands the same buffer back on
    every :meth:`take` for a given key, so a steady-state step performs
    zero allocating dispatches for those temporaries (the cold first call
    per key is one counted ``xp.empty``).

    Contract: a taken buffer's contents are **undefined** — the caller
    must fully overwrite it (``buf.fill(...)`` or complete slice writes)
    before reading, and must not let it escape the stage that took it.
    Keys are arbitrary strings; an engine owns its arena (built once via
    :meth:`ArrayBackend.scratch_arena`), so keys never collide across
    engines. Buffers grow capacity-style: a request larger than the
    cached buffer reallocates, a smaller one returns a leading-slice
    view, so occasionally-variable shapes (e.g. per-step contested-cell
    counts) stop allocating once the high-water mark is reached.
    """

    __slots__ = ("_xp", "_slots")

    def __init__(self, xp) -> None:
        self._xp = xp
        self._slots: Dict[str, "np.ndarray"] = {}

    def take(self, key: str, shape, dtype) -> "np.ndarray":
        """A reusable buffer of exactly ``shape``/``dtype`` for ``key``."""
        shape = tuple(int(s) for s in shape)
        buf = self._slots.get(key)
        if (
            buf is None
            or buf.dtype != dtype
            or buf.ndim != len(shape)
            or any(c < s for c, s in zip(buf.shape, shape))
        ):
            cap = (
                shape
                if buf is None or buf.dtype != dtype or buf.ndim != len(shape)
                else tuple(max(c, s) for c, s in zip(buf.shape, shape))
            )
            buf = self._xp.empty(cap, dtype=dtype)
            self._slots[key] = buf
        if buf.shape == shape:
            return buf
        return buf[tuple(slice(0, s) for s in shape)]

    def take_filled(self, key: str, shape, dtype, fill) -> "np.ndarray":
        """Like :meth:`take`, pre-filled with ``fill`` (zeros/full stand-in)."""
        buf = self.take(key, shape, dtype)
        buf.fill(fill)
        return buf

    @property
    def nbytes(self) -> int:
        """Total bytes currently parked in the arena."""
        return sum(int(buf.nbytes) for buf in self._slots.values())

    def __len__(self) -> int:
        return len(self._slots)


@dataclass(frozen=True)
class BackendCapabilities:
    """Static capability record of an array backend."""

    #: Registry name ("numpy", "cupy", ...).
    name: str
    #: Import name of the array namespace module.
    module: str
    #: Device class the arrays live on: "cpu" or "cuda".
    device: str
    #: Whether ``xp.add.at`` exists natively (NumPy) or scatter-add needs a
    #: dedicated op (CuPy's ``cupyx.scatter_add``).
    native_scatter_add: bool = True
    #: float64 whole-array math is first-class (true for both NumPy and
    #: CUDA CuPy). Engines refuse backends without it: the eq.1/eq.2
    #: decision arithmetic needs exact double precision for bit-identity.
    supports_float64: bool = True
    #: Page-locked host staging buffers are available for device->host
    #: copies (CuPy's ``cupyx.empty_pinned``); pinned staging lets the DMA
    #: engine copy without a bounce buffer.
    pinned_memory: bool = False
    #: Device->host copies can be enqueued on a side stream and overlapped
    #: (``arr.get(stream=...)``); implies :meth:`ArrayBackend.to_host_many`
    #: batches its copies behind one fence instead of N.
    supports_streams: bool = False

    @property
    def is_gpu(self) -> bool:
        """True when arrays live on an accelerator device."""
        return self.device != "cpu"


class ArrayBackend:
    """One array namespace plus its device-transfer and scatter ops.

    Subclasses set :attr:`xp` and :attr:`capabilities` and override the
    transfer hooks. The base implementations are the NumPy (host)
    semantics, so a pure-host backend only needs to assign ``xp``.
    """

    #: The array namespace; every kernel reaches numpy/cupy through this.
    xp: ModuleType = np
    capabilities: BackendCapabilities = BackendCapabilities(
        name="base", module="numpy", device="cpu"
    )

    @property
    def name(self) -> str:
        """Registry name of this backend."""
        return self.capabilities.name

    # ------------------------------------------------------------------
    # Device transfer (recording boundaries)
    # ------------------------------------------------------------------
    def from_host(self, arr) -> "np.ndarray":
        """Move a host array onto this backend's device (identity on CPU)."""
        return self.xp.asarray(arr)

    def to_host(self, arr) -> np.ndarray:
        """Bring a device array back to a host ``numpy.ndarray``."""
        return np.asarray(arr)

    def to_host_many(self, arrays) -> List[np.ndarray]:
        """Bring several device arrays back in one recording-boundary call.

        The base implementation is a plain loop over :meth:`to_host`;
        backends with ``capabilities.supports_streams`` override it to
        enqueue all copies on one side stream into pinned staging buffers
        and pay a single fence instead of one synchronizing copy per
        array (the batched-timeline transfer in ``BatchedEngine.run``).
        """
        return [self.to_host(arr) for arr in arrays]

    # ------------------------------------------------------------------
    # Scratch buffers (allocation-free step loops)
    # ------------------------------------------------------------------
    def scratch_arena(self) -> ScratchArena:
        """A fresh :class:`ScratchArena` bound to this backend's namespace.

        Each engine builds its own arena at construction, so scratch keys
        never collide across engines; on a
        :class:`~repro.backend.profiling.ProfilingBackend` the arena's
        cold allocations route through the counting namespace while warm
        hits cost nothing — which is exactly what the ``allocs`` budget
        measures. The ``out=``-capable namespace ops the engines pair
        with the arena (``clip``, ``minimum``, ``maximum``, ``stack``)
        carry identical semantics on NumPy and CuPy.
        """
        return ScratchArena(self.xp)

    # ------------------------------------------------------------------
    # Namespace-divergent operations
    # ------------------------------------------------------------------
    def scatter_add(self, arr, index, values) -> None:
        """In-place unbuffered ``arr[index] += values`` (duplicate-safe)."""
        self.xp.add.at(arr, index, values)

    def synchronize(self) -> None:
        """Block until queued device work completes (no-op on CPU)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        caps = self.capabilities
        return f"<{type(self).__name__} name={caps.name!r} device={caps.device!r}>"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

#: Backend name -> zero-arg factory. Factories may raise
#: BackendUnavailableError (e.g. CuPy without a GPU stack installed).
_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {}

#: Resolved-instance cache; only successful factory calls are cached.
_INSTANCES: Dict[str, ArrayBackend] = {}

#: The backend used when a config/engine does not name one.
DEFAULT_BACKEND = "numpy"


def register_backend(
    name: str, factory: Callable[[], ArrayBackend], *, replace: bool = False
) -> None:
    """Register a backend factory under ``name``.

    ``replace=True`` swaps an existing registration (and drops its cached
    instance) — the hook the mocked-CuPy tests use to inject a GPU-less
    stand-in module.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    if name in _FACTORIES and not replace:
        raise ValueError(f"backend {name!r} is already registered")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)
    # A cached profiling wrapper holds the *old* inner instance; drop it
    # so "profile:<name>" re-resolves against the new registration.
    _INSTANCES.pop(f"profile:{name}", None)


def registered_backends() -> List[str]:
    """Names of all registered backends (available or not), sorted."""
    return sorted(_FACTORIES)


def available_backends() -> List[str]:
    """Names of backends that resolve successfully on this machine."""
    out = []
    for name in registered_backends():
        try:
            resolve_backend(name)
        except BackendUnavailableError:
            continue
        out.append(name)
    return out


def resolve_backend(
    spec: Optional[Union[str, ArrayBackend]] = None,
) -> ArrayBackend:
    """Resolve a backend name (or pass an instance through).

    ``None`` resolves the default NumPy backend. Unknown names and
    registered-but-unavailable backends (CuPy without ``cupy`` installed)
    raise :class:`~repro.errors.BackendUnavailableError`.
    """
    if isinstance(spec, ArrayBackend):
        return spec
    name = DEFAULT_BACKEND if spec is None else str(spec)
    cached = _INSTANCES.get(name)
    if cached is not None:
        return cached
    factory = _FACTORIES.get(name)
    if factory is None and (name == "profile" or name.startswith("profile:")):
        # "profile" / "profile:<inner>" wraps the inner backend in a
        # dispatch-counting proxy (repro.backend.profiling). Resolved here
        # rather than pre-registered so the profiler composes with any
        # backend added later; the import is local because profiling
        # imports this module.
        from .profiling import make_profiling_backend

        inner = name.partition(":")[2] or None
        factory = lambda: make_profiling_backend(inner)  # noqa: E731
    if factory is None:
        raise BackendUnavailableError(
            f"unknown array backend {name!r}; registered backends: "
            f"{registered_backends()}"
        )
    backend = factory()
    _INSTANCES[name] = backend
    return backend
