"""Dispatch-counting backend wrapper — the per-step launch profiler.

The paper's GPU wins come from keeping each simulation step inside a
small number of *large* kernel launches; the improved OpenCL
social-field implementation (arXiv:1803.04782) shows the same lesson at
the dispatch level — reorganising *how many* kernels run per step
matters more than the model math. On our array engines the analogue of
a kernel launch is one call through the backend's ``xp`` namespace
(``xp.where``, ``xp.nonzero``, a ufunc, ...): on NumPy each call pays
interpreter + dispatch overhead, on CuPy each is at least one real
kernel launch. :class:`ProfilingBackend` wraps any
:class:`~repro.backend.ArrayBackend` and counts those dispatches, plus
the host↔device transfers and synchronisation fences the engines issue,
so "fewer launches per step" becomes a number the test suite can assert
(``tests/test_dispatch_budget.py``) and ``BENCH_*.json`` can track.

The wrapper resolves through the ordinary backend registry under the
names ``"profile"`` (counting NumPy) and ``"profile:<inner>"`` (counting
any registered backend), so it flows everywhere a backend name does:
``SimulationConfig.backend``, ``repro run --profile-dispatch``, the
service wire format and pool workers.

What is (and is not) counted
----------------------------

* every *call* reached through ``backend.xp`` — functions, ufuncs and
  ufunc methods (``xp.add.at``) — is one dispatch; module attributes
  that are types or plain values (``xp.ndarray``, ``xp.pi``) pass
  through unwrapped so ``isinstance`` checks and dtype arguments keep
  working;
* :meth:`~ArrayBackend.scatter_add` and namespace-divergent ops count
  as one dispatch each (plus their own tag);
* :meth:`~ArrayBackend.from_host` / :meth:`~ArrayBackend.to_host` /
  :meth:`to_host_many` count as host↔device transfers, not ops;
* array *method* calls (``arr.fill``, ``arr.sum()``) and fancy-indexed
  assignments do not route through the namespace and are therefore not
  counted — the profile is a lower bound, but a stable one: the hot
  paths reach numpy/cupy through ``xp`` by construction (PR 3), so the
  counted number tracks the real dispatch count closely enough to
  regression-guard it.

Allocation accounting (PR 10)
-----------------------------

Alongside raw dispatches, the tally classifies each counted call as an
**allocation** unless it demonstrably reuses memory: a call that passes
a non-``None`` ``out=`` writes into an existing buffer, and the names in
:data:`NON_ALLOC_OPS` (``asarray`` — identity for on-device arrays of
matching dtype — ``broadcast_to``, a view, and the in-place
``scatter_add``) never produce a fresh hot-path buffer. Everything else
(``where``, ``nonzero``, ``empty``, ``full_like``, ...) allocates a new
array per call, which on small grids is a large slice of per-step cost
and on GPU backends is allocator traffic on the critical path. The
``allocs`` counter makes "the step loop does not allocate" a measured,
budget-guarded quantity exactly like ``ops`` (see
``tests/test_scratch_allocs.py`` and the per-engine ``allocs_per_step``
entries in ``BENCH_pr10.json``).

Counting happens on the caller's thread with plain ``int`` increments;
the wrapper adds no per-op allocation beyond one dict update, so a
profiled run's *trajectory* is untouched (the inner backend executes
every op) and stays bit-identical to an unprofiled one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .core import ArrayBackend, BackendCapabilities

__all__ = [
    "DispatchCounts",
    "DispatchProfile",
    "NON_ALLOC_OPS",
    "ProfilingBackend",
    "PROFILE_PREFIX",
]

#: Backend-name prefix that resolves to a counting wrapper.
PROFILE_PREFIX = "profile"

#: Counted namespace ops that never allocate a fresh hot-path buffer:
#: ``asarray`` is identity for an on-device array of matching dtype,
#: ``broadcast_to`` returns a view, ``scatter_add`` mutates in place.
NON_ALLOC_OPS = frozenset({"asarray", "broadcast_to", "scatter_add"})


@dataclass(frozen=True)
class DispatchCounts:
    """Immutable snapshot of a profiler's counters."""

    #: Namespace dispatches (every call through ``backend.xp``), plus the
    #: namespace-divergent backend ops (scatter_add).
    ops: int = 0
    #: Host -> device transfers (``from_host``).
    h2d_transfers: int = 0
    #: Device -> host transfers (``to_host`` / ``to_host_many`` items).
    d2h_transfers: int = 0
    #: ``scatter_add`` calls (also included in ``ops``).
    scatter_adds: int = 0
    #: Device-fence calls (``synchronize``).
    syncs: int = 0
    #: Counted dispatches that allocated a fresh array (no ``out=``,
    #: name not in :data:`NON_ALLOC_OPS`); subset of ``ops``.
    allocs: int = 0
    #: Dispatches per namespace function name ("where", "add.at", ...).
    by_op: Dict[str, int] = field(default_factory=dict)

    def __sub__(self, other: "DispatchCounts") -> "DispatchCounts":
        """Counter delta (``after - before``)."""
        by_op = {
            name: n - other.by_op.get(name, 0)
            for name, n in self.by_op.items()
            if n != other.by_op.get(name, 0)
        }
        return DispatchCounts(
            ops=self.ops - other.ops,
            h2d_transfers=self.h2d_transfers - other.h2d_transfers,
            d2h_transfers=self.d2h_transfers - other.d2h_transfers,
            scatter_adds=self.scatter_adds - other.scatter_adds,
            syncs=self.syncs - other.syncs,
            allocs=self.allocs - other.allocs,
            by_op=by_op,
        )

    @property
    def transfers(self) -> int:
        """Total host↔device transfers in either direction."""
        return self.h2d_transfers + self.d2h_transfers

    def to_dict(self) -> dict:
        """JSON-ready shape (``BENCH_*.json`` / ``--profile-dispatch``)."""
        return {
            "ops": self.ops,
            "h2d_transfers": self.h2d_transfers,
            "d2h_transfers": self.d2h_transfers,
            "scatter_adds": self.scatter_adds,
            "syncs": self.syncs,
            "allocs": self.allocs,
            "by_op": dict(sorted(self.by_op.items())),
        }

    def top_ops(self, n: int = 8) -> list:
        """The ``n`` most-dispatched namespace functions, descending."""
        ranked = sorted(self.by_op.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]


@dataclass(frozen=True)
class DispatchProfile:
    """A run's dispatch profile: counter delta plus the step count.

    Returned by ``run_simulation(profile=True)`` (on
    :class:`~repro.engine.simulation.TimedRunResult`) and printed by
    ``repro run --profile-dispatch``. ``steps`` covers the run loop only;
    ``setup`` holds the construction-time counters separately so the
    per-step figure is not polluted by one-off uploads.
    """

    counts: DispatchCounts
    steps: int
    setup: Optional[DispatchCounts] = None

    @property
    def ops_per_step(self) -> float:
        """Mean namespace dispatches per simulation step."""
        return self.counts.ops / max(1, self.steps)

    @property
    def transfers_per_step(self) -> float:
        """Mean host↔device transfers per simulation step."""
        return self.counts.transfers / max(1, self.steps)

    @property
    def allocs_per_step(self) -> float:
        """Mean allocating dispatches per simulation step."""
        return self.counts.allocs / max(1, self.steps)

    def to_dict(self) -> dict:
        out = {
            "steps": self.steps,
            "ops_per_step": self.ops_per_step,
            "transfers_per_step": self.transfers_per_step,
            "allocs_per_step": self.allocs_per_step,
            "counts": self.counts.to_dict(),
        }
        if self.setup is not None:
            out["setup"] = self.setup.to_dict()
        return out

    def describe(self) -> str:
        """Human summary (the ``--profile-dispatch`` output)."""
        lines = [
            f"dispatch profile over {self.steps} steps: "
            f"{self.ops_per_step:.1f} ops/step, "
            f"{self.allocs_per_step:.1f} allocs/step, "
            f"{self.transfers_per_step:.2f} transfers/step "
            f"({self.counts.ops} ops, {self.counts.allocs} allocs, "
            f"{self.counts.transfers} transfers, "
            f"{self.counts.scatter_adds} scatter-adds, "
            f"{self.counts.syncs} syncs total)",
        ]
        top = self.counts.top_ops()
        if top:
            lines.append(
                "hottest ops: "
                + ", ".join(f"{name} x{n}" for name, n in top)
            )
        return "\n".join(lines)


class _CountingCallable:
    """Callable proxy: counts invocations, forwards attribute access.

    Ufunc *methods* matter here — ``xp.add.at`` / ``xp.minimum.reduce``
    are dispatches of their own, so attribute access returns a nested
    counting proxy tagged ``"add.at"``.
    """

    __slots__ = ("_func", "_tally", "_name")

    def __init__(self, func, tally: "_Tally", name: str) -> None:
        self._func = func
        self._tally = tally
        self._name = name

    def __call__(self, *args, **kwargs):
        # ``out=`` reuses the caller's buffer; ufunc ``.at`` methods are
        # in-place by definition; the NON_ALLOC_OPS names are views or
        # identity. Everything else hands back a fresh array.
        alloc = (
            kwargs.get("out") is None
            and self._name not in NON_ALLOC_OPS
            and not self._name.endswith(".at")
        )
        self._tally.count(self._name, alloc)
        return self._func(*args, **kwargs)

    def __getattr__(self, name: str):
        attr = getattr(self._func, name)
        if callable(attr) and not isinstance(attr, type):
            return _CountingCallable(attr, self._tally, f"{self._name}.{name}")
        return attr

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<counting {self._name}>"


class _CountingNamespace:
    """Proxy over an array namespace that counts every function call.

    Non-callable attributes (``pi``, ``inf``, ``newaxis``) and *types*
    (``ndarray``, dtype classes, ``errstate``) pass through raw, so the
    proxy is indistinguishable from the real module everywhere except
    that function calls tick the tally.
    """

    def __init__(self, xp, tally: "_Tally") -> None:
        self._xp = xp
        self._tally = tally
        self._cache: Dict[str, object] = {}

    def __getattr__(self, name: str):
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        attr = getattr(self._xp, name)
        if callable(attr) and not isinstance(attr, type):
            attr = _CountingCallable(attr, self._tally, name)
        self._cache[name] = attr
        return attr

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<counting namespace over {self._xp.__name__}>"


class _Tally:
    """The mutable counter bundle one profiling backend owns."""

    __slots__ = ("ops", "h2d", "d2h", "scatter_adds", "syncs", "allocs", "by_op")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.ops = 0
        self.h2d = 0
        self.d2h = 0
        self.scatter_adds = 0
        self.syncs = 0
        self.allocs = 0
        self.by_op: Dict[str, int] = {}

    def count(self, name: str, alloc: bool = True) -> None:
        self.ops += 1
        if alloc:
            self.allocs += 1
        self.by_op[name] = self.by_op.get(name, 0) + 1

    def snapshot(self) -> DispatchCounts:
        return DispatchCounts(
            ops=self.ops,
            h2d_transfers=self.h2d,
            d2h_transfers=self.d2h,
            scatter_adds=self.scatter_adds,
            syncs=self.syncs,
            allocs=self.allocs,
            by_op=dict(self.by_op),
        )


class ProfilingBackend(ArrayBackend):
    """Counting wrapper around any :class:`ArrayBackend`.

    Delegates every operation to ``inner`` — arrays live on the inner
    backend's device, trajectories are bit-identical — while tallying
    namespace dispatches and transfers. Resolve it by name
    (``"profile"`` / ``"profile:cupy"``) or construct directly around a
    backend instance.
    """

    def __init__(self, inner: ArrayBackend) -> None:
        if isinstance(inner, ProfilingBackend):
            raise ValueError("refusing to profile a profiling backend")
        self.inner = inner
        self._tally = _Tally()
        self.xp = _CountingNamespace(inner.xp, self._tally)
        caps = inner.capabilities
        self.capabilities = BackendCapabilities(
            name=f"{PROFILE_PREFIX}:{caps.name}",
            module=caps.module,
            device=caps.device,
            native_scatter_add=caps.native_scatter_add,
            supports_float64=caps.supports_float64,
            pinned_memory=caps.pinned_memory,
            supports_streams=caps.supports_streams,
        )

    # ------------------------------------------------------------------
    # Counter surface
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every counter (start of a measured region)."""
        self._tally.reset()

    def snapshot(self) -> DispatchCounts:
        """Immutable copy of the counters right now."""
        return self._tally.snapshot()

    @property
    def ops(self) -> int:
        """Total namespace dispatches since the last reset."""
        return self._tally.ops

    # ------------------------------------------------------------------
    # Delegation (transfers counted, ops counted via the namespace)
    # ------------------------------------------------------------------
    def from_host(self, arr):
        self._tally.h2d += 1
        return self.inner.from_host(arr)

    def to_host(self, arr):
        self._tally.d2h += 1
        return self.inner.to_host(arr)

    def to_host_many(self, arrays):
        arrays = list(arrays)
        self._tally.d2h += len(arrays)
        return self.inner.to_host_many(arrays)

    def scatter_add(self, arr, index, values) -> None:
        self._tally.scatter_adds += 1
        self._tally.count("scatter_add", alloc=False)
        self.inner.scatter_add(arr, index, values)

    def synchronize(self) -> None:
        self._tally.syncs += 1
        self.inner.synchronize()


def make_profiling_backend(inner_name: Optional[str] = None) -> ProfilingBackend:
    """Registry-style factory: wrap the named (or default) inner backend.

    Unavailable inner backends (e.g. ``"profile:cupy"`` without CuPy)
    raise :class:`~repro.errors.BackendUnavailableError` exactly like the
    bare name would.
    """
    from .core import resolve_backend

    return ProfilingBackend(resolve_backend(inner_name))
