"""The host NumPy backend — the always-available CPU reference.

``xp`` *is* the ``numpy`` module, so routing array math through this
backend compiles down to exactly the calls the seed engines made: the
NumPy dispatch path is bit-identical to pre-backend code by construction.
"""

from __future__ import annotations

import numpy as np

from .core import ArrayBackend, BackendCapabilities

__all__ = ["NumpyBackend"]


class NumpyBackend(ArrayBackend):
    """Whole-array execution on host NumPy."""

    xp = np
    capabilities = BackendCapabilities(
        name="numpy",
        module="numpy",
        device="cpu",
        native_scatter_add=True,
        supports_float64=True,
    )

    def from_host(self, arr):
        """Identity (zero-copy): host arrays already live here."""
        return np.asarray(arr)

    def to_host(self, arr) -> np.ndarray:
        """Identity (zero-copy)."""
        return np.asarray(arr)

    def scatter_add(self, arr, index, values) -> None:
        """``np.add.at`` — the unbuffered duplicate-safe scatter."""
        np.add.at(arr, index, values)
