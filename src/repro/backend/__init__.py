"""Pluggable array backends: device-agnostic ``xp`` dispatch.

Public surface:

* :func:`resolve_backend` — name -> :class:`ArrayBackend` (the entry
  point every engine/model/RNG constructor funnels through),
* :func:`available_backends` / :func:`registered_backends` — discovery,
* :func:`register_backend` — extension hook (used by the mocked-CuPy
  tests and open to third-party array namespaces),
* :class:`ArrayBackend` / :class:`BackendCapabilities` — the protocol,
* :class:`NumpyBackend` (always available) and :class:`CupyBackend`
  (import-guarded; resolving it without CuPy installed raises
  :class:`~repro.errors.BackendUnavailableError`).
"""

from .core import (
    DEFAULT_BACKEND,
    ArrayBackend,
    BackendCapabilities,
    ScratchArena,
    available_backends,
    register_backend,
    registered_backends,
    resolve_backend,
)
from .cupy_backend import CupyBackend, make_cupy_backend
from .numpy_backend import NumpyBackend
from .profiling import (
    NON_ALLOC_OPS,
    PROFILE_PREFIX,
    DispatchCounts,
    DispatchProfile,
    ProfilingBackend,
    make_profiling_backend,
)

# replace=True keeps the package body idempotent (importlib.reload, or the
# package reached under two sys.path spellings, re-runs these lines).
register_backend("numpy", NumpyBackend, replace=True)
register_backend("cupy", make_cupy_backend, replace=True)

__all__ = [
    "ArrayBackend",
    "BackendCapabilities",
    "ScratchArena",
    "NON_ALLOC_OPS",
    "NumpyBackend",
    "CupyBackend",
    "make_cupy_backend",
    "DispatchCounts",
    "DispatchProfile",
    "PROFILE_PREFIX",
    "ProfilingBackend",
    "make_profiling_backend",
    "DEFAULT_BACKEND",
    "available_backends",
    "register_backend",
    "registered_backends",
    "resolve_backend",
]
