"""Observability: tracing spans + in-process metrics.

``repro.obs`` is the instrumentation layer threaded through the
service → executor → engine stack. Spans (`span.py`) time each phase of
a job's life and survive the forkserver boundary as plain dicts riding
``LaunchWork``/``LaunchOutcome``; the metrics registry (`metrics.py`)
turns them — plus the executor/cache counters — into Prometheus text on
``GET /metrics`` and p50/p90/p99 summaries in ``/stats``. See
``docs/OBSERVABILITY.md`` for the span model and metric names.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from .recorder import ROOT_SPAN, SpanRecorder
from .span import (
    PHASES,
    Span,
    TraceSpec,
    Tracer,
    mint_span_id,
    mint_trace_id,
    render_trace,
    sort_spans,
    span_dict,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PHASES",
    "ROOT_SPAN",
    "Span",
    "SpanRecorder",
    "TraceSpec",
    "Tracer",
    "mint_span_id",
    "mint_trace_id",
    "percentile",
    "render_trace",
    "sort_spans",
    "span_dict",
]
