"""Tracing spans: the wire-form timing tree behind ``repro trace``.

A :class:`Span` is one timed phase of a job's life (``queue_wait``,
``dispatch``, ``engine.run``, ...). Spans carry two clocks on purpose:

* ``start_unix`` — ``time.time()``, comparable across processes, used to
  order and nest spans that were recorded on different sides of the
  forkserver boundary;
* ``duration_s`` — a ``time.perf_counter()`` delta, monotonic and
  immune to wall-clock steps, used for every latency number we report.

:class:`Tracer` is the recording surface: a context-manager API that
maintains a parent stack, closes spans with ``error`` status when the
body raises, and can retroactively add spans whose bounds were measured
elsewhere (``queue_wait`` is computed at drain time from the job's
submission stamp). The wire form is a plain dict so spans survive
pickling through :class:`~repro.exec.work.LaunchWork` /
``LaunchOutcome`` untouched.

:class:`TraceSpec` is the picklable request that rides ``LaunchWork``
into pool workers — mirroring ``MetricStreamSpec``: the spec crosses the
process boundary, the recording object is built wherever the launch
actually executes.
"""

from __future__ import annotations

import binascii
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "PHASES",
    "Span",
    "TraceSpec",
    "Tracer",
    "mint_span_id",
    "mint_trace_id",
    "render_trace",
    "sort_spans",
    "span_dict",
]

#: Canonical phase names, in pipeline order. Render order follows the
#: recorded timestamps, but docs and tests key off this tuple.
PHASES = (
    "queue_wait",
    "plan",
    "dispatch",
    "warm_backend",
    "engine.run",
    "to_host",
    "commit",
)


def mint_trace_id() -> str:
    """Return a 32-hex-char trace id (128 random bits)."""
    return binascii.hexlify(os.urandom(16)).decode("ascii")


def mint_span_id() -> str:
    """Return a 16-hex-char span id (64 random bits)."""
    return binascii.hexlify(os.urandom(8)).decode("ascii")


@dataclass
class Span:
    """One timed phase. ``duration_s`` is ``None`` while still open."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    start_unix: float = 0.0
    duration_s: Optional[float] = None
    status: str = "ok"
    error: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: perf_counter at open; internal, never serialized.
    _t0: Optional[float] = field(default=None, repr=False, compare=False)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "duration_s": self.duration_s,
            "status": self.status,
            "error": self.error,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            name=data["name"],
            trace_id=data.get("trace_id", ""),
            span_id=data.get("span_id", ""),
            parent_id=data.get("parent_id"),
            start_unix=float(data.get("start_unix", 0.0)),
            duration_s=data.get("duration_s"),
            status=data.get("status", "ok"),
            error=data.get("error"),
            attrs=dict(data.get("attrs") or {}),
        )


@dataclass(frozen=True)
class TraceSpec:
    """Picklable tracing request riding :class:`~repro.exec.work.LaunchWork`.

    ``dispatched_unix`` is stamped when the launch is handed to the
    executor; the worker turns the gap to its own start into the
    ``dispatch`` span (queue-for-worker + pickle + transit).
    """

    dispatched_unix: float

    def to_dict(self) -> dict:
        return {"dispatched_unix": self.dispatched_unix}

    @classmethod
    def from_dict(cls, data: dict) -> "TraceSpec":
        return cls(dispatched_unix=float(data["dispatched_unix"]))


class Tracer:
    """Record spans for one trace. Not thread-safe; one per execution."""

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or mint_trace_id()
        self._finished: List[Span] = []
        self._stack: List[Span] = []

    # -- recording ---------------------------------------------------

    def start(self, name: str, **attrs: Any) -> Span:
        """Open a span; it becomes the parent of spans opened inside it."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=mint_span_id(),
            parent_id=parent,
            start_unix=time.time(),
            attrs=dict(attrs),
            _t0=time.perf_counter(),
        )
        self._stack.append(span)
        return span

    def finish(
        self,
        span: Span,
        status: str = "ok",
        error: Optional[str] = None,
    ) -> Span:
        if span._t0 is not None and span.duration_s is None:
            span.duration_s = time.perf_counter() - span._t0
        span.status = status
        span.error = error
        if span in self._stack:
            # Closing an outer span force-closes anything still open
            # inside it (torn spans inherit the outer status).
            while self._stack:
                top = self._stack.pop()
                if top is span:
                    break
                if top.duration_s is None and top._t0 is not None:
                    top.duration_s = time.perf_counter() - top._t0
                top.status = status
                top.error = top.error or error
                self._finished.append(top)
        self._finished.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        span = self.start(name, **attrs)
        try:
            yield span
        except BaseException as exc:
            self.finish(span, status="error", error=_describe(exc))
            raise
        else:
            self.finish(span)

    def add(
        self,
        name: str,
        start_unix: float,
        duration_s: float,
        parent_id: Optional[str] = None,
        status: str = "ok",
        error: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """Record a span whose bounds were measured elsewhere.

        Parents under the currently open span unless ``parent_id`` says
        otherwise (root-level when nothing is open).
        """
        if parent_id is None and self._stack:
            parent_id = self._stack[-1].span_id
        span = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=mint_span_id(),
            parent_id=parent_id,
            start_unix=start_unix,
            duration_s=max(0.0, float(duration_s)),
            status=status,
            error=error,
            attrs=dict(attrs),
        )
        self._finished.append(span)
        return span

    def adopt(
        self,
        spans: Sequence[dict],
        parent_id: Optional[str] = None,
    ) -> None:
        """Graft foreign wire spans (a worker's launch spans) into this trace.

        Ids are rewritten onto this trace; spans whose parent is not
        within the adopted set hang off ``parent_id`` (default: the
        currently open span, so adopting inside a ``with tracer.span``
        block nests the launch under it).
        """
        if parent_id is None and self._stack:
            parent_id = self._stack[-1].span_id
        ids = {s.get("span_id") for s in spans if s.get("span_id")}
        for s in spans:
            copy = dict(s)
            copy["trace_id"] = self.trace_id
            if copy.get("parent_id") not in ids:
                copy["parent_id"] = parent_id
            self._finished.append(Span.from_dict(copy))

    def close_open(self, error: Optional[str] = None) -> None:
        """Close every still-open span with ``error`` status (torn trace)."""
        while self._stack:
            top = self._stack.pop()
            if top.duration_s is None and top._t0 is not None:
                top.duration_s = time.perf_counter() - top._t0
            top.status = "error"
            top.error = top.error or error
            self._finished.append(top)

    # -- export ------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        return list(self._finished)

    def wire(self) -> Tuple[dict, ...]:
        """Finished spans as picklable dicts, in recording order."""
        return tuple(span.to_dict() for span in self._finished)


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def span_dict(
    name: str,
    start_unix: float,
    duration_s: float,
    status: str = "ok",
    error: Optional[str] = None,
    **attrs: Any,
) -> dict:
    """Build one wire-form span directly (no tracer).

    For spans synthesized outside a :class:`Tracer` — the scheduler's
    per-tick ``plan`` span shared by every launch of the tick, or the
    error span standing in for a launch that never reported back
    (crashed worker). ``trace_id``/``parent_id`` are left blank for the
    committing side to fill in.
    """
    return {
        "name": name,
        "trace_id": "",
        "span_id": mint_span_id(),
        "parent_id": None,
        "start_unix": float(start_unix),
        "duration_s": max(0.0, float(duration_s)),
        "status": status,
        "error": error,
        "attrs": dict(attrs),
    }


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def sort_spans(spans: Sequence[dict]) -> List[dict]:
    """Spans ordered for display: by start time, roots first."""
    return sorted(
        spans,
        key=lambda s: (s.get("start_unix") or 0.0, s.get("name") or ""),
    )


def _fmt_ms(seconds: Optional[float]) -> str:
    if seconds is None:
        return "   open "
    ms = seconds * 1000.0
    if ms >= 1000.0:
        return f"{ms / 1000.0:7.2f}s"
    return f"{ms:6.1f}ms"


def _fmt_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    return "  " + " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))


def render_trace(spans: Sequence[dict], title: str = "") -> str:
    """ASCII span tree with durations and percent-of-total.

    ``spans`` are wire dicts (see :meth:`Span.to_dict`). Orphans whose
    parent is missing are promoted to roots so partial traces render.
    """
    spans = [dict(s) for s in spans]
    if not spans:
        return "(no spans recorded)"
    by_id = {s["span_id"]: s for s in spans if s.get("span_id")}
    children: Dict[Optional[str], List[dict]] = {}
    roots: List[dict] = []
    for s in spans:
        parent = s.get("parent_id")
        if parent and parent in by_id:
            children.setdefault(parent, []).append(s)
        else:
            roots.append(s)
    roots = sort_spans(roots)
    total = max(
        (s.get("duration_s") or 0.0 for s in roots),
        default=0.0,
    )

    lines: List[str] = []
    if title:
        lines.append(title)

    def pct(s: dict) -> str:
        dur = s.get("duration_s")
        if dur is None or total <= 0.0:
            return "     "
        return f"{100.0 * dur / total:5.1f}%"

    def emit(span: dict, prefix: str, branch: str, child_prefix: str) -> None:
        mark = "" if span.get("status", "ok") == "ok" else "  [ERROR]"
        err = span.get("error")
        detail = f" {err}" if mark and err else ""
        lines.append(
            f"{prefix}{branch}{span['name']:<14} {_fmt_ms(span.get('duration_s'))}"
            f"  {pct(span)}{_fmt_attrs(span.get('attrs') or {})}{mark}{detail}"
        )
        kids = sort_spans(children.get(span.get("span_id"), []))
        for i, kid in enumerate(kids):
            last = i == len(kids) - 1
            emit(
                kid,
                prefix + child_prefix,
                "└─ " if last else "├─ ",
                "   " if last else "│  ",
            )

    for root in roots:
        emit(root, "", "", "")
    return "\n".join(lines)
