"""Bridge from finished span trees to the metrics registry.

The service hands every completed job's span list to
:meth:`SpanRecorder.observe_trace`; the recorder turns root spans into
the end-to-end latency histogram and every phase span into the
``phase``-labeled one, counting error spans separately. ``summary()``
is the p50/p90/p99 view merged into ``/stats`` and ``repro status``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry

__all__ = ["ROOT_SPAN", "SpanRecorder"]

#: Name of the per-job root span (covers submit → commit).
ROOT_SPAN = "job"

_QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))


class SpanRecorder:
    """Feed job/phase latency histograms from span wire dicts."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._e2e = registry.histogram(
            "repro_job_latency_seconds",
            "End-to-end job latency (submit to commit).",
            DEFAULT_LATENCY_BUCKETS,
        )

    def observe_trace(self, spans: Sequence[dict]) -> None:
        for span in spans:
            duration = span.get("duration_s")
            if duration is None:
                continue
            name = span.get("name") or "unknown"
            if name == ROOT_SPAN:
                self._e2e.observe(duration)
            else:
                self.registry.histogram(
                    "repro_phase_latency_seconds",
                    "Per-phase latency within a job's span tree.",
                    DEFAULT_LATENCY_BUCKETS,
                    phase=name,
                ).observe(duration)
            if span.get("status") == "error":
                self.registry.counter(
                    "repro_span_errors_total",
                    "Spans closed with error status.",
                    phase=name,
                ).inc()

    def _quantiles(self, hist) -> Optional[Dict[str, float]]:
        if hist.count == 0:
            return None
        out: Dict[str, float] = {"count": hist.count}
        for label, q in _QUANTILES:
            value = hist.quantile(q)
            if value is not None:
                out[label] = round(value, 6)
        out["mean"] = round(hist.sum / hist.count, 6)
        return out

    def summary(self) -> dict:
        """Percentile summary for ``/stats``: end-to-end plus per-phase."""
        phases: Dict[str, dict] = {}
        for labels, hist in self.registry.series("repro_phase_latency_seconds"):
            stats = self._quantiles(hist)
            if stats is not None:
                phases[labels.get("phase", "unknown")] = stats
        return {
            "end_to_end": self._quantiles(self._e2e),
            "phases": dict(sorted(phases.items())),
        }
