"""In-process metrics: counters, gauges, fixed-bucket histograms.

The registry backs ``GET /metrics`` (Prometheus text exposition) and the
latency percentiles merged into ``/stats``. Everything is stdlib: each
instrument carries one ``threading.Lock`` held only for the few
arithmetic ops of an update, so recording from the service tick loop,
HTTP handler threads, and the pool collector thread is safe and cheap.

Instruments are identified by ``(name, sorted label items)``; the first
``counter()`` / ``gauge()`` / ``histogram()`` call creates the series,
later calls return the same object. Histograms use fixed upper bounds
(cumulative, Prometheus-style) and estimate percentiles by linear
interpolation inside the winning bucket — coarse, but stable and cheap,
and the exact samples are still in the spans table for offline work.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
]

#: Upper bounds (seconds) sized for this repo's job latencies: sub-ms
#: cache hits through multi-minute padded batches.
DEFAULT_LATENCY_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


class Counter:
    """Monotonically increasing value."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    def set_total(self, value: float) -> None:
        """Mirror an externally tracked monotonic total (never lowers)."""
        with self._lock:
            self._value = max(self._value, float(value))

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Value that can go up or down."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus semantics."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._lock = threading.Lock()
        self.bounds = bounds
        # One count per finite bound plus the +Inf overflow slot.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> Tuple[List[int], float, int]:
        """Per-bucket (non-cumulative) counts, sum, and total count."""
        with self._lock:
            return list(self._counts), self._sum, self._count

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the q-quantile (0..1) by in-bucket interpolation."""
        counts, _, total = self.snapshot()
        if total == 0:
            return None
        q = min(1.0, max(0.0, q))
        rank = q * total
        cumulative = 0
        for i, n in enumerate(counts):
            if n == 0:
                continue
            lo = 0.0 if i == 0 else self.bounds[i - 1]
            hi = self.bounds[i] if i < len(self.bounds) else None
            if cumulative + n >= rank:
                if hi is None:
                    # Overflow bucket: no upper bound to interpolate to.
                    return lo
                frac = (rank - cumulative) / n
                return lo + (hi - lo) * frac
            cumulative += n
        return self.bounds[-1]


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Exact linear-interpolation percentile of raw samples (q in 0..1)."""
    if not values:
        return None
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    q = min(1.0, max(0.0, q))
    pos = q * (len(ordered) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return float(ordered[lo] + (ordered[hi] - ordered[lo]) * frac)


class _Family:
    """All series of one metric name (same type and help text)."""

    def __init__(self, kind: str, help_text: str):
        self.kind = kind
        self.help = help_text
        self.series: Dict[_LabelKey, object] = {}


class MetricsRegistry:
    """Named, labeled instruments plus the Prometheus text renderer."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _get(
        self,
        kind: str,
        name: str,
        help_text: str,
        labels: Mapping[str, str],
        factory,
    ):
        key: _LabelKey = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(kind, help_text)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            series = family.series.get(key)
            if series is None:
                series = factory()
                family.series[key] = series
            return series

    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        return self._get("counter", name, help_text, labels, Counter)

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        return self._get("gauge", name, help_text, labels, Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(
            "histogram", name, help_text, labels, lambda: Histogram(buckets)
        )

    def families(self) -> Dict[str, Tuple[str, str]]:
        with self._lock:
            return {
                name: (fam.kind, fam.help)
                for name, fam in self._families.items()
            }

    def series(self, name: str) -> List[Tuple[Dict[str, str], object]]:
        """All series of one metric as ``(labels, instrument)`` pairs."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return []
            return [(dict(key), obj) for key, obj in family.series.items()]

    def render(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            families = {
                name: (fam.kind, fam.help, dict(fam.series))
                for name, fam in sorted(self._families.items())
            }
        lines: List[str] = []
        for name, (kind, help_text, series) in families.items():
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for key, instrument in sorted(series.items()):
                if kind == "histogram":
                    lines.extend(_render_histogram(name, key, instrument))
                else:
                    lines.append(
                        f"{name}{_labels(key)} {_num(instrument.value)}"
                    )
        return "\n".join(lines) + "\n"


def _labels(key: _LabelKey, extra: Iterable[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _num(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_histogram(
    name: str, key: _LabelKey, hist: Histogram
) -> List[str]:
    counts, total_sum, total_count = hist.snapshot()
    lines: List[str] = []
    cumulative = 0
    for bound, n in zip(hist.bounds, counts):
        cumulative += n
        lines.append(
            f"{name}_bucket{_labels(key, [('le', _num(bound))])} {cumulative}"
        )
    lines.append(
        f"{name}_bucket{_labels(key, [('le', '+Inf')])} {total_count}"
    )
    lines.append(f"{name}_sum{_labels(key)} {_num(round(total_sum, 9))}")
    lines.append(f"{name}_count{_labels(key)} {total_count}")
    return lines
