"""Legacy setup shim.

The evaluation environment is offline and lacks the ``wheel`` package, so
PEP 517 editable installs (which need ``bdist_wheel``) fail. This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (configured
globally in pip.conf) take the classic ``setup.py develop`` path with only
``setuptools`` present. Metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
