#!/usr/bin/env python
"""Boarding workload demo: named scenarios through the service, live.

Spins up a simulation service in-process (ephemeral port, temp state,
analytics enabled) and submits a burst of ``boarding:<rows>x<cols>``
cabins from the component registry, each paired with a *corridor
baseline* — the same grid, population and step budget with the seat
rows removed. It follows one boarding job's per-step metrics over the
``GET /jobs/<id>/stream`` Server-Sent-Events endpoint while it runs,
then renders an ASCII fundamental diagram comparing the two workloads:
the single-aisle cabin congests where the open corridor still flows,
which is the constraint the boarding family exists to model (see
docs/SCENARIOS.md).

Everything rides the public HTTP surface (docs/API.md), so the same
client code works against a remote ``repro serve --analytics-db ...``.

Run:  python examples/boarding_demo.py
"""

import math
import os
import tempfile

from repro.components.scenarios import build_scenario
from repro.io.asciiplot import line_plot
from repro.service import ServiceServer, SimulationService
from repro.service.client import (
    get_analytics_runs,
    iter_job_stream,
    submit_jobs,
    wait_for_jobs,
)

CABINS = ("boarding:12x5", "boarding:20x5", "boarding:30x7", "boarding:40x7")


def main() -> None:
    tmp = tempfile.mkdtemp(prefix="repro-boarding-")
    service = SimulationService(
        os.path.join(tmp, "state"),
        analytics_db=os.path.join(tmp, "analytics.sqlite"),
    )
    server = ServiceServer(service, port=0, tick_interval=0.02)
    server.start()
    host, port = server.host, server.port
    print(f"service on http://{host}:{port} (analytics: {service.analytics.path})\n")

    # Each cabin and its corridor twin share geometry, population, steps
    # and seed — the only difference is the seat-row obstacles, so any
    # flow gap between the two series is the aisle constraint itself.
    specs = []
    for name in CABINS:
        cabin = build_scenario(name, scale="paper", seed=7)
        corridor = cabin.replace(obstacles=None, scenario=None)
        specs.append({"config": cabin.to_dict(), "engine": "vectorized"})
        specs.append({"config": corridor.to_dict(), "engine": "vectorized"})
    jobs = submit_jobs(specs, host=host, port=port)
    job_ids = [j["job_id"] for j in jobs]
    print(f"submitted {len(jobs)} jobs in one burst "
          f"({len(CABINS)} cabins + corridor baselines)\n")

    # Follow the largest cabin live over SSE; every line is one step.
    watched = job_ids[-2]
    print(f"streaming {watched} ({CABINS[-1]}):")
    for event, payload in iter_job_stream(watched, host=host, port=port):
        if event == "done":
            print(f"  … {payload['steps_streamed']} steps streamed, "
                  f"job {payload['state']}\n")
            break
        if payload["step"] % 12 == 0:
            print(f"  step {payload['step']:>4d}  moved {payload['moved']:>4d}  "
                  f"crossed {payload['crossed_total']:>4d}  "
                  f"gridlock {payload['gridlock_fraction']:.3f}")

    wait_for_jobs(job_ids, host=host, port=port, timeout=180)

    # Sealed run rows, one per job. Named scenarios keep their label;
    # the corridor twins fall back to the geometry key ("<h>x<w>").
    rows = get_analytics_runs(host=host, port=port)["runs"]
    boarding = sorted(
        (r for r in rows if r["scenario"].startswith("boarding:")),
        key=lambda r: r["density"],
    )
    corridor = sorted(
        (r for r in rows if not r["scenario"].startswith("boarding:")),
        key=lambda r: r["density"],
    )
    xs = [r["density"] for r in boarding]
    corridor_by_density = {round(r["density"], 12): r["flow"] for r in corridor}
    series = {
        "boarding": [r["flow"] for r in boarding],
        "corridor": [
            corridor_by_density.get(round(x, 12), math.nan) for x in xs
        ],
    }
    print(line_plot(
        series,
        x=xs,
        title="fundamental diagram: single-aisle cabin vs open corridor",
        xlabel="density (agents/cell)",
        ylabel="flow (crossings/step)",
        height=14,
    ))
    for b in boarding:
        c = corridor_by_density.get(round(b["density"], 12))
        note = "corridor flows freely" if (c or 0) > b["flow"] else "comparable"
        print(f"  {b['scenario']:>14s}: cabin flow {b['flow']:.2f} vs "
              f"corridor {c:.2f}  ({note})")

    server.shutdown()


if __name__ == "__main__":
    main()
