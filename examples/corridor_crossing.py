#!/usr/bin/env python
"""Corridor crossing study: where the LEM jams and the ACO keeps flowing.

A desk-scale rendition of the paper's Figure 6a: sweep the crowd density
over the paper's scenario grid (scaled), run both models, and plot
throughput against scenario index. Around 11-13% density the Least Effort
Model collapses into counter-flow jams while the pheromone-following ACO
still pushes everyone through — the paper's headline behavioural result.

Run:  python examples/corridor_crossing.py           (about a minute)
      python examples/corridor_crossing.py --quick   (a few seconds)
"""

import argparse

from repro.experiments import run_fig6a
from repro.io import line_plot


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="tiny grids, 1 seed")
    args = parser.parse_args()

    scale = "tiny" if args.quick else "quick"
    scenarios = tuple(range(1, 21, 2)) if args.quick else tuple(range(1, 21))
    seeds = (0,) if args.quick else (0, 1)

    print(f"sweeping scenarios {scenarios[0]}..{scenarios[-1]} at scale={scale}...")
    out = run_fig6a(scale=scale, scenario_indices=scenarios, seeds=seeds)

    print()
    print(line_plot(
        {
            "LEM": [r.lem_throughput for r in out.rows],
            "ACO": [r.aco_throughput for r in out.rows],
        },
        x=[r.scenario_index for r in out.rows],
        title="Throughput vs scenario (scaled Figure 6a)",
        xlabel="scenario index (population grows by 2560/div^2 per step)",
    ))
    print()
    header = f"{'scenario':>8} {'agents':>7} {'LEM':>8} {'ACO':>8} {'ACO-LEM':>8}"
    print(header)
    for r in out.rows:
        print(f"{r.scenario_index:>8} {r.total_agents:>7} "
              f"{r.lem_throughput:>8.0f} {r.aco_throughput:>8.0f} {r.aco_gain:>8.0f}")
    print()
    print(f"overall ACO gain over the sweep: {out.overall_gain:+.1%} "
          f"(paper reports +39.6% at full scale)")
    if out.crossover_scenario is not None:
        print(f"ACO first clearly beats LEM at scenario {out.crossover_scenario} "
              f"(paper: scenario 10)")


if __name__ == "__main__":
    main()
