#!/usr/bin/env python
"""Speedup study: the data-parallel engine versus the scalar reference.

Reproduces the paper's Figure 5 story twice over:

1. **measured** — wall-clock timing of this library's sequential (CPU
   stand-in) and vectorized (GPU stand-in) engines on scaled scenarios,
   printing per-step times and the speedup;
2. **modelled** — the calibrated Fermi/i7 cost models pricing the paper's
   exact 480x480 / 25,000-step configurations, regenerating the published
   absolute seconds (46.66s GPU vs 837.5s CPU at 2,560 agents) and the
   declining 18x -> 11x speedup curve.

Run:  python examples/speedup_study.py
"""

from repro.cuda import CpuCostModel, GpuCostModel
from repro.experiments import measured_fig5, measured_speedups, paper_scenarios
from repro.io import line_plot


def measured_section() -> None:
    print("=" * 70)
    print("MEASURED on this machine (scaled scenarios, quick scale)")
    print("=" * 70)
    records = measured_fig5(scenario_indices=(1, 5, 10), scale="quick", steps=60)
    print(f"{'scenario':>8} {'agents':>7} {'model':>6} {'engine':>11} "
          f"{'ms/step':>9}")
    for r in records:
        print(f"{r.scenario_index:>8} {r.total_agents:>7} {r.model:>6} "
              f"{r.engine:>11} {r.wall_seconds / r.steps * 1e3:>9.2f}")
    print()
    for agents, speedup in measured_speedups(records):
        print(f"  measured speedup at {agents} paper-agents: {speedup:.1f}x "
              "(vectorized over sequential, ACO)")
    print()


def modelled_section() -> None:
    print("=" * 70)
    print("MODELLED at paper scale (480x480, 25,000 steps, GTX 560 Ti vs i7-930)")
    print("=" * 70)
    gpu = GpuCostModel.calibrated("aco")
    gpu_lem = GpuCostModel.calibrated("lem")
    cpu = CpuCostModel.calibrated("aco")
    agents = [s.total_agents for s in paper_scenarios()][::4]
    rows = []
    print(f"{'agents':>8} {'LEM gpu s':>10} {'ACO gpu s':>10} {'ACO cpu s':>10} "
          f"{'speedup':>8}")
    for n in agents:
        t_lem = gpu_lem.simulation_time(n, "lem")
        t_aco = gpu.simulation_time(n)
        t_cpu = cpu.simulation_time(n)
        rows.append((n, t_cpu / t_aco))
        print(f"{n:>8} {t_lem:>10.1f} {t_aco:>10.1f} {t_cpu:>10.1f} "
              f"{t_cpu / t_aco:>7.2f}x")
    print()
    print(line_plot(
        {"speedup": [s for _, s in rows]},
        x=[n for n, _ in rows],
        title="Modelled Fig 5c: CPU/GPU speedup vs agents",
        xlabel="total agents",
        height=14,
    ))
    print()
    print("paper anchors: 18x at 2,560 agents; slightly above 11x at 102,400.")
    print("kernel-level view at 102,400 agents:")
    for kt in gpu.kernel_times(102400):
        print(f"  {kt.name:<22} {kt.seconds * 1e3:>8.3f} ms/step "
              f"({kt.threads:>7} threads, {kt.bound}-bound)")


def main() -> None:
    measured_section()
    modelled_section()


if __name__ == "__main__":
    main()
