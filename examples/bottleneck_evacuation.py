#!/usr/bin/env python
"""Bottleneck crossing with a panic alarm — the Section VII extensions.

Two crowds cross a corridor split by a wall with a narrow gap (obstacles
extension). Halfway through, a panic alarm fires (crisis extension): the
waiting Least Effort crowd switches to always-move panic behaviour.
The space-time occupancy diagram shows the queue building at the wall and
draining after the alarm.

Run:  python examples/bottleneck_evacuation.py
"""

from repro import ObstacleSpec, SimulationConfig, build_engine
from repro.analysis import SpaceTimeRecorder, crossing_times, render_spacetime
from repro.extensions import PanicAlarm
from repro.io import render_grid


def run(panic_at=None, render_at=None):
    cfg = SimulationConfig(
        height=48,
        width=48,
        n_per_side=150,
        steps=400,
        seed=11,
        obstacles=ObstacleSpec("bottleneck", gap=8),
    )
    eng = build_engine(cfg, "vectorized")
    spacetime = SpaceTimeRecorder(every=5)
    alarm = PanicAlarm(trigger_step=panic_at) if panic_at is not None else None
    snapshot = {}

    def hooks(engine, report):
        spacetime(engine, report)
        if alarm is not None:
            alarm(engine, report)
        if render_at is not None and report.step == render_at:
            snapshot["grid"] = render_grid(engine.env.mat)

    eng.run(callback=hooks, record_timeline=False)
    return eng, spacetime, snapshot


def main() -> None:
    print("corridor 48x48, wall with an 8-cell gap, 150 agents/side, "
          "LEM model\n")

    calm, st_calm, snap = run(panic_at=None, render_at=120)
    calm_ct = crossing_times(calm)
    print(f"without panic: {calm_ct.n_crossed}/{calm.pop.n_agents} crossed, "
          f"median crossing step {calm_ct.median:.0f}")

    panicked, st_panic, _ = run(panic_at=150)
    panic_ct = crossing_times(panicked)
    print(f"with alarm @150: {panic_ct.n_crossed}/{panicked.pop.n_agents} crossed, "
          f"median crossing step {panic_ct.median:.0f}")
    print()

    if "grid" in snap:
        print("queue at the wall, step 120 ('#' = wall):")
        print(snap["grid"])
        print()

    print("space-time occupancy WITHOUT the alarm (y = corridor rows):")
    print(render_spacetime(st_calm))
    print()
    print("space-time occupancy WITH the alarm at step 150:")
    print(render_spacetime(st_panic))
    print()
    gain = panic_ct.n_crossed - calm_ct.n_crossed
    print(f"panic alarm effect: {gain:+d} crossings "
          f"({gain / calm.pop.n_agents:+.0%} of the crowd)")


if __name__ == "__main__":
    main()
