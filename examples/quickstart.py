#!/usr/bin/env python
"""Quickstart: simulate a bi-directional crossing with both paper models.

Two groups of pedestrians start on opposite sides of a grid and walk
toward each other — the paper's core scenario at desk scale. Runs the
Least Effort Model and the modified Ant Colony Optimization on the
data-parallel engine, renders the final environment, and prints the
throughput comparison.

Run:  python examples/quickstart.py
"""

from repro import SimulationConfig, run_simulation
from repro.io import render_grid
from repro.metrics import efficiency_report

def main() -> None:
    cfg = SimulationConfig(
        height=32,
        width=64,
        n_per_side=220,
        steps=400,
        seed=7,
    )
    print(f"environment: {cfg.height}x{cfg.width}, {cfg.n_per_side} agents/side "
          f"({cfg.density:.0%} density), {cfg.steps} steps\n")

    for model in ("lem", "aco"):
        out = run_simulation(cfg.with_model(model), engine="vectorized")
        res = out.result
        print(f"--- {model.upper()} ---")
        print(f"throughput: {res.throughput_total}/{cfg.total_agents} agents crossed "
              f"({res.throughput_top} down, {res.throughput_bottom} up)")
        print(f"wall time : {out.wall_seconds:.2f}s "
              f"({out.seconds_per_step * 1e3:.2f} ms/step)\n")

    # Render one short ACO run mid-flight so the two streams are visible.
    from repro import build_engine

    eng = build_engine(cfg.with_model("aco"), "vectorized")
    for _ in range(40):
        eng.step()
    print("ACO environment after 40 steps ('v' walks down, '^' walks up):\n")
    print(render_grid(eng.env.mat))
    eng.run(steps=cfg.steps - 40, record_timeline=False)
    report = efficiency_report(eng)
    print(f"\nafter {cfg.steps} steps: {report.crossed_fraction:.0%} crossed, "
          f"mean detour factor {report.detour_factor:.2f} "
          f"(1.0 = perfectly straight least-effort paths)")


if __name__ == "__main__":
    main()
