#!/usr/bin/env python
"""Live dashboard: stream a running job's metrics, then plot the
fundamental diagram.

Spins up a simulation service in-process (ephemeral port, temp state,
analytics enabled), submits a burst of bi-directional crossings at
several densities, follows one job's per-step metric stream over the
``GET /jobs/<id>/stream`` Server-Sent-Events endpoint *while it
executes*, and finally renders the fundamental diagram — mean flow
against density across every persisted run — as an ASCII plot from
``GET /analytics/fundamental-diagram``.

Everything rides the public HTTP surface (see docs/API.md), so the same
client code works against a remote ``repro serve --analytics-db ...``.

Run:  python examples/live_dashboard.py
"""

import os
import tempfile

from repro import SimulationConfig
from repro.io.asciiplot import line_plot
from repro.service import ServiceServer, SimulationService
from repro.service.client import (
    get_fundamental_diagram,
    iter_job_stream,
    submit_jobs,
    wait_for_jobs,
)


def main() -> None:
    tmp = tempfile.mkdtemp(prefix="repro-dashboard-")
    service = SimulationService(
        os.path.join(tmp, "state"),
        analytics_db=os.path.join(tmp, "analytics.sqlite"),
    )
    server = ServiceServer(service, port=0, tick_interval=0.02)
    server.start()
    host, port = server.host, server.port
    print(f"service on http://{host}:{port} (analytics: {service.analytics.path})\n")

    # A density sweep on one geometry: the x-axis of the fundamental
    # diagram. Same grid, growing population.
    base = SimulationConfig(height=24, width=24, n_per_side=8, steps=120, seed=11)
    populations = (8, 16, 24, 32, 48, 64)
    specs = [
        {"config": base.replace(n_per_side=n).to_dict(), "engine": "vectorized"}
        for n in populations
    ]
    jobs = submit_jobs(specs, host=host, port=port)
    job_ids = [j["job_id"] for j in jobs]
    print(f"submitted {len(jobs)} jobs in one burst: {', '.join(job_ids)}\n")

    # Follow the densest run live. Events arrive while the engine is
    # still stepping — each line below is one simulation step.
    watched = job_ids[-1]
    print(f"streaming {watched} ({populations[-1]} agents/side):")
    shown = 0
    for event, payload in iter_job_stream(watched, host=host, port=port):
        if event == "done":
            print(f"  … {payload['steps_streamed']} steps streamed, "
                  f"job {payload['state']}\n")
            break
        if payload["step"] % 20 == 0:  # every step arrives; print a sample
            lane = payload.get("lane_index")
            lane_note = "" if lane is None else f"  lane-order {lane:.3f}"
            print(f"  step {payload['step']:>4d}  moved {payload['moved']:>4d}  "
                  f"crossed {payload['crossed_total']:>4d}  "
                  f"gridlock {payload['gridlock_fraction']:.3f}{lane_note}")
            shown += 1

    wait_for_jobs(job_ids, host=host, port=port, timeout=120)

    # Every run is now a sealed row in the analytics store; the
    # fundamental-diagram endpoint aggregates them.
    points = get_fundamental_diagram(host=host, port=port, scenario="24x24")
    print(line_plot(
        {"lem": [p["flow"] for p in points]},
        x=[p["density"] for p in points],
        title="fundamental diagram (24x24): mean flow vs density",
        xlabel="density (agents/cell)",
        ylabel="flow (crossings/step)",
        height=14,
    ))
    peak = max(points, key=lambda p: p["flow"])
    print(f"\n{len(points)} runs; flow peaks at density {peak['density']:.3f} "
          f"({peak['agents']} agents) with {peak['flow']:.2f} crossings/step")

    server.shutdown()


if __name__ == "__main__":
    main()
