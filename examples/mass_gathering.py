#!/usr/bin/env python
"""Mass-gathering safety study: density, gridlock and lane formation.

The paper motivates its models with mass-gathering events where crowd
density drives risk. This example pushes a scaled environment from free
flow to total gridlock, tracking the metrics a safety analyst would watch:
movement rate, gridlock onset, lane-formation order, and detour factors —
for both movement models.

Run:  python examples/mass_gathering.py
"""

from repro import SimulationConfig, build_engine
from repro.io import bar_chart, render_density
from repro.metrics import (
    FlowRecorder,
    GridlockDetector,
    efficiency_report,
    lane_order_parameter,
)


def study(model: str, density: float, seed: int = 4) -> dict:
    height = width = 48
    n_per_side = int(density * height * width / 2)
    cfg = SimulationConfig(
        height=height, width=width, n_per_side=n_per_side,
        steps=260, seed=seed,
    ).with_model(model)
    eng = build_engine(cfg, "vectorized")
    flow = FlowRecorder()
    jam = GridlockDetector(rate_threshold=0.02, window=40)

    def hooks(engine, report):
        flow(engine, report)
        jam(engine, report)

    eng.run(callback=hooks, record_timeline=False)
    eff = efficiency_report(eng)
    return {
        "engine": eng,
        "crossed": eng.throughput(),
        "total": cfg.total_agents,
        "move_rate": flow.mean_move_rate,
        "gridlocked": jam.gridlocked,
        "onset": jam.onset_step,
        "lanes": lane_order_parameter(eng.env.mat),
        "detour": eff.detour_factor,
    }


def main() -> None:
    densities = (0.05, 0.12, 0.20, 0.30)
    print(f"{'model':>6} {'density':>8} {'crossed':>12} {'move rate':>10} "
          f"{'lanes':>7} {'detour':>7} {'gridlock':>9}")
    results = {}
    for model in ("lem", "aco"):
        for rho in densities:
            r = study(model, rho)
            results[(model, rho)] = r
            onset = f"@{r['onset']}" if r["gridlocked"] else "-"
            detour = f"{r['detour']:.2f}" if r["detour"] == r["detour"] else "  n/a"
            print(f"{model:>6} {rho:>8.0%} {r['crossed']:>6}/{r['total']:<5} "
                  f"{r['move_rate']:>10.2%} {r['lanes']:>7.2f} {detour:>7} "
                  f"{onset:>9}")
    print()

    print("crossed fraction by density:")
    labels, values = [], []
    for model in ("lem", "aco"):
        for rho in densities:
            r = results[(model, rho)]
            labels.append(f"{model}@{rho:.0%}")
            values.append(r["crossed"] / r["total"])
    print(bar_chart(labels, values))
    print()

    jammed = results[("lem", 0.20)]["engine"]
    print("LEM environment at 20% density after the run "
          "(v/^ = dominant direction, x = mixed jam):")
    print(render_density(jammed.env.mat, out_rows=16, out_cols=48))


if __name__ == "__main__":
    main()
