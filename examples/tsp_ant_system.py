#!/usr/bin/env python
"""Classic Ant System on the TSP — the algorithm the paper starts from.

Section II of the paper introduces Ant System via the travelling salesman
problem before adapting it to pedestrians. This example runs our AS core
on instances with known optima (circle, grid) and a random instance,
comparing against the nearest-neighbour heuristic — the TSPLIB-style
validation the paper notes it cannot apply to crowds.

Run:  python examples/tsp_ant_system.py
"""

from repro.baselines import (
    AntSystem,
    AntSystemParams,
    circle_instance,
    grid_instance,
    nearest_neighbor_tour,
    random_instance,
    tour_length,
)
from repro.io import line_plot


def solve(instance, iterations=60, seed=0):
    dist = instance.distance_matrix()
    nn_length = tour_length(dist, nearest_neighbor_tour(dist))
    solver = AntSystem(instance, AntSystemParams(), seed=seed)
    result = solver.run(iterations)
    print(f"{instance.name:>12}: AS best {result.best_length:9.3f}   "
          f"nearest-neighbour {nn_length:9.3f}", end="")
    if instance.optimum is not None:
        print(f"   optimum {instance.optimum:9.3f} "
              f"(gap {result.gap_to(instance.optimum):+.1%})")
    else:
        print(f"   (AS vs NN: {result.best_length / nn_length - 1:+.1%})")
    return result


def main() -> None:
    print("Ant System (alpha=1, beta=2, rho=0.5, Q=1), 60 iterations\n")
    solve(circle_instance(12))
    solve(grid_instance(4, 5))
    result = solve(random_instance(20, seed=7))
    print()
    print(line_plot(
        {"best tour length": result.history},
        title="AS convergence on random20 (best-so-far per iteration)",
        xlabel="iteration",
        height=12,
    ))
    print()
    print("The same random-proportional rule + evaporate/deposit cycle,")
    print("with the distance heuristic pointed at the opposite end row,")
    print("is what drives the pedestrian ACO model (repro.models.aco).")


if __name__ == "__main__":
    main()
