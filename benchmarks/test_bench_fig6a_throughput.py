"""Figure 6a — throughput of LEM vs ACO across the density sweep.

The paper's headline behavioural result: both models push everyone across
at low density; from scenario ~10 the LEM collapses into counter-flow jams
while the ACO keeps near-full throughput, for a +39.6% overall ACO gain
across 20 scenarios. The benchmark runs the scaled sweep's key scenarios
and asserts the ordering (equal at low density, ACO ahead at the knee).
"""

from repro import run_simulation


def _throughput(cfg):
    return run_simulation(cfg, record_timeline=False).result.throughput_total


def test_bench_fig6a_low_density_equal(benchmark, quick_scenario):
    """Scenario 4: both models cross everyone (paper scenarios 1-9)."""
    lem_cfg = quick_scenario(4, model="lem")
    aco_cfg = quick_scenario(4, model="aco")

    def run_pair():
        return _throughput(lem_cfg), _throughput(aco_cfg)

    lem, aco = benchmark.pedantic(run_pair, rounds=2, iterations=1)
    assert lem == lem_cfg.total_agents
    assert aco == aco_cfg.total_agents


def test_bench_fig6a_knee_aco_wins(benchmark, quick_scenario):
    """Scenario 14 (scaled knee): ACO throughput far above LEM.

    The paper's knee sits at scenarios 10-11 at full scale (LEM 17,417 vs
    ACO 25,600 at scenario 10); on the quick grid the same collapse
    appears within a couple of scenario indices of that point.
    """
    lem_cfg = quick_scenario(14, model="lem")
    aco_cfg = quick_scenario(14, model="aco")

    def run_pair():
        return _throughput(lem_cfg), _throughput(aco_cfg)

    lem, aco = benchmark.pedantic(run_pair, rounds=2, iterations=1)
    assert aco > lem
    assert aco >= 0.9 * aco_cfg.total_agents
    assert lem <= 0.75 * lem_cfg.total_agents
