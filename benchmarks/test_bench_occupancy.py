"""Section IV occupancy claims — the CUDA occupancy calculator.

The paper keeps every kernel at 100% theoretical occupancy with 256-thread
blocks on CC 2.0; this benchmark regenerates the occupancy table and
asserts the claim for all four kernels.
"""

from repro.cuda import occupancy
from repro.experiments import occupancy_table


def test_bench_occupancy_calculator(benchmark):
    result = benchmark(
        occupancy, 256, registers_per_thread=20, shared_per_block=4096
    )
    assert result.is_full
    assert result.active_blocks_per_sm == 6


def test_bench_occupancy_table(benchmark):
    table = benchmark(occupancy_table)
    assert table.count("100%") == 4
