"""Figure 5b — ACO execution time on the CPU vs GPU platforms.

Benchmarks the sequential (scalar CPU stand-in) and vectorized
(data-parallel GPU stand-in) engines on the same scaled ACO scenario, and
asserts the modelled paper-scale seconds at both published endpoints.
"""

import pytest

from repro import build_engine
from repro.cuda import CpuCostModel, GpuCostModel, PAPER_ENDPOINTS

STEPS = 25
SCENARIO = 5


def _run(cfg, engine):
    eng = build_engine(cfg, engine)
    for _ in range(STEPS):
        eng.step()
    return eng


def test_bench_fig5b_cpu_sequential(benchmark, quick_scenario):
    cfg = quick_scenario(SCENARIO, model="aco")
    eng = benchmark.pedantic(_run, args=(cfg, "sequential"), rounds=3, iterations=1)
    eng.validate_state()


def test_bench_fig5b_gpu_vectorized(benchmark, quick_scenario):
    cfg = quick_scenario(SCENARIO, model="aco")
    eng = benchmark.pedantic(_run, args=(cfg, "vectorized"), rounds=3, iterations=1)
    eng.validate_state()


def test_bench_fig5b_modelled_seconds(benchmark):
    """Paper endpoints: 46.66 s / 126.7 s GPU, 837.5 s / 1449 s CPU."""

    def endpoints():
        gpu = GpuCostModel.calibrated("aco")
        cpu = CpuCostModel.calibrated("aco")
        return {
            "gpu": {n: gpu.simulation_time(n) for n in (2560, 102400)},
            "cpu": {n: cpu.simulation_time(n) for n in (2560, 102400)},
        }

    out = benchmark(endpoints)
    for platform in ("gpu", "cpu"):
        for n, target in PAPER_ENDPOINTS[platform].items():
            assert out[platform][n] == pytest.approx(target, rel=1e-6)
