"""Section II baseline — classic Ant System on the TSP.

Benchmarks the AS core on a known-optimum instance (the TSPLIB-style
validation the paper cites from [14]) and asserts solution quality.
"""

from repro.baselines import AntSystem, circle_instance


def test_bench_ant_system_circle(benchmark):
    inst = circle_instance(12)

    def solve():
        return AntSystem(inst, seed=1).run(30)

    result = benchmark.pedantic(solve, rounds=3, iterations=1)
    assert result.gap_to(inst.optimum) < 0.05


def test_bench_ant_system_iteration(benchmark):
    """Single AS iteration cost (tour construction + pheromone update)."""
    inst = circle_instance(20)
    solver = AntSystem(inst, seed=2)

    def one_iteration():
        return solver.run(1).best_length

    best = benchmark(one_iteration)
    assert best > 0
