"""Batched multi-replication engine vs a sequential loop of solo runs.

The paper's evaluation repeats every sweep point over several seeds; the
:class:`~repro.engine.batched.BatchedEngine` fuses those replications into
one whole-array launch. On small scaled grids a simulation step is
dominated by fixed NumPy dispatch overhead, so fusing 8 replications
amortises that overhead ~8 ways — this benchmark pins down that the
batched path beats the solo loop in wall-clock terms while producing
bit-identical throughputs.
"""

import os
import time

import pytest

from repro import run_batched, run_simulation

SEEDS = tuple(range(8))


def _solo_loop(cfg):
    return [
        run_simulation(cfg.replace(seed=s), record_timeline=False) for s in SEEDS
    ]


def _batched(cfg):
    return run_batched(cfg, SEEDS, record_timeline=False)


@pytest.mark.parametrize("model", ["lem", "aco"])
def test_bench_batched_beats_solo_loop(benchmark, quick_scenario, model):
    """8-replication workload: one batched launch vs 8 solo runs."""
    cfg = quick_scenario(8, model=model)

    # Warm-up + correctness: the batched lanes are bit-identical to the
    # solo runs, so comparing their walls is apples to apples.
    solo_out = _solo_loop(cfg)
    batch_out = _batched(cfg)
    assert [r.result.throughput_total for r in solo_out] == [
        r.throughput_total for r in batch_out.results
    ]

    # End-to-end walls, both including engine construction. Best-of-2 per
    # side filters one-off scheduler spikes on shared runners.
    def wall(fn):
        best = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            fn(cfg)
            best = min(best, time.perf_counter() - t0)
        return best

    solo_wall = wall(_solo_loop)
    batched_wall = wall(_batched)

    benchmark.pedantic(_batched, args=(cfg,), rounds=1, iterations=1)
    # The batched launch must beat the sequential loop of solo runs. The
    # observed margin is ~2x (LEM ~2.5x); the assert demands 1.25x locally
    # but only parity on CI, where shared-runner noise is out of our hands.
    margin = 1.0 if os.environ.get("CI") else 1.25
    assert batched_wall * margin < solo_wall
