"""Multi-worker service burst vs the serial tick path.

A burst of mutually *incompatible* jobs (distinct step budgets, so no
two share a pad key) cannot be fused by the micro-batching planner — it
degrades to one engine launch per job. On the serial path those
launches run back to back on the tick thread; with ``workers=2`` the
tick submits them all to the persistent :class:`repro.exec.ExecutorPool`
and two run at any moment. This benchmark pins down that the 2-worker
service beats ``workers=1`` on such a >= 4-scenario burst while
returning bit-identical results.

Needs >= 2 usable cores: with a single core the pool still *overlaps*
launches (concurrency is asserted in tests/test_service.py) but cannot
finish them faster, so the wall-clock claim would be vacuous.
"""

import os
import time

import pytest

from repro import SimulationConfig
from repro.service import SimulationService


def _usable_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


pytestmark = pytest.mark.skipif(
    _usable_cpus() < 2,
    reason="parallel speedup needs at least 2 usable cores",
)

#: Four "scenarios": same grid, distinct step budgets => four pad keys,
#: so the planner cannot fuse any pair and the burst is 4 launches.
BURST_STEPS = (300, 310, 320, 330)
WARMUP_STEPS = 40


def _burst_configs(seed_base: int):
    """A 4-scenario burst; ``seed_base`` keeps repeat rounds cache-cold."""
    return [
        SimulationConfig(
            height=48, width=48, n_per_side=200, steps=steps,
            seed=seed_base + k,
        )
        for k, steps in enumerate(BURST_STEPS)
    ]


def _run_burst(svc, seed_base: int):
    """Submit one burst and drain it; returns (throughputs, wall)."""
    jobs = [svc.submit(cfg) for cfg in _burst_configs(seed_base)]
    start = time.perf_counter()
    svc.run_until_idle()
    wall = time.perf_counter() - start
    throughputs = [
        svc.job(j.job_id).result["throughput_total"] for j in jobs
    ]
    return throughputs, wall


def _service(tmp_path, name, workers):
    svc = SimulationService(str(tmp_path / name), workers=workers)
    # Warm up outside the timed region: spawn pool workers, resolve the
    # backend, touch the store — the persistent pool is the steady state
    # being measured, not its cold start.
    svc.submit(
        SimulationConfig(height=24, width=24, n_per_side=16, steps=WARMUP_STEPS)
    )
    svc.run_until_idle()
    return svc


def test_bench_two_worker_burst_beats_serial(benchmark, tmp_path):
    serial = _service(tmp_path, "serial", workers=1)
    multi = _service(tmp_path, "multi", workers=2)
    try:
        # Best-of-2 per side filters one-off scheduler spikes; every
        # round uses fresh seeds so no burst is answered from the cache.
        walls = {"serial": float("inf"), "multi": float("inf")}
        results = {}
        for round_index in range(2):
            seed_base = 100 * round_index
            for name, svc in (("serial", serial), ("multi", multi)):
                throughputs, wall = _run_burst(svc, seed_base)
                walls[name] = min(walls[name], wall)
                results[name] = throughputs
        assert results["serial"] == results["multi"]  # bit-identity

        stats = multi.stats_dict()
        assert stats["peak_concurrent_launches"] >= 2
        assert stats["failed"] == 0

        benchmark.pedantic(
            _run_burst, args=(multi, 1000), rounds=1, iterations=1
        )
        # The 2-worker burst must beat the serial tick path. ~1.7x is
        # observed on idle 2-core machines; demand 1.25x locally and
        # parity on CI, where shared-runner noise is out of our hands.
        margin = 1.0 if os.environ.get("CI") else 1.25
        assert walls["multi"] * margin < walls["serial"], walls
    finally:
        serial.close()
        multi.close()
