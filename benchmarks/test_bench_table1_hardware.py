"""Table I — hardware specification table.

Regenerates the paper's Table I from the device registry and checks the
published attribute values; the benchmark measures the (trivial) generation
cost to keep the table in the harness inventory.
"""

from repro.experiments import table1_hardware


def test_bench_table1(benchmark):
    table = benchmark(table1_hardware)
    # Paper Table I anchor values.
    for fragment in (
        "Core i7-930",
        "GeForce GTX 560 Ti",
        "448",
        "2.8",
        "1.464",
        "768 KB",
        "8 MB",
        "6 GB DDR3",
        "1.25 GB GDDR5",
    ):
        assert fragment in table
