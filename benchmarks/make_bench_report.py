"""Emit a ``BENCH_<label>.json`` performance trajectory for this tree.

The repo's first published perf baseline (PR 8). The report bundles the
two quantities later PRs diff against:

* **dispatch** — steady-state namespace dispatches per step for every
  engine under the counting backend (``repro.backend.ProfilingBackend``),
  next to the pre-fusion (PR 7) constants, so the fused-kernel win stays
  a number rather than a commit-message claim;
* **wall** — micro-benchmark wall-clock for the batched / padded /
  batched-tiled paths against their solo-loop equivalents, next to the
  speedups recorded in earlier PR notes (PR 1: batched ~2x over a solo
  loop; PR 2: padded ~1.7x over solo loops of a mixed-scenario grid);
* **latency_phases** (PR 9) — per-phase p50 latencies from a small
  in-process service burst, computed from the tracing spans the jobs
  persist (see ``docs/OBSERVABILITY.md``), so dispatch/commit overhead
  has a trajectory too, not just the engine inner loop.

Usage::

    PYTHONPATH=src python benchmarks/make_bench_report.py --out BENCH_pr9.json
    PYTHONPATH=src python benchmarks/make_bench_report.py --check  # gate

``--check`` exits 1 unless every acceptance criterion holds (the
dispatch criteria are deterministic; the wall-clock ones can wobble on
loaded shared runners, so CI treats the emitted file as an artifact and
gates only on ``--check-dispatch``). Read the report with
``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro import SimulationConfig, run_batched, run_simulation
from repro.backend import resolve_backend
from repro.cuda import BatchedTiledEngine
from repro.cuda.tiled_engine import TiledEngine
from repro.engine import BatchedEngine

LABEL = "pr9"

#: Steady-state ops/step on the PR-7 tree (pre-fusion), measured with the
#: same scenario and counting backend as the live numbers below.
PRE_FUSION_OPS = {
    "sequential": 47.2,
    "vectorized": 155.0,
    "tiled": 262.0,
    "batched4": 171.0,
    "padded4": 171.6,
}

#: Speedups recorded in earlier PR notes (CHANGES.md) — the "no slower
#: than PR 2" reference line. Wall-clock, batched/padded vs solo loops.
RECORDED_SPEEDUPS = {"pr1_batched": 2.0, "pr2_padded": 1.7}

PROFILE_NAME = "profile:numpy"
WARMUP_STEPS = 3
MEASURED_STEPS = 5


def _config(seed=0, height=32, n_per_side=24, steps=40, model="lem"):
    return SimulationConfig(
        height=height, width=32, n_per_side=n_per_side, steps=steps, seed=seed
    ).with_model(model)


# ---------------------------------------------------------------------------
# Dispatch counts
# ---------------------------------------------------------------------------


def _steady_ops_per_step(engine) -> float:
    backend = engine.backend
    for _ in range(WARMUP_STEPS):
        engine.step()
    backend.reset()
    for _ in range(MEASURED_STEPS):
        engine.step()
    return backend.snapshot().ops / MEASURED_STEPS


def _build_profiled(kind: str):
    from repro.engine import build_engine

    cfg = _config().replace(backend=PROFILE_NAME)
    if kind == "batched4":
        return BatchedEngine(cfg, seeds=(0, 1, 2, 3))
    if kind == "padded4":
        configs = [
            _config(s, height=32 if s % 2 == 0 else 48).replace(
                backend=PROFILE_NAME
            )
            for s in range(4)
        ]
        return BatchedEngine(configs, seeds=tuple(range(4)))
    return build_engine(cfg, engine=kind)


def measure_dispatch() -> dict:
    out = {}
    for kind, pre in PRE_FUSION_OPS.items():
        resolve_backend(PROFILE_NAME).reset()
        ops = _steady_ops_per_step(_build_profiled(kind))
        out[kind] = {
            "ops_per_step": round(ops, 1),
            "pre_fusion_ops_per_step": pre,
            "reduction_pct": round(100.0 * (1.0 - ops / pre), 1),
        }
    return out


# ---------------------------------------------------------------------------
# Wall-clock micro-benchmarks
# ---------------------------------------------------------------------------


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_pair(solo_fn, fused_fn, repeats: int) -> dict:
    solo_fn(), fused_fn()  # warm-up (backend caches, page-ins)
    solo = _best_of(solo_fn, repeats)
    fused = _best_of(fused_fn, repeats)
    return {
        "solo_loop_seconds": round(solo, 4),
        "fused_seconds": round(fused, 4),
        "speedup": round(solo / fused, 2),
    }


def measure_wall(repeats: int) -> dict:
    out = {}

    # Batched homogeneous: 8 replications, one whole-array launch.
    seeds8 = tuple(range(8))
    cfg = _config(steps=60)
    out["batched_8rep"] = _bench_pair(
        lambda: [
            run_simulation(cfg.replace(seed=s), record_timeline=False)
            for s in seeds8
        ],
        lambda: run_batched(cfg, seeds8, record_timeline=False),
        repeats,
    )
    out["batched_8rep"]["recorded_reference"] = RECORDED_SPEEDUPS["pr1_batched"]

    # Padded heterogeneous: mixed grid shapes in one padded batch.
    mixed = [
        _config(0, height=32, steps=60),
        _config(1, height=48, steps=60),
        _config(2, height=32, n_per_side=16, steps=60),
        _config(3, height=48, n_per_side=16, steps=60),
    ]
    seeds4 = tuple(range(4))
    out["padded_4lane"] = _bench_pair(
        lambda: [
            run_simulation(c, seed=s, record_timeline=False)
            for c, s in zip(mixed, seeds4)
        ],
        lambda: run_batched(mixed, seeds4, record_timeline=False),
        repeats,
    )
    out["padded_4lane"]["recorded_reference"] = RECORDED_SPEEDUPS["pr2_padded"]

    # Batched tiled: 4 replications of the shared-memory-faithful engine
    # against a loop of solo tiled runs (the PR-8 acceptance pairing).
    def _solo_tiled():
        for s in seeds4:
            TiledEngine(cfg, seed=s).run(record_timeline=False)

    def _batched_tiled():
        BatchedTiledEngine(cfg, seeds=seeds4).run(record_timeline=False)

    out["batched_tiled_4rep"] = _bench_pair(_solo_tiled, _batched_tiled, repeats)
    return out


# ---------------------------------------------------------------------------
# Phase latency (tracing spans through the serving stack)
# ---------------------------------------------------------------------------


def measure_latency_phases(burst: int = 6) -> dict:
    """Per-phase p50 latency from a small in-process service burst.

    Runs ``burst`` seed-varied jobs through a throwaway
    ``SimulationService`` (serial tick path — no pool, so the numbers
    are the stack's own overhead, not scheduling noise) and summarises
    the span durations every job records.
    """
    import shutil
    import tempfile

    from repro.obs import ROOT_SPAN, percentile
    from repro.service import SimulationService

    state = tempfile.mkdtemp(prefix="bench-obs-")
    try:
        svc = SimulationService(state)
        cfg = _config(steps=60)
        jobs = [svc.submit(cfg.replace(seed=s)) for s in range(burst)]
        svc.run_until_idle()
        durations: dict = {}
        for job in jobs:
            payload = svc.trace_payload(job.job_id) or {}
            for span in payload.get("spans", ()):
                durations.setdefault(span["name"], []).append(
                    span["duration_s"]
                )
        svc.close()
    finally:
        shutil.rmtree(state, ignore_errors=True)

    out = {}
    for name, values in durations.items():
        key = "end_to_end" if name == ROOT_SPAN else name
        out[key] = {
            "p50_ms": round(percentile(values, 0.5) * 1e3, 3),
            "samples": len(values),
        }
    return out


# ---------------------------------------------------------------------------
# Criteria + report assembly
# ---------------------------------------------------------------------------


def evaluate(dispatch: dict, wall: dict, latency: dict) -> dict:
    return {
        "batched_dispatch_cut_ge_40pct": (
            dispatch["batched4"]["reduction_pct"] >= 40.0
        ),
        "no_engine_dispatches_more_than_pre_fusion": all(
            d["ops_per_step"] < d["pre_fusion_ops_per_step"]
            for d in dispatch.values()
        ),
        "batched_no_slower_than_recorded": (
            wall["batched_8rep"]["speedup"]
            >= RECORDED_SPEEDUPS["pr1_batched"]
        ),
        "padded_no_slower_than_recorded": (
            wall["padded_4lane"]["speedup"] >= RECORDED_SPEEDUPS["pr2_padded"]
        ),
        "batched_tiled_beats_solo_loop": (
            wall["batched_tiled_4rep"]["speedup"] > 1.0
        ),
        # The span tree must cover the whole pipeline: every canonical
        # phase sampled, and engine.run dominating the end-to-end p50
        # (tracing overhead stays in the noise). Deterministic in
        # structure, so gated with the dispatch criteria.
        "latency_phases_cover_pipeline": all(
            phase in latency
            for phase in (
                "end_to_end", "queue_wait", "plan", "dispatch",
                "warm_backend", "engine.run", "to_host", "commit",
            )
        ),
        "engine_run_dominates_latency": (
            "engine.run" in latency
            and "end_to_end" in latency
            and latency["engine.run"]["p50_ms"]
            >= 0.5 * latency["end_to_end"]["p50_ms"]
        ),
    }


def build_report(repeats: int) -> dict:
    dispatch = measure_dispatch()
    wall = measure_wall(repeats)
    latency = measure_latency_phases()
    return {
        "label": LABEL,
        "generated_unix_s": round(time.time(), 1),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scenario": "lem 32x32 (48-high lanes in padded/mixed), 24/side",
        "dispatch": dispatch,
        "wall": wall,
        "latency_phases": latency,
        "criteria": evaluate(dispatch, wall, latency),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="write the JSON report here")
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N wall timing"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless every criterion holds (dispatch + wall-clock)",
    )
    parser.add_argument(
        "--check-dispatch",
        action="store_true",
        help="exit 1 unless the deterministic dispatch criteria hold",
    )
    args = parser.parse_args(argv)

    report = build_report(args.repeats)
    text = json.dumps(report, indent=2, sort_keys=False)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)

    criteria = report["criteria"]
    for name, ok in criteria.items():
        print(f"  {'PASS' if ok else 'FAIL'}  {name}")
    dispatch_keys = (
        "batched_dispatch_cut_ge_40pct",
        "no_engine_dispatches_more_than_pre_fusion",
        "latency_phases_cover_pipeline",
    )
    if args.check and not all(criteria.values()):
        return 1
    if args.check_dispatch and not all(criteria[k] for k in dispatch_keys):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
