"""Emit a ``BENCH_<label>.json`` performance trajectory for this tree.

The report bundles the quantities later PRs diff against:

* **dispatch** — steady-state namespace dispatches per step for every
  engine under the counting backend (``repro.backend.ProfilingBackend``),
  next to the pre-fusion (PR 7) constants, so the fused-kernel win stays
  a number rather than a commit-message claim. Since PR 10 each entry
  also carries **allocs** — allocating dispatches per step (no ``out=``,
  not view/in-place) — next to the pre-arena (PR 9) constants;
* **wall** — micro-benchmark wall-clock for the batched / padded /
  batched-tiled paths against their solo-loop equivalents, next to the
  speedups recorded in earlier PR notes (PR 1: batched ~2x over a solo
  loop; PR 2: padded ~1.7x over solo loops of a mixed-scenario grid);
* **warm_state** (PR 10) — an 8-launch same-geometry burst, warm
  (process caches primed) vs cold (caches reset per launch), plus the
  per-launch setup amortization the warm-state cache buys;
* **transport** (PR 10) — bytes the executor pipe actually carries per
  launch under the zero-copy shared-memory transport, at two timeline
  sizes, next to the legacy whole-pickle size: the pipe head must be a
  small constant while the payload scales;
* **latency_phases** (PR 9) — per-phase p50 latencies from an
  in-process service burst, computed from the tracing spans the jobs
  persist (see ``docs/OBSERVABILITY.md``).

Usage::

    PYTHONPATH=src python benchmarks/make_bench_report.py --out BENCH_pr10.json
    PYTHONPATH=src python benchmarks/make_bench_report.py --check  # full gate

``--check`` exits 1 unless every acceptance criterion holds. The
dispatch/alloc/transport criteria are deterministic; the wall-clock ones
can wobble on loaded shared runners, so CI treats the emitted file as an
artifact and gates only on ``--check-allocs`` (which includes the old
``--check-dispatch`` set). Read the report with ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import json
import pickle
import platform
import sys
import time

from repro import SimulationConfig, run_batched, run_simulation
from repro.backend import resolve_backend
from repro.cuda import BatchedTiledEngine
from repro.cuda.tiled_engine import TiledEngine
from repro.engine import BatchedEngine, reset_warmstate

LABEL = "pr10"

#: Steady-state ops/step on the PR-7 tree (pre-fusion), measured with the
#: same scenario and counting backend as the live numbers below.
PRE_FUSION_OPS = {
    "sequential": 47.2,
    "vectorized": 155.0,
    "tiled": 262.0,
    "batched4": 171.0,
    "padded4": 171.6,
}

#: Steady-state allocs/step on the PR-9 tree (before the scratch arena
#: and the ``out=``-capable ops), same scenario and counting backend.
PRE_ARENA_ALLOCS = {
    "sequential": 12.0,
    "vectorized": 58.0,
    "tiled": 157.0,
    "batched4": 60.0,
    "padded4": 60.0,
}

#: Speedups recorded in earlier PR notes (CHANGES.md) — the "no slower
#: than PR 2" reference line. Wall-clock, batched/padded vs solo loops.
RECORDED_SPEEDUPS = {"pr1_batched": 2.0, "pr2_padded": 1.7}

PROFILE_NAME = "profile:numpy"
WARMUP_STEPS = 3
MEASURED_STEPS = 5

#: Traced service jobs behind the latency_phases section. 6 samples (the
#: PR-9 value) made the p50s wobble run to run; 24 keeps the section
#: stable enough to gate on while staying a sub-second burst.
LATENCY_BURST = 24


def _config(seed=0, height=32, n_per_side=24, steps=40, model="lem"):
    return SimulationConfig(
        height=height, width=32, n_per_side=n_per_side, steps=steps, seed=seed
    ).with_model(model)


# ---------------------------------------------------------------------------
# Dispatch + allocation counts
# ---------------------------------------------------------------------------


def _steady_counts_per_step(engine) -> tuple:
    """(ops, allocs) per step over MEASURED_STEPS after warm-up."""
    backend = engine.backend
    for _ in range(WARMUP_STEPS):
        engine.step()
    backend.reset()
    for _ in range(MEASURED_STEPS):
        engine.step()
    counts = backend.snapshot()
    return counts.ops / MEASURED_STEPS, counts.allocs / MEASURED_STEPS


def _build_profiled(kind: str):
    from repro.engine import build_engine

    cfg = _config().replace(backend=PROFILE_NAME)
    if kind == "batched4":
        return BatchedEngine(cfg, seeds=(0, 1, 2, 3))
    if kind == "padded4":
        configs = [
            _config(s, height=32 if s % 2 == 0 else 48).replace(
                backend=PROFILE_NAME
            )
            for s in range(4)
        ]
        return BatchedEngine(configs, seeds=tuple(range(4)))
    return build_engine(cfg, engine=kind)


def measure_dispatch() -> dict:
    out = {}
    for kind, pre in PRE_FUSION_OPS.items():
        resolve_backend(PROFILE_NAME).reset()
        ops, allocs = _steady_counts_per_step(_build_profiled(kind))
        pre_allocs = PRE_ARENA_ALLOCS[kind]
        out[kind] = {
            "ops_per_step": round(ops, 1),
            "pre_fusion_ops_per_step": pre,
            "reduction_pct": round(100.0 * (1.0 - ops / pre), 1),
            "allocs_per_step": round(allocs, 1),
            "pre_arena_allocs_per_step": pre_allocs,
            "alloc_reduction_pct": round(
                100.0 * (1.0 - allocs / pre_allocs), 1
            ),
        }
    return out


# ---------------------------------------------------------------------------
# Wall-clock micro-benchmarks
# ---------------------------------------------------------------------------


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_pair(solo_fn, fused_fn, repeats: int) -> dict:
    solo_fn(), fused_fn()  # warm-up (backend caches, page-ins)
    solo = _best_of(solo_fn, repeats)
    fused = _best_of(fused_fn, repeats)
    return {
        "solo_loop_seconds": round(solo, 4),
        "fused_seconds": round(fused, 4),
        "speedup": round(solo / fused, 2),
    }


def measure_wall(repeats: int) -> dict:
    out = {}

    # Batched homogeneous: 8 replications, one whole-array launch.
    seeds8 = tuple(range(8))
    cfg = _config(steps=60)
    out["batched_8rep"] = _bench_pair(
        lambda: [
            run_simulation(cfg.replace(seed=s), record_timeline=False)
            for s in seeds8
        ],
        lambda: run_batched(cfg, seeds8, record_timeline=False),
        repeats,
    )
    out["batched_8rep"]["recorded_reference"] = RECORDED_SPEEDUPS["pr1_batched"]

    # Padded heterogeneous: mixed grid shapes in one padded batch.
    mixed = [
        _config(0, height=32, steps=60),
        _config(1, height=48, steps=60),
        _config(2, height=32, n_per_side=16, steps=60),
        _config(3, height=48, n_per_side=16, steps=60),
    ]
    seeds4 = tuple(range(4))
    out["padded_4lane"] = _bench_pair(
        lambda: [
            run_simulation(c, seed=s, record_timeline=False)
            for c, s in zip(mixed, seeds4)
        ],
        lambda: run_batched(mixed, seeds4, record_timeline=False),
        repeats,
    )
    out["padded_4lane"]["recorded_reference"] = RECORDED_SPEEDUPS["pr2_padded"]

    # Batched tiled: 4 replications of the shared-memory-faithful engine
    # against a loop of solo tiled runs (the PR-8 acceptance pairing).
    def _solo_tiled():
        for s in seeds4:
            TiledEngine(cfg, seed=s).run(record_timeline=False)

    def _batched_tiled():
        BatchedTiledEngine(cfg, seeds=seeds4).run(record_timeline=False)

    out["batched_tiled_4rep"] = _bench_pair(_solo_tiled, _batched_tiled, repeats)
    return out


# ---------------------------------------------------------------------------
# Warm-state burst (setup amortization)
# ---------------------------------------------------------------------------


def measure_warm_state(repeats: int) -> dict:
    """8 same-geometry launches, warm caches vs cold-per-launch setup.

    The burst models a service serving repeated short requests of one
    scenario — exactly where per-launch setup (placement, distance
    stacks, batch assembly) dominates. ``cold`` resets the process-level
    warm-state caches before every launch (the pre-PR-10 behaviour);
    ``warm`` primes them once. Also reports the setup-only amortization:
    best-of construction time for the 8-lane batched engine, cold vs
    warm.
    """
    cfgs = [_config(seed=s, steps=2) for s in range(8)]
    seeds = tuple(c.seed for c in cfgs)

    def _burst(cold: bool) -> None:
        for _ in range(8):
            if cold:
                reset_warmstate()
            run_batched(cfgs, seeds, record_timeline=False)

    run_batched(cfgs, seeds, record_timeline=False)  # prime everything
    warm = _best_of(lambda: _burst(False), repeats)
    cold = _best_of(lambda: _burst(True), repeats)

    def _setup(do_reset: bool) -> None:
        if do_reset:
            reset_warmstate()
        BatchedEngine(cfgs, seeds=seeds)

    BatchedEngine(cfgs, seeds=seeds)
    setup_warm = _best_of(lambda: _setup(False), repeats)
    setup_cold = _best_of(lambda: _setup(True), repeats)
    return {
        "burst_launches": 8,
        "steps_per_launch": 2,
        "cold_burst_seconds": round(cold, 4),
        "warm_burst_seconds": round(warm, 4),
        "burst_speedup": round(cold / warm, 2),
        "cold_setup_seconds": round(setup_cold, 5),
        "warm_setup_seconds": round(setup_warm, 5),
        "setup_amortization": round(setup_cold / setup_warm, 1),
    }


# ---------------------------------------------------------------------------
# Result transport (zero-copy shared memory)
# ---------------------------------------------------------------------------


def measure_transport() -> dict:
    """Pipe bytes per launch under the shm transport, at two timeline sizes.

    The zero-copy claim is structural: whatever the timeline length, the
    queue carries only the pickle head (object structure, dtypes,
    shapes) while the array payload rides a shared-memory segment. Two
    launches whose recorded timelines differ 8x in length must therefore
    show ~constant head bytes and scaling payload bytes; the legacy
    whole-pickle size is reported for contrast.
    """
    from repro.exec import ExecutorPool, LaunchWork, execute_launch

    out = {}
    pool = ExecutorPool(1, shm_threshold=64)
    try:
        for tag, steps in (("steps_60", 60), ("steps_480", 480)):
            work = LaunchWork(
                configs=(_config(steps=steps),), record_timeline=True
            )
            before = pool.transport_stats()
            result = pool.submit(execute_launch, work).result(timeout=300)
            after = pool.transport_stats()
            legacy_bytes = len(pickle.dumps(result))
            del result
            out[tag] = {
                "pipe_head_bytes": after["shm_head_bytes"]
                - before["shm_head_bytes"],
                "shm_payload_bytes": after["shm_payload_bytes"]
                - before["shm_payload_bytes"],
                "legacy_pickle_bytes": legacy_bytes,
                "shm_results": after["shm_results"] - before["shm_results"],
            }
    finally:
        pool.close()
    return out


# ---------------------------------------------------------------------------
# Phase latency (tracing spans through the serving stack)
# ---------------------------------------------------------------------------


def measure_latency_phases(burst: int = LATENCY_BURST) -> dict:
    """Per-phase p50 latency from a small in-process service burst.

    Runs ``burst`` seed-varied jobs through a throwaway
    ``SimulationService`` (serial tick path — no pool) and summarises
    the span durations every job records. The overhead phases (plan,
    warm_backend, to_host, commit) are per-job stack cost; queue_wait
    and dispatch measure time spent waiting behind the rest of the
    burst, so they scale with ``burst`` by construction.
    """
    import shutil
    import tempfile

    from repro.obs import ROOT_SPAN, percentile
    from repro.service import SimulationService

    state = tempfile.mkdtemp(prefix="bench-obs-")
    try:
        svc = SimulationService(state)
        cfg = _config(steps=60)
        jobs = [svc.submit(cfg.replace(seed=s)) for s in range(burst)]
        svc.run_until_idle()
        durations: dict = {}
        for job in jobs:
            payload = svc.trace_payload(job.job_id) or {}
            for span in payload.get("spans", ()):
                durations.setdefault(span["name"], []).append(
                    span["duration_s"]
                )
        svc.close()
    finally:
        shutil.rmtree(state, ignore_errors=True)

    out = {}
    for name, values in durations.items():
        key = "end_to_end" if name == ROOT_SPAN else name
        out[key] = {
            "p50_ms": round(percentile(values, 0.5) * 1e3, 3),
            "samples": len(values),
        }
    return out


# ---------------------------------------------------------------------------
# Criteria + report assembly
# ---------------------------------------------------------------------------


def evaluate(
    dispatch: dict, wall: dict, latency: dict, warm: dict, transport: dict
) -> dict:
    small, big = transport["steps_60"], transport["steps_480"]
    return {
        "batched_dispatch_cut_ge_40pct": (
            dispatch["batched4"]["reduction_pct"] >= 40.0
        ),
        "no_engine_dispatches_more_than_pre_fusion": all(
            d["ops_per_step"] < d["pre_fusion_ops_per_step"]
            for d in dispatch.values()
        ),
        # PR-10 acceptance: batched allocs/step at least halved vs the
        # recorded pre-arena count, and no engine regressed past its own.
        "batched_allocs_cut_ge_50pct": (
            dispatch["batched4"]["alloc_reduction_pct"] >= 50.0
        ),
        "no_engine_allocates_more_than_pre_arena": all(
            d["allocs_per_step"] < d["pre_arena_allocs_per_step"]
            for d in dispatch.values()
        ),
        # PR-10 acceptance: the pipe head is a near-constant independent
        # of timeline size (8x more timeline, ≤1.5x head bytes) while
        # the payload actually scales and rides shared memory.
        "transport_head_constant_across_timeline_sizes": (
            small["shm_results"] == 1
            and big["shm_results"] == 1
            and big["pipe_head_bytes"] <= 1.5 * small["pipe_head_bytes"]
            and big["shm_payload_bytes"] >= 2.0 * small["shm_payload_bytes"]
            and small["pipe_head_bytes"] < small["legacy_pickle_bytes"]
        ),
        # PR-10 acceptance: warm 8-launch same-geometry burst >= 1.5x
        # over per-launch cold setup.
        "warm_burst_speedup_ge_1_5x": warm["burst_speedup"] >= 1.5,
        "batched_no_slower_than_recorded": (
            wall["batched_8rep"]["speedup"]
            >= RECORDED_SPEEDUPS["pr1_batched"]
        ),
        "padded_no_slower_than_recorded": (
            wall["padded_4lane"]["speedup"] >= RECORDED_SPEEDUPS["pr2_padded"]
        ),
        "batched_tiled_beats_solo_loop": (
            wall["batched_tiled_4rep"]["speedup"] > 1.0
        ),
        # The span tree must cover the whole pipeline: every canonical
        # phase sampled. Deterministic in structure, so gated with the
        # dispatch criteria.
        "latency_phases_cover_pipeline": all(
            phase in latency
            for phase in (
                "end_to_end", "queue_wait", "plan", "dispatch",
                "warm_backend", "engine.run", "to_host", "commit",
            )
        ),
        # The stack's own per-job overhead (planning, backend warm-up,
        # host copy-out, commit) must stay in the noise next to the
        # engine inner loop. queue_wait/dispatch are deliberately
        # excluded: they measure time spent *waiting behind other jobs*,
        # which scales with burst size, not with stack efficiency.
        "stack_overhead_under_10pct_of_engine_run": (
            sum(
                latency[p]["p50_ms"]
                for p in ("plan", "warm_backend", "to_host", "commit")
                if p in latency
            )
            <= 0.1 * latency.get("engine.run", {}).get("p50_ms", 0.0)
        ),
    }


def build_report(repeats: int) -> dict:
    dispatch = measure_dispatch()
    wall = measure_wall(repeats)
    warm = measure_warm_state(repeats)
    transport = measure_transport()
    latency = measure_latency_phases()
    return {
        "label": LABEL,
        "generated_unix_s": round(time.time(), 1),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scenario": "lem 32x32 (48-high lanes in padded/mixed), 24/side",
        "dispatch": dispatch,
        "wall": wall,
        "warm_state": warm,
        "transport": transport,
        "latency_phases": latency,
        "criteria": evaluate(dispatch, wall, latency, warm, transport),
    }


#: Deterministic criteria safe to gate CI on (no wall-clock wobble).
DETERMINISTIC_KEYS = (
    "batched_dispatch_cut_ge_40pct",
    "no_engine_dispatches_more_than_pre_fusion",
    "batched_allocs_cut_ge_50pct",
    "no_engine_allocates_more_than_pre_arena",
    "transport_head_constant_across_timeline_sizes",
    "latency_phases_cover_pipeline",
)

#: The PR-9 gate, kept for ``--check-dispatch`` backward compatibility.
DISPATCH_KEYS = (
    "batched_dispatch_cut_ge_40pct",
    "no_engine_dispatches_more_than_pre_fusion",
    "latency_phases_cover_pipeline",
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="write the JSON report here")
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N wall timing"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless every criterion holds (incl. wall-clock)",
    )
    parser.add_argument(
        "--check-dispatch",
        action="store_true",
        help="exit 1 unless the PR-9 deterministic dispatch criteria hold",
    )
    parser.add_argument(
        "--check-allocs",
        action="store_true",
        help="exit 1 unless every deterministic criterion holds "
        "(dispatch + allocs + transport structure)",
    )
    args = parser.parse_args(argv)

    report = build_report(args.repeats)
    text = json.dumps(report, indent=2, sort_keys=False)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)

    criteria = report["criteria"]
    for name, ok in criteria.items():
        print(f"  {'PASS' if ok else 'FAIL'}  {name}")
    if args.check and not all(criteria.values()):
        return 1
    if args.check_dispatch and not all(criteria[k] for k in DISPATCH_KEYS):
        return 1
    if args.check_allocs and not all(
        criteria[k] for k in DETERMINISTIC_KEYS
    ):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
