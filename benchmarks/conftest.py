"""Shared helpers for the benchmark harness.

Every benchmark regenerates (a scaled rendition of) one of the paper's
tables or figures; the module docstrings say which. Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments import scenario_config, scenario_spec


@pytest.fixture
def quick_scenario():
    """Factory for scaled scenario configs ("quick" scale: 48x48, 250 steps)."""

    def make(index: int, model: str = "aco", seed: int = 0, scale: str = "quick"):
        return scenario_config(
            scenario_spec(index), model=model, scale=scale, seed=seed
        )

    return make
