"""Substrate benchmark — Philox4x32-10 throughput.

The keyed RNG is on every decision path (it replaces CURAND); this tracks
its vectorized generation rate and the per-step cost of the LEM's
12-uniform normal.
"""

import numpy as np

from repro.rng import PhiloxKeyedRNG, Stream


def test_bench_philox_uniform_1m(benchmark):
    rng = PhiloxKeyedRNG(0)
    lanes = np.arange(1_000_000, dtype=np.uint64)
    u = benchmark(rng.uniform, Stream.EXPERIMENT, 0, lanes)
    assert u.shape == (1_000_000,)


def test_bench_normal12_100k(benchmark):
    rng = PhiloxKeyedRNG(0)
    lanes = np.arange(100_000, dtype=np.uint64)
    z = benchmark(rng.normal12, Stream.LEM_SELECT, 0, lanes)
    assert abs(float(z.mean())) < 0.02
