"""Ablation benchmarks for the design choices DESIGN.md calls out.

* forward priority (the paper's stated modification of [18]) on vs off,
* the LEM selection rule reading ("floor" = may wait, "ceil" = always move),
* pheromone evaporation rate sweep (eq. 3's rho),
* tiled vs global execution of the same kernels (shared-memory emulation
  overhead), and
* the engine equivalence guard run as a benchmark.
"""

import pytest

from repro import SimulationConfig, build_engine, run_simulation
from repro.models import ACOParams, LEMParams


def _throughput(cfg, engine="vectorized", seed=0):
    return run_simulation(cfg, engine=engine, seed=seed, record_timeline=False).result.throughput_total


class TestForwardPriority:
    def test_bench_forward_priority(self, benchmark, quick_scenario):
        """Forward priority should help (or at least not hurt) free flow."""
        base = quick_scenario(6, model="lem")

        def run_pair():
            on = _throughput(base.replace(forward_priority=True))
            off = _throughput(base.replace(forward_priority=False))
            return on, off

        on, off = benchmark.pedantic(run_pair, rounds=1, iterations=1)
        assert on >= off


class TestLEMRule:
    def test_bench_lem_rule(self, benchmark, quick_scenario):
        """The 'ceil' (always-move) reading keeps medium density flowing —
        the floor/wait reading is what reproduces the paper's jams."""
        cfg = quick_scenario(14, model="lem")

        def run_pair():
            floor = _throughput(cfg.replace(params=LEMParams(rule="floor")))
            ceil = _throughput(cfg.replace(params=LEMParams(rule="ceil")))
            return floor, ceil

        floor, ceil = benchmark.pedantic(run_pair, rounds=1, iterations=1)
        assert ceil > floor


class TestEvaporationSweep:
    @pytest.mark.parametrize("rho", [0.005, 0.02, 0.2])
    def test_bench_rho(self, benchmark, quick_scenario, rho):
        """Eq. 3 sensitivity: throughput at the knee for three rho values."""
        cfg = quick_scenario(14, model="aco").replace(
            params=ACOParams(rho=rho)
        )
        throughput = benchmark.pedantic(
            _throughput, args=(cfg,), rounds=1, iterations=1
        )
        # The knee scenario must stay mostly flowing for any sane rho.
        assert throughput >= 0.5 * cfg.total_agents


class TestTiledOverhead:
    def test_bench_tiled_engine(self, benchmark):
        """Per-tile execution with halo loads, same results as global."""
        cfg = SimulationConfig(
            height=48, width=48, n_per_side=200, steps=25, seed=3
        ).with_model("aco")

        def run():
            eng = build_engine(cfg, "tiled")
            for _ in range(25):
                eng.step()
            return eng

        eng = benchmark.pedantic(run, rounds=2, iterations=1)
        ref = build_engine(cfg, "vectorized")
        for _ in range(25):
            ref.step()
        assert eng.state_equals(ref)


class TestBottleneckGap:
    def test_bench_gap_sweep(self, benchmark):
        """Obstacle extension: narrower gaps throttle throughput."""
        from repro import ObstacleSpec, SimulationConfig

        def run_gaps():
            out = {}
            for gap in (2, 8, 24):
                cfg = SimulationConfig(
                    height=48, width=48, n_per_side=100, steps=250, seed=4,
                    obstacles=ObstacleSpec("bottleneck", gap=gap),
                ).with_model("aco")
                out[gap] = _throughput(cfg)
            return out

        out = benchmark.pedantic(run_gaps, rounds=1, iterations=1)
        assert out[2] < out[8] <= out[24]


class TestScanRangeAblation:
    def test_bench_scan_range(self, benchmark, quick_scenario):
        """Section VII extension: longer look-ahead at the knee density."""
        base = quick_scenario(14, model="aco")

        def run_ranges():
            return {
                r: _throughput(base.replace(params=ACOParams(scan_range=r)))
                for r in (1, 4)
            }

        out = benchmark.pedantic(run_ranges, rounds=1, iterations=1)
        # Both must keep the knee flowing; the exact ordering is reported,
        # not asserted (look-ahead changes lane micro-structure).
        assert min(out.values()) >= 0.7 * base.total_agents


class TestBaselinePolicies:
    def test_bench_policy_spectrum_at_knee(self, benchmark, quick_scenario):
        """All four policies at the Fig 6a knee density.

        Findings this bench pins down (see EXPERIMENTS.md):

        * the waiting LEM is the clear loser at the knee (the paper's
          result), while the always-moving policies (ACO *and* the uniform
          random sidestep) keep the crowd flowing — with forward priority,
          random sidesteps are already a strong jam-dissolver;
        * the deterministic greedy policy crosses fastest at low density
          but is not jam-robust.
        """
        cfg = quick_scenario(14)

        def run_all():
            return {
                m: _throughput(cfg.with_model(m))
                for m in ("lem", "aco", "random", "greedy")
            }

        out = benchmark.pedantic(run_all, rounds=1, iterations=1)
        assert out["aco"] > out["lem"]
        assert out["random"] > out["lem"]
        assert out["aco"] >= 0.9 * cfg.total_agents
