"""Figure 5c — GPU-over-CPU speedup, declining from 18x to ~11x.

Two renditions: the modelled curve at paper scale (asserting the published
anchors and monotone decline), and a measured speedup of the vectorized
engine over the sequential engine on this machine.
"""

import time

import pytest

from repro import build_engine
from repro.cuda import paper_speedup_curve


def test_bench_fig5c_modelled_curve(benchmark):
    counts = list(range(2560, 102401, 2560))
    curve = benchmark(paper_speedup_curve, counts)
    speedups = [s for _, s in curve]
    assert speedups[0] == pytest.approx(17.95, abs=0.3)  # "18x"
    assert speedups[-1] == pytest.approx(11.44, abs=0.3)  # "slightly higher than 11x"
    assert all(a >= b for a, b in zip(speedups, speedups[1:]))


def test_bench_fig5c_measured_speedup(benchmark, quick_scenario):
    """Wall-clock vectorized-vs-sequential ratio on a scaled scenario.

    Scenario 20 carries enough agents for the scalar engine's per-agent
    loop to dominate; smaller scenarios are batched-RNG-bound and the
    ratio dips below 2x (see EXPERIMENTS.md Fig 5c notes).
    """
    cfg = quick_scenario(20, model="aco")
    steps = 20

    def measure():
        out = {}
        for engine in ("sequential", "vectorized"):
            eng = build_engine(cfg, engine)
            start = time.perf_counter()
            for _ in range(steps):
                eng.step()
            out[engine] = time.perf_counter() - start
        return out["sequential"] / out["vectorized"]

    speedup = benchmark.pedantic(measure, rounds=3, iterations=1)
    # The data-parallel engine must beat the scalar reference clearly.
    assert speedup > 2.0
