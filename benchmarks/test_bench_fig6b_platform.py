"""Figure 6b — CPU-vs-GPU throughput validation with the binomial GLM.

The paper fits a binomial GLM of crossing probability against agent count
and a platform indicator, finding no significant platform effect
(p = 0.6145). We rerun the analysis with the sequential and vectorized
engines as the two platforms (distinct seeds per platform, since equal
seeds are bit-identical by construction) and assert the same conclusion.
"""

from repro.experiments import run_fig6b


def test_bench_fig6b_glm(benchmark):
    out = benchmark.pedantic(
        run_fig6b,
        kwargs=dict(
            scale="tiny",
            scenario_indices=(14, 16, 18, 20, 22),
            seeds_cpu=(100, 101, 102),
            seeds_gpu=(200, 201, 202),
        ),
        rounds=1,
        iterations=1,
    )
    assert out.glm.converged
    # The paper's conclusion: no significant platform effect.
    assert out.platform_p >= 0.05
    assert out.welch_p >= 0.05
    # Per-scenario means stay close between platforms.
    for row in out.rows:
        assert abs(row.cpu_throughput - row.gpu_throughput) <= 0.25 * row.total_agents


def test_bench_fig6b_exact_equivalence(benchmark):
    """Our stronger-than-paper check: equal seeds => identical throughput."""
    from repro import build_engine
    from repro.experiments import ScenarioSpec, scenario_config

    cfg = scenario_config(ScenarioSpec(10, 25600), model="aco", scale="tiny", seed=42)

    def run_both():
        seq = build_engine(cfg, "sequential")
        vec = build_engine(cfg, "vectorized")
        rs = seq.run(record_timeline=False)
        rv = vec.run(record_timeline=False)
        return rs.throughput_total, rv.throughput_total, seq.state_equals(vec)

    seq_t, vec_t, equal = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert seq_t == vec_t
    assert equal
