"""Padded mixed-scenario batching vs a solo-run loop.

A population sweep with *one seed per scenario* gives every point a
distinct batch key, so the same-shape replication batching of
``test_bench_batched_sweep.py`` cannot fuse any of it — the whole grid
degrades to solo runs. Padded packing relaxes the key: lanes that share
model/engine/scale/steps fuse into one whole-array launch with per-agent
arrays padded to the largest lane (bounded by the waste cap), which
amortises the fixed NumPy dispatch overhead across scenarios of
*different* sizes. This benchmark pins down that the padded plan beats
the solo loop on such a grid while producing bit-identical records.
"""

import os
import time

import pytest

from repro.experiments.sweep import SweepRunner, sweep_grid

#: Six distinct scenario populations (24..152 total agents at quick scale).
SCENARIOS = (1, 2, 3, 4, 5, 6)


def _points(model):
    return sweep_grid(SCENARIOS, (0,), models=(model,), scale="quick")


@pytest.mark.parametrize("model", ["lem", "aco"])
def test_bench_padded_sweep_beats_solo_loop(benchmark, model):
    """Mixed-scenario grid, 1 seed per point: padded plan vs solo loop."""
    points = _points(model)
    solo_runner = SweepRunner(max_lanes=1)
    padded_runner = SweepRunner(max_lanes=8, pad_lanes=True)

    # The padded plan must actually fuse lanes (same-shape batching cannot
    # fuse this grid at all) ...
    padded_units = padded_runner.plan(points)
    assert all(len(u.seeds) == 1 for u in solo_runner.plan(points))
    assert any(u.points is not None for u in padded_units)
    assert len(padded_units) < len(points)

    # ... and the records stay bit-identical to the solo runs.
    solo_records = solo_runner.run(points)
    padded_records = padded_runner.run(points)
    assert [r.throughput for r in padded_records] == [
        r.throughput for r in solo_records
    ]

    # End-to-end walls, both including planning and engine construction.
    # Best-of-2 per side filters one-off scheduler spikes on shared runners.
    def wall(runner):
        best = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            runner.run(points)
            best = min(best, time.perf_counter() - t0)
        return best

    solo_wall = wall(solo_runner)
    padded_wall = wall(padded_runner)

    benchmark.pedantic(padded_runner.run, args=(points,), rounds=1, iterations=1)
    # The padded plan must beat the solo loop by a clear margin. The
    # observed gain is ~2x; the assert demands 1.5x locally but only
    # parity on CI, where shared-runner noise is out of our hands.
    margin = 1.0 if os.environ.get("CI") else 1.5
    assert padded_wall * margin < solo_wall
