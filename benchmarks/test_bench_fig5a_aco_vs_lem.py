"""Figure 5a — execution time of ACO vs LEM on the data-parallel engine.

The paper measures the two models "almost the same" with ACO carrying a
marginal ~11% overhead from the pheromone kernels. We benchmark both
models' step loops on the GPU stand-in at quick scale, and additionally
assert the modelled paper-scale ratio.
"""

import pytest

from repro import build_engine
from repro.cuda import GpuCostModel, PAPER_ACO_OVER_LEM

STEPS = 40
SCENARIO = 10  # 25,600 paper agents — the Fig 6a crossover point


def _run(cfg):
    eng = build_engine(cfg, "vectorized")
    for _ in range(STEPS):
        eng.step()
    return eng


def test_bench_fig5a_lem_vectorized(benchmark, quick_scenario):
    cfg = quick_scenario(SCENARIO, model="lem")
    eng = benchmark.pedantic(_run, args=(cfg,), rounds=3, iterations=1)
    eng.validate_state()


def test_bench_fig5a_aco_vectorized(benchmark, quick_scenario):
    cfg = quick_scenario(SCENARIO, model="aco")
    eng = benchmark.pedantic(_run, args=(cfg,), rounds=3, iterations=1)
    eng.validate_state()


def test_bench_fig5a_modelled_ratio(benchmark):
    """ACO/LEM execution-time ratio at paper scale: ~1.11 (Section V)."""

    def ratio():
        aco = GpuCostModel.calibrated("aco")
        lem = GpuCostModel.calibrated("lem")
        return aco.simulation_time(25600) / lem.simulation_time(25600, "lem")

    value = benchmark(ratio)
    assert value == pytest.approx(PAPER_ACO_OVER_LEM, rel=0.02)
