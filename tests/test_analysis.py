"""Analysis package tests."""

import numpy as np
import pytest

from repro import SimulationConfig, build_engine
from repro.analysis import (
    SpaceTimeRecorder,
    capacity_density,
    crossing_times,
    fundamental_diagram,
    render_spacetime,
)
from repro.errors import ExperimentError, StatsError
from repro.types import Group


@pytest.fixture
def finished():
    cfg = SimulationConfig(height=32, width=32, n_per_side=60, steps=120, seed=4)
    eng = build_engine(cfg, "vectorized")
    eng.run(record_timeline=False)
    return eng


class TestCrossingTimes:
    def test_counts_match_engine(self, finished):
        ct = crossing_times(finished)
        assert ct.n_crossed == finished.throughput()
        assert ct.fraction == pytest.approx(finished.throughput() / 120)

    def test_steps_sorted_and_bounded(self, finished):
        ct = crossing_times(finished)
        assert np.all(np.diff(ct.steps) >= 0)
        assert ct.steps.min() >= 0
        assert ct.steps.max() < finished.config.steps

    def test_group_split(self, finished):
        top = crossing_times(finished, Group.TOP)
        bottom = crossing_times(finished, Group.BOTTOM)
        both = crossing_times(finished)
        assert top.n_crossed + bottom.n_crossed == both.n_crossed
        assert top.n_agents == 60

    def test_percentiles_monotone(self, finished):
        ct = crossing_times(finished)
        assert ct.percentile(25) <= ct.median <= ct.percentile(75)
        with pytest.raises(StatsError):
            ct.percentile(150)

    def test_count_by(self, finished):
        ct = crossing_times(finished)
        assert ct.count_by(finished.config.steps) == ct.n_crossed
        assert ct.count_by(-1) == 0

    def test_rate_between(self, finished):
        ct = crossing_times(finished)
        total = ct.rate_between(0, finished.config.steps) * finished.config.steps
        assert total == pytest.approx(ct.n_crossed)
        with pytest.raises(StatsError):
            ct.rate_between(5, 5)

    def test_empty_run(self):
        cfg = SimulationConfig(height=32, width=32, n_per_side=10, steps=0, seed=1)
        eng = build_engine(cfg, "vectorized")
        ct = crossing_times(eng)
        assert ct.n_crossed == 0
        assert np.isnan(ct.mean)


class TestFundamentalDiagram:
    def test_shape_free_flow_then_jam(self):
        base = SimulationConfig(
            height=32, width=32, n_per_side=10, steps=150, seed=2
        ).with_model("lem")
        pts = fundamental_diagram(base, densities=(0.03, 0.10, 0.35))
        assert len(pts) == 3
        # Free flow at 3%; jammed branch by 35%.
        assert pts[0].crossed_fraction == 1.0
        assert pts[2].flow < pts[1].flow or pts[2].crossed_fraction < 0.5

    def test_capacity_density(self):
        base = SimulationConfig(height=24, width=24, n_per_side=10, steps=80, seed=3)
        pts = fundamental_diagram(base, densities=(0.05, 0.15))
        cap = capacity_density(pts)
        assert any(abs(p.density - cap) < 1e-9 for p in pts)

    def test_validation(self):
        base = SimulationConfig(height=24, width=24, n_per_side=10, steps=10)
        with pytest.raises(ExperimentError):
            fundamental_diagram(base, densities=())
        with pytest.raises(ExperimentError):
            fundamental_diagram(base, densities=(1.5,))
        with pytest.raises(ExperimentError):
            capacity_density([])


class TestSpaceTime:
    def test_sampling_cadence(self):
        cfg = SimulationConfig(height=24, width=24, n_per_side=30, steps=40, seed=5)
        eng = build_engine(cfg, "vectorized")
        rec = SpaceTimeRecorder(every=10)
        eng.run(callback=rec, record_timeline=False)
        assert rec.sample_steps == [0, 10, 20, 30]
        assert rec.matrix.shape == (4, 24)

    def test_occupancy_conservation(self):
        cfg = SimulationConfig(height=24, width=24, n_per_side=30, steps=20, seed=5)
        eng = build_engine(cfg, "vectorized")
        rec = SpaceTimeRecorder(every=1)
        eng.run(callback=rec, record_timeline=False)
        totals = rec.matrix.sum(axis=1) * 24  # agents per sample
        assert np.allclose(totals, 60)

    def test_group_filter(self):
        cfg = SimulationConfig(height=24, width=24, n_per_side=30, steps=10, seed=5)
        eng = build_engine(cfg, "vectorized")
        rec = SpaceTimeRecorder(every=1, group=Group.TOP)
        eng.run(callback=rec, record_timeline=False)
        assert np.allclose(rec.matrix.sum(axis=1) * 24, 30)

    def test_render(self):
        cfg = SimulationConfig(height=24, width=24, n_per_side=60, steps=30, seed=5)
        eng = build_engine(cfg, "vectorized")
        rec = SpaceTimeRecorder(every=2)
        eng.run(callback=rec, record_timeline=False)
        art = render_spacetime(rec)
        assert "space-time" in art
        assert len(art.splitlines()) == 25

    def test_jam_front(self):
        cfg = SimulationConfig(
            height=24, width=24, n_per_side=120, steps=60, seed=6
        )
        eng = build_engine(cfg, "vectorized")
        rec = SpaceTimeRecorder(every=5)
        eng.run(callback=rec, record_timeline=False)
        fronts = rec.jam_front_rows(threshold=0.5)
        assert fronts.shape == (len(rec.sample_steps),)

    def test_empty_recorder(self):
        rec = SpaceTimeRecorder()
        assert rec.matrix.size == 0
        assert render_spacetime(rec) == "(no samples)"
        assert rec.jam_front_rows().size == 0

    def test_every_validation(self):
        with pytest.raises(ValueError):
            SpaceTimeRecorder(every=0)
