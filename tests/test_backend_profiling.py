"""ProfilingBackend: counting semantics, registry resolution, identity.

The dispatch profiler only earns its keep if (a) its numbers mean what
they say — one tick per call through ``backend.xp``, transfers tallied
separately — and (b) wrapping a backend never perturbs the trajectory.
Both are pinned here; the absolute per-engine budgets live in
``tests/test_dispatch_budget.py``.
"""

import numpy as np
import pytest

from repro import run_simulation
from repro.backend import (
    PROFILE_PREFIX,
    DispatchCounts,
    DispatchProfile,
    NumpyBackend,
    ProfilingBackend,
    resolve_backend,
)


@pytest.fixture()
def prof():
    return ProfilingBackend(NumpyBackend())


class TestCountingSemantics:
    def test_each_namespace_call_is_one_op(self, prof):
        prof.xp.zeros(4)
        prof.xp.arange(3)
        prof.xp.zeros(2)
        snap = prof.snapshot()
        assert snap.ops == 3
        assert snap.by_op == {"zeros": 2, "arange": 1}

    def test_ufunc_methods_count_with_dotted_tag(self, prof):
        out = np.zeros(3)
        prof.xp.add.at(out, np.array([1, 1]), 1.0)
        snap = prof.snapshot()
        assert snap.ops == 1
        assert snap.by_op == {"add.at": 1}
        assert out[1] == 2.0

    def test_non_callables_and_types_pass_through_raw(self, prof):
        assert prof.xp.pi == np.pi
        assert prof.xp.ndarray is np.ndarray
        assert prof.xp.float32 is np.float32
        # Attribute access alone must not tick the tally.
        assert prof.ops == 0
        # ...and isinstance checks against the passthrough type work.
        assert isinstance(prof.xp.zeros(1), prof.xp.ndarray)

    def test_transfers_counted_separately_from_ops(self, prof):
        dev = prof.from_host(np.arange(4))
        host = prof.to_host(dev)
        snap = prof.snapshot()
        assert snap.h2d_transfers == 1
        assert snap.d2h_transfers == 1
        assert snap.transfers == 2
        assert snap.ops == 0
        np.testing.assert_array_equal(host, np.arange(4))

    def test_to_host_many_counts_one_per_array(self, prof):
        outs = prof.to_host_many([np.arange(2), np.arange(3), np.arange(4)])
        assert prof.snapshot().d2h_transfers == 3
        assert [len(o) for o in outs] == [2, 3, 4]

    def test_scatter_add_counts_op_and_tag(self, prof):
        out = np.zeros(3)
        prof.scatter_add(out, np.array([0, 0]), 2.0)
        snap = prof.snapshot()
        assert snap.scatter_adds == 1
        assert snap.ops == 1
        assert snap.by_op == {"scatter_add": 1}
        assert out[0] == 4.0

    def test_synchronize_counts_syncs(self, prof):
        prof.synchronize()
        prof.synchronize()
        assert prof.snapshot().syncs == 2

    def test_reset_zeroes_everything(self, prof):
        prof.xp.zeros(1)
        prof.from_host(np.zeros(1))
        prof.synchronize()
        prof.reset()
        assert prof.snapshot() == DispatchCounts()

    def test_refuses_double_wrapping(self, prof):
        with pytest.raises(ValueError, match="refusing"):
            ProfilingBackend(prof)


class TestDispatchCounts:
    def test_delta_subtraction(self):
        before = DispatchCounts(ops=10, h2d_transfers=2, by_op={"where": 10})
        after = DispatchCounts(
            ops=25, h2d_transfers=2, d2h_transfers=3, by_op={"where": 20, "stack": 5}
        )
        delta = after - before
        assert delta.ops == 15
        assert delta.h2d_transfers == 0
        assert delta.d2h_transfers == 3
        assert delta.by_op == {"where": 10, "stack": 5}

    def test_top_ops_ranked_descending_then_name(self):
        counts = DispatchCounts(ops=9, by_op={"b": 3, "a": 3, "c": 2, "d": 1})
        assert counts.top_ops(3) == [("a", 3), ("b", 3), ("c", 2)]

    def test_to_dict_round_trips_by_op_sorted(self):
        counts = DispatchCounts(ops=2, by_op={"z": 1, "a": 1})
        assert list(counts.to_dict()["by_op"]) == ["a", "z"]


class TestRegistryResolution:
    def test_profile_name_resolves_to_counting_numpy(self):
        backend = resolve_backend(PROFILE_PREFIX)
        assert isinstance(backend, ProfilingBackend)
        assert backend.capabilities.name == "profile:numpy"
        assert backend.capabilities.module == "numpy"

    def test_profile_colon_inner_resolves(self):
        backend = resolve_backend("profile:numpy")
        assert isinstance(backend, ProfilingBackend)
        assert isinstance(backend.inner, NumpyBackend)

    def test_profile_instances_cached_per_name(self):
        assert resolve_backend("profile:numpy") is resolve_backend("profile:numpy")


class TestProfiledRunIdentity:
    """Counting must never perturb the trajectory."""

    def test_profiled_run_bit_identical(self, tiny_config):
        plain = run_simulation(tiny_config, engine="vectorized")
        profiled = run_simulation(tiny_config, engine="vectorized", profile=True)
        assert profiled.throughput_total == plain.throughput_total
        np.testing.assert_array_equal(
            profiled.result.moved_per_step, plain.result.moved_per_step
        )
        np.testing.assert_array_equal(
            profiled.result.crossings_per_step, plain.result.crossings_per_step
        )

    def test_profile_attached_with_setup_split(self, tiny_config):
        out = run_simulation(tiny_config, engine="vectorized", profile=True)
        profile = out.profile
        assert isinstance(profile, DispatchProfile)
        assert profile.steps == out.result.steps_run
        assert profile.counts.ops > 0
        # Construction uploads land in setup, not in the per-step counts.
        assert profile.setup is not None
        assert profile.setup.h2d_transfers > 0
        assert profile.ops_per_step == profile.counts.ops / profile.steps
        assert profile.allocs_per_step == profile.counts.allocs / profile.steps
        # Scratch-arena reuse keeps allocations a strict subset of dispatches.
        assert 0 < profile.counts.allocs < profile.counts.ops
        d = profile.to_dict()
        assert set(d) == {
            "steps",
            "ops_per_step",
            "allocs_per_step",
            "transfers_per_step",
            "counts",
            "setup",
        }
        assert "ops/step" in profile.describe()
        assert "allocs/step" in profile.describe()

    def test_unprofiled_run_has_no_profile(self, tiny_config):
        assert run_simulation(tiny_config, engine="vectorized").profile is None
