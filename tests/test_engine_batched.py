"""Batched-vs-solo equivalence: every lane of a :class:`BatchedEngine`
must be bit-identical to a solo :class:`VectorizedEngine` run with the
same config and seed — trajectories, pheromone fields, crossing
bookkeeping and per-step throughput series alike. Holds for homogeneous
batches (shared config, distinct seeds) and for padded heterogeneous
batches (per-lane configs differing in population and grid shape)."""

import numpy as np
import pytest

from repro import SimulationConfig
from repro.agents.population import NO_FUTURE
from repro.engine import BatchedEngine, build_engine, run_batched
from repro.errors import EngineError
from repro.rng import BatchedPhiloxRNG, PhiloxKeyedRNG, RaggedLaneRNG, Stream
from repro.types import Group


def _solo_run(cfg, seed, steps=None):
    eng = build_engine(cfg, engine="vectorized", seed=seed)
    result = eng.run(steps=steps, record_timeline=True)
    return eng, result


def _assert_lane_matches_solo(batched, lane, solo_engine):
    assert batched.lane_environment(lane).equals(solo_engine.env)
    assert batched.lane_population(lane).equals(solo_engine.pop)
    if solo_engine.pher is None:
        assert batched.pher is None
    else:
        for group in (Group.TOP, Group.BOTTOM):
            assert np.array_equal(
                batched.lane_pheromone(lane, group), solo_engine.pher.field(group)
            )


class TestBatchedRNG:
    """The per-lane keys reproduce the solo Philox streams exactly."""

    def test_words_match_solo_per_seed(self):
        seeds = (0, 7, 2**40 + 3)
        batched = BatchedPhiloxRNG(seeds)
        lanes = np.arange(33, dtype=np.uint64)
        got = batched.words(Stream.LEM_SELECT, step=5, lane=lanes)
        for b, seed in enumerate(seeds):
            solo = PhiloxKeyedRNG(seed).words(Stream.LEM_SELECT, 5, lanes)
            assert np.array_equal(got[:, b, :], solo)

    def test_normal12_and_uniform_match_solo(self):
        seeds = (11, 13)
        batched = BatchedPhiloxRNG(seeds)
        lanes = np.arange(17, dtype=np.uint64)
        for b, seed in enumerate(seeds):
            solo = PhiloxKeyedRNG(seed)
            assert np.array_equal(
                batched.uniform(Stream.ACO_SELECT, 3, lanes)[b],
                solo.uniform(Stream.ACO_SELECT, 3, lanes),
            )
            assert np.array_equal(
                batched.normal12(Stream.LEM_SELECT, 9, lanes)[b],
                solo.normal12(Stream.LEM_SELECT, 9, lanes),
            )

    def test_scattered_draws_match_solo(self):
        seeds = (21, 22)
        batched = BatchedPhiloxRNG(seeds)
        rep = np.array([0, 1, 1, 0])
        lane = np.array([4, 4, 9, 9], dtype=np.uint64)
        got = batched.uniform_at(Stream.MOVE_WINNER, 2, rep, lane)
        for i in range(4):
            solo = PhiloxKeyedRNG(seeds[rep[i]]).uniform(
                Stream.MOVE_WINNER, 2, np.uint64(lane[i])
            )
            assert got[i] == solo[0]

    def test_flat_view_matches_grid(self):
        batched = BatchedPhiloxRNG((5, 6, 7))
        lanes = np.arange(1, 11, dtype=np.uint64)
        grid = batched.uniform(Stream.TIEBREAK, 4, lanes)
        flat = batched.flat(10).uniform(
            Stream.TIEBREAK, 4, np.tile(lanes, 3)
        )
        assert np.array_equal(grid.ravel(), flat)

    def test_rejects_bad_shapes(self):
        batched = BatchedPhiloxRNG((1, 2))
        with pytest.raises(ValueError):
            batched.words(Stream.TIEBREAK, 0, np.zeros((3, 4), dtype=np.uint64))
        with pytest.raises(ValueError):
            batched.flat(4).uniform(Stream.TIEBREAK, 0, np.zeros(5, dtype=np.uint64))
        with pytest.raises(ValueError):
            BatchedPhiloxRNG(())

    def test_ragged_view_matches_solo(self):
        """Ragged member counts per replication key each element correctly."""
        seeds = (5, 6, 7)
        batched = BatchedPhiloxRNG(seeds)
        rep = np.array([0, 0, 0, 1, 2, 2])  # 3, 1 and 2 members
        lanes = np.array([1, 2, 3, 1, 1, 2], dtype=np.uint64)
        ragged = batched.ragged(rep)
        got_u = ragged.uniform(Stream.ACO_SELECT, 4, lanes)
        got_n = ragged.normal12(Stream.LEM_SELECT, 4, lanes)
        for i in range(rep.size):
            solo = PhiloxKeyedRNG(seeds[rep[i]])
            lane = np.uint64(lanes[i])
            assert got_u[i] == solo.uniform(Stream.ACO_SELECT, 4, lane)[0]
            assert got_n[i] == solo.normal12(Stream.LEM_SELECT, 4, lane)[0]

    def test_ragged_view_rejects_misaligned_lanes(self):
        batched = BatchedPhiloxRNG((1, 2))
        ragged = batched.ragged(np.array([0, 1, 1]))
        with pytest.raises(ValueError):
            ragged.uniform(Stream.TIEBREAK, 0, np.zeros(2, dtype=np.uint64))
        with pytest.raises(ValueError):
            batched.ragged(np.array([0, 2]))  # rep out of range
        assert isinstance(ragged, RaggedLaneRNG)


class TestBatchedEquivalence:
    """Lane-for-lane trajectory equality with solo vectorized runs."""

    @pytest.mark.parametrize("model", ["lem", "aco"])
    @pytest.mark.parametrize("seeds", [(3,), (0, 11, 42)])
    def test_lanes_bit_identical(self, small_config, model, seeds):
        cfg = small_config.with_model(model)
        batched = BatchedEngine(cfg, seeds)
        results = batched.run(record_timeline=True)
        batched.validate_state()
        for lane, seed in enumerate(seeds):
            solo_engine, solo_result = _solo_run(cfg, seed)
            _assert_lane_matches_solo(batched, lane, solo_engine)
            lane_result = results[lane]
            assert lane_result.seed == seed
            assert lane_result.throughput_total == solo_result.throughput_total
            assert lane_result.throughput_top == solo_result.throughput_top
            assert lane_result.throughput_bottom == solo_result.throughput_bottom
            assert np.array_equal(
                lane_result.moved_per_step, solo_result.moved_per_step
            )
            assert np.array_equal(
                lane_result.crossings_per_step, solo_result.crossings_per_step
            )

    @pytest.mark.parametrize("model", ["random", "greedy"])
    def test_baseline_policies_bit_identical(self, tiny_config, model):
        cfg = tiny_config.with_model(model)
        seeds = (1, 9)
        batched = BatchedEngine(cfg, seeds)
        batched.run(record_timeline=False)
        for lane, seed in enumerate(seeds):
            solo_engine, _ = _solo_run(cfg, seed)
            _assert_lane_matches_solo(batched, lane, solo_engine)

    def test_slow_agents_extension_batched(self, tiny_config):
        cfg = tiny_config.replace(slow_fraction=0.5, slow_period=3)
        seeds = (2, 5)
        batched = BatchedEngine(cfg, seeds)
        batched.run(record_timeline=False)
        for lane, seed in enumerate(seeds):
            solo_engine, _ = _solo_run(cfg, seed)
            _assert_lane_matches_solo(batched, lane, solo_engine)

    def test_lane_order_does_not_matter(self, tiny_config):
        """A lane's trajectory is independent of its batch neighbours."""
        a = BatchedEngine(tiny_config, (4, 8))
        b = BatchedEngine(tiny_config, (8, 4, 15))
        a.run(record_timeline=False)
        b.run(record_timeline=False)
        assert a.lane_environment(1).equals(b.lane_environment(0))
        assert a.lane_population(1).equals(b.lane_population(0))

    def test_stepwise_equivalence(self, tiny_config):
        """Per-step reports match the solo engine's step reports."""
        seeds = (6, 7)
        batched = BatchedEngine(tiny_config, seeds)
        solos = [
            build_engine(tiny_config, engine="vectorized", seed=s) for s in seeds
        ]
        for _ in range(10):
            report = batched.step()
            for lane, solo in enumerate(solos):
                solo_report = solo.step()
                assert report.decided[lane] == solo_report.decided
                assert report.moved[lane] == solo_report.moved
                assert report.new_crossings[lane] == solo_report.new_crossings
        batched.validate_state()


class TestBatchedEngineAPI:
    def test_requires_seeds(self, tiny_config):
        with pytest.raises(EngineError):
            BatchedEngine(tiny_config, ())

    def test_rejects_duplicate_seeds(self, tiny_config):
        with pytest.raises(EngineError):
            BatchedEngine(tiny_config, (3, 3))

    def test_single_lane_batch(self, tiny_config):
        batched = BatchedEngine(tiny_config, (12,))
        results = batched.run(record_timeline=True)
        assert len(results) == 1
        solo_engine, solo_result = _solo_run(tiny_config, 12)
        _assert_lane_matches_solo(batched, 0, solo_engine)
        assert results[0].throughput_total == solo_result.throughput_total

    def test_run_batched_helper(self, tiny_config):
        out = run_batched(tiny_config, (0, 1), record_timeline=False)
        assert out.n_lanes == 2
        assert out.seeds == (0, 1)
        assert out.wall_seconds > 0
        assert out.wall_seconds_per_lane == pytest.approx(out.wall_seconds / 2)
        assert all(r.platform == "batched" for r in out.results)

    def test_zero_steps(self, tiny_config):
        out = run_batched(tiny_config, (0, 1), steps=0)
        assert all(r.steps_run == 0 for r in out.results)
        assert all(r.moved_per_step.size == 0 for r in out.results)

    def test_obstacles_batched(self, tiny_config):
        from repro import ObstacleSpec

        cfg = tiny_config.replace(obstacles=ObstacleSpec("bottleneck", gap=6))
        seeds = (3, 14)
        batched = BatchedEngine(cfg, seeds)
        batched.run(record_timeline=False)
        for lane, seed in enumerate(seeds):
            solo_engine, _ = _solo_run(cfg, seed)
            _assert_lane_matches_solo(batched, lane, solo_engine)


def _mixed_configs(model, steps=20):
    """Three lanes differing in population *and* grid shape."""
    return [
        c.with_model(model)
        for c in (
            SimulationConfig(height=16, width=16, n_per_side=12, steps=steps),
            SimulationConfig(height=16, width=16, n_per_side=6, steps=steps),
            SimulationConfig(height=24, width=20, n_per_side=30, steps=steps),
        )
    ]


class TestPaddedHeterogeneousLanes:
    """Mixed-scenario padded batches stay bit-identical lane-for-lane."""

    @pytest.mark.parametrize("model", ["lem", "aco"])
    @pytest.mark.parametrize("seeds", [(0, 0, 0), (3, 1, 4)])
    def test_mixed_lanes_bit_identical(self, model, seeds):
        configs = _mixed_configs(model)
        batched = BatchedEngine(configs, seeds)
        assert batched.padded_fraction > 0.0
        results = batched.run(record_timeline=True)
        batched.validate_state()
        for lane, (cfg, seed) in enumerate(zip(configs, seeds)):
            solo_engine, solo_result = _solo_run(cfg, seed)
            _assert_lane_matches_solo(batched, lane, solo_engine)
            assert batched.lane_config(lane) == cfg
            lane_result = results[lane]
            assert lane_result.seed == seed
            assert lane_result.throughput_total == solo_result.throughput_total
            assert np.array_equal(
                lane_result.moved_per_step, solo_result.moved_per_step
            )
            assert np.array_equal(
                lane_result.crossings_per_step, solo_result.crossings_per_step
            )

    def test_padding_slots_stay_inert(self):
        """Masked padding slots never scan, decide, move, deposit or cross."""
        configs = _mixed_configs("aco")
        batched = BatchedEngine(configs, (0, 1, 2))
        for _ in range(10):
            batched.step()
            for lane, cfg in enumerate(configs):
                pad = ~batched.active[lane]
                pad[0] = False
                assert not np.any(batched.ids[lane, pad])
                assert not np.any(batched.crossed[lane, pad])
                assert np.all(batched.tour[lane, pad] == 0.0)
                assert np.all(batched.future_rows[lane, pad] == NO_FUTURE)
                # Grid padding keeps its obstacle sentinel, so no agent
                # index can ever appear outside the lane's real region.
                assert not np.any(batched.index[lane, cfg.height :, :])
                assert not np.any(batched.index[lane, :, cfg.width :])
                assert int(batched.index[lane].max()) <= int(
                    batched.lane_agents[lane]
                )
        batched.validate_state()

    def test_lane_composition_does_not_matter(self):
        """A lane's trajectory is independent of its padded neighbours."""
        big = SimulationConfig(height=24, width=24, n_per_side=40, steps=20)
        small = SimulationConfig(height=16, width=16, n_per_side=8, steps=20)
        a = BatchedEngine([small, big], (4, 8))
        b = BatchedEngine([big, small, small], (8, 11, 4))
        a.run(record_timeline=False)
        b.run(record_timeline=False)
        assert a.lane_environment(1).equals(b.lane_environment(0))
        assert a.lane_population(1).equals(b.lane_population(0))
        assert a.lane_environment(0).equals(b.lane_environment(2))
        assert a.lane_population(0).equals(b.lane_population(2))

    def test_mixed_extension_knobs(self, tiny_config):
        """Per-lane forward_priority / slow-class settings stay solo-exact."""
        configs = [
            tiny_config,
            tiny_config.replace(forward_priority=False),
            tiny_config.replace(slow_fraction=0.5, slow_period=3),
        ]
        seeds = (2, 2, 5)
        batched = BatchedEngine(configs, seeds)
        batched.run(record_timeline=False)
        for lane, (cfg, seed) in enumerate(zip(configs, seeds)):
            solo_engine, _ = _solo_run(cfg, seed)
            _assert_lane_matches_solo(batched, lane, solo_engine)

    def test_mixed_obstacles(self, tiny_config):
        from repro import ObstacleSpec

        configs = [
            tiny_config.replace(obstacles=ObstacleSpec("bottleneck", gap=6)),
            tiny_config.replace(n_per_side=8),
        ]
        seeds = (3, 3)
        batched = BatchedEngine(configs, seeds)
        batched.run(record_timeline=False)
        for lane, (cfg, seed) in enumerate(zip(configs, seeds)):
            solo_engine, _ = _solo_run(cfg, seed)
            _assert_lane_matches_solo(batched, lane, solo_engine)

    def test_rejects_duplicate_config_seed_pairs(self, tiny_config):
        with pytest.raises(EngineError):
            BatchedEngine([tiny_config, tiny_config], (3, 3))
        # Same seed under different configs is a valid heterogeneous batch.
        BatchedEngine([tiny_config, tiny_config.replace(n_per_side=8)], (3, 3))

    def test_rejects_incompatible_lanes(self, tiny_config):
        with pytest.raises(EngineError):
            BatchedEngine([tiny_config, tiny_config.with_model("aco")], (0, 1))
        with pytest.raises(EngineError):
            BatchedEngine([tiny_config, tiny_config.replace(steps=7)], (0, 1))
        with pytest.raises(EngineError):
            BatchedEngine([tiny_config], (0, 1))  # one config per lane

    def test_run_batched_heterogeneous_result(self, tiny_config):
        configs = [tiny_config, tiny_config.replace(n_per_side=8)]
        out = run_batched(configs, (0, 0), record_timeline=False)
        assert out.config is None  # no single shared config
        assert out.configs == tuple(configs)
        assert out.n_lanes == 2
        homo = run_batched(tiny_config, (0, 1), record_timeline=False)
        assert homo.config == tiny_config
        assert homo.configs == (tiny_config, tiny_config)


class TestBatchedThroughputMatchesSequential:
    """Transitivity check: batched == vectorized == sequential trajectories."""

    def test_three_way_equality(self):
        cfg = SimulationConfig(height=16, width=16, n_per_side=12, steps=15, seed=0)
        batched = BatchedEngine(cfg, (5,))
        batched.run(record_timeline=False)
        seq = build_engine(cfg, engine="sequential", seed=5)
        seq.run(record_timeline=False)
        assert batched.lane_environment(0).equals(seq.env)
        assert batched.lane_population(0).equals(seq.pop)
