"""ACO decision kernel tests (eq. 2 semantics)."""

import numpy as np
import pytest

from repro.models import ACOModel, ACOParams, aco_numerators
from repro.rng import PhiloxKeyedRNG


class TestNumerators:
    def test_formula(self):
        dist = np.array([[2.0] + [np.inf] * 7])
        cand = np.zeros((1, 8), dtype=bool)
        cand[0, 0] = True
        tau = np.full((1, 8), 0.5)
        num = aco_numerators(dist, cand, tau, alpha=1.0, beta=2.0)
        assert num[0, 0] == pytest.approx(0.5 * (1.0 / 2.0) ** 2)
        assert np.count_nonzero(num) == 1

    def test_non_candidates_exact_zero(self):
        dist = np.full((1, 8), 3.0)
        cand = np.zeros((1, 8), dtype=bool)
        tau = np.full((1, 8), 1.0)
        num = aco_numerators(dist, cand, tau, 1.0, 2.0)
        assert np.all(num == 0.0)

    def test_infinite_distance_vanishes(self):
        """Out-of-bounds slots have D = inf; numerator must be 0 even if
        candidate flags were (incorrectly) set."""
        dist = np.full((1, 8), np.inf)
        cand = np.ones((1, 8), dtype=bool)
        tau = np.full((1, 8), 1.0)
        num = aco_numerators(dist, cand, tau, 1.0, 2.0)
        assert np.all(num == 0.0)

    def test_alpha_zero_ignores_pheromone(self):
        dist = np.full((1, 8), 2.0)
        cand = np.ones((1, 8), dtype=bool)
        tau = np.linspace(0.1, 1.0, 8)[None, :]
        num = aco_numerators(dist, cand, tau, 0.0, 2.0)
        assert np.allclose(num, num[0, 0])

    def test_beta_zero_ignores_distance(self):
        dist = np.linspace(1, 8, 8)[None, :]
        cand = np.ones((1, 8), dtype=bool)
        tau = np.full((1, 8), 0.7)
        num = aco_numerators(dist, cand, tau, 1.0, 0.0)
        assert np.allclose(num, 0.7)


class TestSelect:
    def _model(self, **kw):
        return ACOModel(ACOParams(**kw))

    def test_empty_row_stays(self, rng):
        model = self._model()
        slot = model.select(np.zeros((1, 8)), rng, 0, np.array([1]))
        assert slot[0] == -1

    def test_single_candidate_chosen(self, rng):
        model = self._model()
        scan = np.zeros((1, 8))
        scan[0, 4] = 0.3
        slot = model.select(scan, rng, 0, np.array([1]))
        assert slot[0] == 4

    def test_proportional_sampling(self):
        """Slot frequencies must match the random proportional rule."""
        model = self._model()
        rng = PhiloxKeyedRNG(5)
        scan = np.zeros((100000, 8))
        scan[:, 0] = 3.0
        scan[:, 1] = 1.0
        slots = model.select(scan, rng, 0, np.arange(1, 100001))
        f0 = np.mean(slots == 0)
        assert f0 == pytest.approx(0.75, abs=0.01)

    def test_pheromone_bias(self):
        """Higher tau on a slot increases its selection frequency."""
        model = self._model()
        rng = PhiloxKeyedRNG(9)
        dist = np.full((50000, 8), np.inf)
        dist[:, 1] = dist[:, 2] = 2.0
        cand = np.zeros((50000, 8), dtype=bool)
        cand[:, 1] = cand[:, 2] = True
        tau = np.zeros((50000, 8))
        tau[:, 1] = 0.9
        tau[:, 2] = 0.1
        scan = model.scan_values(dist, cand, tau)
        slots = model.select(scan, rng, 0, np.arange(1, 50001))
        assert np.mean(slots == 1) == pytest.approx(0.9, abs=0.01)

    def test_scan_requires_tau(self):
        model = self._model()
        with pytest.raises(ValueError, match="pheromone"):
            model.scan_values(np.ones((1, 8)), np.ones((1, 8), dtype=bool), None)

    def test_uses_pheromone_flag(self):
        assert self._model().uses_pheromone


class TestScalarEquivalence:
    def test_scalar_matches_vectorized(self):
        model = ACOModel(ACOParams())
        rng = PhiloxKeyedRNG(23)
        n = 50
        gen = np.random.default_rng(1)
        scan = np.where(gen.random((n, 8)) < 0.5, gen.random((n, 8)), 0.0)
        lanes = np.arange(1, n + 1)
        for step in range(4):
            vec = model.select(scan, rng, step, lanes)
            variates = model.scalar_prepare(rng, step, n)
            for i in range(n):
                assert model.select_scalar(list(scan[i]), i + 1, variates) == vec[i]

    def test_scan_value_scalar_matches(self):
        model = ACOModel(ACOParams(alpha=1.0, beta=2.0))
        dist = np.array([[2.5, np.inf, 3.0, 1.0, 4.0, 5.0, 6.0, 7.0]])
        cand = np.array([[True, False, True, True, True, True, True, True]])
        tau = np.array([[0.3, 0.0, 0.2, 0.8, 0.1, 0.5, 0.4, 0.9]])
        vec = model.scan_values(dist, cand, tau)
        for s in range(8):
            if cand[0, s]:
                assert model.scan_value_scalar(dist[0, s], tau[0, s]) == vec[0, s]
