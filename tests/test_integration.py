"""Cross-module integration tests: full pipelines end to end."""

import numpy as np
import pytest

from repro import SimulationConfig, build_engine, paper_config, run_simulation
from repro.experiments import run_all
from repro.io import read_json_record, read_text_table
from repro.metrics import (
    GridlockDetector,
    ThroughputTracker,
    efficiency_report,
    lane_order_parameter,
)


class TestFullPipeline:
    def test_run_with_all_hooks(self, small_aco_config):
        eng = build_engine(small_aco_config, "vectorized")
        tracker = ThroughputTracker()
        detector = GridlockDetector()

        def hooks(engine, report):
            tracker(engine, report)
            detector(engine, report)

        result = eng.run(steps=60, callback=hooks)
        assert result.steps_run == 60
        summary = tracker.summary()
        assert summary.crossed_total == result.throughput_total
        report = efficiency_report(eng)
        assert report.crossed_fraction == summary.fraction

    def test_low_density_full_crossing_both_models(self):
        for model in ("lem", "aco"):
            cfg = SimulationConfig(
                height=48, width=48, n_per_side=40, steps=300, seed=11
            ).with_model(model)
            out = run_simulation(cfg)
            assert out.result.throughput_total == 80, model

    def test_high_density_lem_jams_aco_flows(self):
        """The paper's core finding at a scaled medium density."""
        base = paper_config(2560 * 14).scaled(10)  # 48x48, 14th scenario density
        lem = run_simulation(base.with_model("lem"), seed=0)
        aco = run_simulation(base.with_model("aco"), seed=0)
        assert aco.result.throughput_total > lem.result.throughput_total

    def test_aco_lane_formation_exceeds_random(self):
        """Pheromone following should segregate directions more than a
        random-walk crowd at the same density."""
        cfg = SimulationConfig(height=48, width=48, n_per_side=300, steps=250, seed=5)
        aco_eng = build_engine(cfg.with_model("aco"), "vectorized")
        rnd_eng = build_engine(cfg.with_model("random"), "vectorized")
        aco_eng.run(record_timeline=False)
        rnd_eng.run(record_timeline=False)
        aco_lanes = lane_order_parameter(aco_eng.env.mat)
        rnd_lanes = lane_order_parameter(rnd_eng.env.mat)
        assert aco_lanes >= rnd_lanes


class TestRunnerEndToEnd:
    def test_run_all_tiny(self, tmp_path):
        outdir = str(tmp_path / "results")
        report = run_all(
            outdir,
            scale="tiny",
            fig6a_seeds=(0,),
            fig6a_scenarios=(1, 8, 14),
            fig6b_scenarios=(14, 18),
            fig6b_seeds_cpu=(100, 101),
            fig6b_seeds_gpu=(200, 201),
            fig5_scenarios=(1, 3),
            fig5_steps=20,
            verbose=False,
        )
        # All artefacts written and readable.
        fig5 = read_text_table(f"{outdir}/fig5_modelled.txt")
        assert len(fig5["total_agents"]) == 40
        fig6a = read_text_table(f"{outdir}/fig6a_throughput.txt")
        assert list(fig6a["scenario"]) == [1.0, 8.0, 14.0]
        blob = read_json_record(f"{outdir}/report.json")
        assert blob["scale"] == "tiny"
        assert blob["fig6b_pvalue"] == pytest.approx(report.fig6b_pvalue)
        assert (np.asarray(fig5["speedup"]) > 10).all()


class TestPaperScaleSmoke:
    def test_one_step_at_paper_scale(self):
        """A single 480x480 step with 2,560 agents on every engine family
        (vectorized + tiled); guards against scaling regressions."""
        cfg = paper_config(2560, "aco").replace(steps=1)
        for engine in ("vectorized", "tiled"):
            eng = build_engine(cfg, engine)
            report = eng.step()
            assert report.moved > 0
            eng.validate_state()
