"""The load-bearing invariant: all engines produce bit-identical trajectories.

This is the reproduction of the paper's Fig 6b validation argument
("comparing the solution obtained from CPU and GPU is a viable way to
establish consistency of the implementation"), strengthened to exact
equality via the keyed counter-based RNG.
"""

import pytest

from repro import SimulationConfig, build_engine

MODELS = ["lem", "aco", "random", "greedy"]


def run_pair(cfg, a_name, b_name, steps):
    a = build_engine(cfg, a_name)
    b = build_engine(cfg, b_name)
    for i in range(steps):
        ra = a.step()
        rb = b.step()
        assert ra == rb, f"step reports diverged at {i}: {ra} vs {rb}"
        assert a.state_equals(b), f"state diverged at step {i}"
    return a, b


class TestSequentialVsVectorized:
    @pytest.mark.parametrize("model", MODELS)
    def test_bit_identical(self, model):
        cfg = SimulationConfig(
            height=24, width=24, n_per_side=50, steps=40, seed=101
        ).with_model(model)
        a, b = run_pair(cfg, "sequential", "vectorized", 40)
        assert a.throughput() == b.throughput()

    def test_identical_at_high_density(self):
        cfg = SimulationConfig(
            height=20, width=20, n_per_side=80, steps=30, seed=5
        ).with_model("aco")
        run_pair(cfg, "sequential", "vectorized", 30)

    def test_identical_with_forward_priority_off(self):
        cfg = SimulationConfig(
            height=20, width=20, n_per_side=40, steps=30, seed=6,
            forward_priority=False,
        ).with_model("lem")
        run_pair(cfg, "sequential", "vectorized", 30)

    def test_identical_with_ceil_rule(self):
        from repro.models import LEMParams

        cfg = SimulationConfig(
            height=20, width=20, n_per_side=40, steps=30, seed=8,
            params=LEMParams(rule="ceil"),
        )
        run_pair(cfg, "sequential", "vectorized", 30)

    def test_identical_with_fractional_beta(self):
        """Non-integer exponents route through np.power on both paths."""
        from repro.models import ACOParams

        cfg = SimulationConfig(
            height=16, width=16, n_per_side=20, steps=20, seed=9,
            params=ACOParams(beta=1.5),
        )
        run_pair(cfg, "sequential", "vectorized", 20)


class TestTiledVsVectorized:
    @pytest.mark.parametrize("model", MODELS)
    def test_bit_identical(self, model):
        cfg = SimulationConfig(
            height=32, width=32, n_per_side=80, steps=40, seed=77
        ).with_model(model)
        run_pair(cfg, "tiled", "vectorized", 40)

    def test_multi_tile_grid(self):
        cfg = SimulationConfig(
            height=48, width=32, n_per_side=120, steps=25, seed=3
        ).with_model("aco")
        run_pair(cfg, "tiled", "vectorized", 25)


class TestAllThree:
    def test_three_way_aco(self):
        cfg = SimulationConfig(
            height=32, width=32, n_per_side=100, steps=30, seed=55
        ).with_model("aco")
        engines = [build_engine(cfg, n) for n in ("sequential", "vectorized", "tiled")]
        for i in range(30):
            reports = [e.step() for e in engines]
            assert reports[0] == reports[1] == reports[2]
        assert engines[0].state_equals(engines[1])
        assert engines[1].state_equals(engines[2])


class TestSeedSensitivity:
    def test_different_seeds_diverge(self):
        cfg = SimulationConfig(height=24, width=24, n_per_side=50, steps=20)
        a = build_engine(cfg, "vectorized", seed=1)
        b = build_engine(cfg, "vectorized", seed=2)
        for _ in range(20):
            a.step()
            b.step()
        assert not a.env.equals(b.env)

    def test_same_seed_reproducible(self):
        cfg = SimulationConfig(height=24, width=24, n_per_side=50, steps=20, seed=4)
        a = build_engine(cfg, "vectorized")
        b = build_engine(cfg, "vectorized")
        for _ in range(20):
            a.step()
            b.step()
        assert a.state_equals(b)
