"""Pheromone field tests (eq. 3-5 mechanics)."""

import numpy as np
import pytest

from repro.models import ACOParams, PheromoneField
from repro.types import Group


@pytest.fixture
def field():
    return PheromoneField(10, 10, ACOParams(rho=0.1, tau0=0.5, tau_min=0.01, tau_max=2.0))


class TestInitial:
    def test_initialised_to_tau0(self, field):
        for g in (Group.TOP, Group.BOTTOM):
            assert np.all(field.field(g) == 0.5)

    def test_groups_independent(self, field):
        field.deposit(Group.TOP, [1], [1], [0.3])
        assert field.value(Group.TOP, 1, 1) == pytest.approx(0.8)
        assert field.value(Group.BOTTOM, 1, 1) == 0.5


class TestEvaporation:
    def test_eq3_rate(self, field):
        field.evaporate()
        assert np.all(field.field(Group.TOP) == pytest.approx(0.45))

    def test_clamped_below(self):
        f = PheromoneField(4, 4, ACOParams(rho=0.99, tau0=0.02, tau_min=0.015))
        f.evaporate()
        assert np.all(f.field(Group.TOP) == 0.015)

    def test_monotone_decay_to_floor(self, field):
        for _ in range(500):
            field.evaporate()
        assert np.all(field.field(Group.BOTTOM) == pytest.approx(0.01))


class TestDeposit:
    def test_vector_deposit(self, field):
        field.deposit(Group.TOP, np.array([0, 1]), np.array([0, 1]), np.array([0.1, 0.2]))
        assert field.value(Group.TOP, 0, 0) == pytest.approx(0.6)
        assert field.value(Group.TOP, 1, 1) == pytest.approx(0.7)

    def test_duplicate_cells_accumulate(self, field):
        field.deposit(Group.TOP, [2, 2], [2, 2], [0.1, 0.1])
        assert field.value(Group.TOP, 2, 2) == pytest.approx(0.7)

    def test_clamped_above(self, field):
        field.deposit(Group.TOP, [0], [0], [100.0])
        assert field.value(Group.TOP, 0, 0) == 2.0

    def test_scalar_matches_vector(self, field):
        other = field.copy()
        field.deposit(Group.BOTTOM, [3], [4], [0.25])
        other.deposit_scalar(Group.BOTTOM, 3, 4, 0.25)
        assert field.equals(other)


class TestCopyEquality:
    def test_copy_deep(self, field):
        dup = field.copy()
        dup.deposit(Group.TOP, [0], [0], [0.1])
        assert not field.equals(dup)

    def test_totals(self, field):
        totals = field.totals()
        assert totals[Group.TOP] == pytest.approx(0.5 * 100)
