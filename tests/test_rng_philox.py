"""Philox4x32-10 correctness: known-answer tests and stream properties."""

import numpy as np
import pytest

from repro.rng import PHILOX_ROUNDS, PhiloxKeyedRNG, Stream, philox4x32, philox4x32_scalar


class TestKnownAnswers:
    """Random123 known-answer vectors for philox4x32-10."""

    def test_zero_vector(self):
        out = philox4x32_scalar((0, 0, 0, 0), (0, 0))
        assert out == (0x6627E8D5, 0xE169C58D, 0xBC57AC4C, 0x9B00DBD8)

    def test_ones_vector(self):
        out = philox4x32_scalar((0xFFFFFFFF,) * 4, (0xFFFFFFFF,) * 2)
        assert out == (0x408F276D, 0x41C83B0E, 0xA20BC7C6, 0x6D5451FD)

    def test_pi_vector(self):
        out = philox4x32_scalar(
            (0x243F6A88, 0x85A308D3, 0x13198A2E, 0x03707344),
            (0xA4093822, 0x299F31D0),
        )
        assert out == (0xD16CFE09, 0x94FDCCEB, 0x5001E420, 0x24126EA1)


class TestBijection:
    def test_rounds_default(self):
        assert PHILOX_ROUNDS == 10

    def test_vectorized_matches_scalar(self):
        counters = np.arange(40, dtype=np.uint32).reshape(4, 10)
        keys = np.array([[7] * 10, [9] * 10], dtype=np.uint32)
        batch = philox4x32(counters, keys)
        for i in range(10):
            single = philox4x32_scalar(tuple(counters[:, i]), (7, 9))
            assert tuple(int(batch[j, i]) for j in range(4)) == single

    def test_key_broadcast(self):
        counters = np.zeros((4, 5), dtype=np.uint32)
        counters[2] = np.arange(5)
        broadcast = philox4x32(counters, np.array([[1], [2]], dtype=np.uint32))
        explicit = philox4x32(
            counters, np.array([[1] * 5, [2] * 5], dtype=np.uint32)
        )
        assert np.array_equal(broadcast, explicit)

    def test_counter_sensitivity(self):
        a = philox4x32_scalar((0, 0, 0, 0), (0, 0))
        b = philox4x32_scalar((1, 0, 0, 0), (0, 0))
        assert a != b

    def test_key_sensitivity(self):
        a = philox4x32_scalar((0, 0, 0, 0), (0, 0))
        b = philox4x32_scalar((0, 0, 0, 0), (1, 0))
        assert a != b

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="counter"):
            philox4x32(np.zeros((3, 1), dtype=np.uint32), np.zeros((2, 1), dtype=np.uint32))
        with pytest.raises(ValueError, match="key"):
            philox4x32(np.zeros((4, 1), dtype=np.uint32), np.zeros((3, 1), dtype=np.uint32))

    def test_rounds_validation(self):
        with pytest.raises(ValueError, match="rounds"):
            philox4x32(
                np.zeros((4, 1), dtype=np.uint32),
                np.zeros((2, 1), dtype=np.uint32),
                rounds=0,
            )


class TestKeyedRNG:
    def test_seed_range_validation(self):
        with pytest.raises(ValueError):
            PhiloxKeyedRNG(-1)
        with pytest.raises(ValueError):
            PhiloxKeyedRNG(2**64)

    def test_uniform_open_interval(self, rng):
        u = rng.uniform(Stream.EXPERIMENT, 0, np.arange(10000))
        assert np.all(u > 0.0) and np.all(u < 1.0)

    def test_uniform_mean(self, rng):
        u = rng.uniform(Stream.EXPERIMENT, 0, np.arange(200000))
        assert abs(u.mean() - 0.5) < 0.005

    def test_order_independence(self, rng):
        """The defining property: draws depend only on keys, not batching."""
        lanes = np.arange(100, dtype=np.uint64)
        batch = rng.uniform(Stream.LEM_SELECT, 5, lanes)
        singles = np.array(
            [rng.uniform_scalar(Stream.LEM_SELECT, 5, int(l)) for l in lanes]
        )
        assert np.array_equal(batch, singles)

    def test_streams_independent(self, rng):
        lanes = np.arange(50)
        a = rng.uniform(Stream.LEM_SELECT, 0, lanes)
        b = rng.uniform(Stream.ACO_SELECT, 0, lanes)
        assert not np.array_equal(a, b)

    def test_steps_independent(self, rng):
        lanes = np.arange(50)
        a = rng.uniform(Stream.LEM_SELECT, 0, lanes)
        b = rng.uniform(Stream.LEM_SELECT, 1, lanes)
        assert not np.array_equal(a, b)

    def test_slots_independent(self, rng):
        lanes = np.arange(50)
        a = rng.uniform(Stream.LEM_SELECT, 0, lanes, slot=0)
        b = rng.uniform(Stream.LEM_SELECT, 0, lanes, slot=1)
        assert not np.array_equal(a, b)

    def test_seeds_independent(self):
        a = PhiloxKeyedRNG(1).uniform(Stream.EXPERIMENT, 0, np.arange(50))
        b = PhiloxKeyedRNG(2).uniform(Stream.EXPERIMENT, 0, np.arange(50))
        assert not np.array_equal(a, b)

    def test_reproducible(self):
        a = PhiloxKeyedRNG(99).uniform(Stream.EXPERIMENT, 3, np.arange(50))
        b = PhiloxKeyedRNG(99).uniform(Stream.EXPERIMENT, 3, np.arange(50))
        assert np.array_equal(a, b)

    def test_uniform4_shape(self, rng):
        u4 = rng.uniform4(Stream.EXPERIMENT, 0, np.arange(7))
        assert u4.shape == (4, 7)
        assert np.all((u4 > 0) & (u4 < 1))

    def test_normal12_moments(self, rng):
        z = rng.normal12(Stream.LEM_SELECT, 0, np.arange(200000))
        assert abs(z.mean()) < 0.01
        assert abs(z.std() - 1.0) < 0.01

    def test_normal12_range(self, rng):
        """Irwin-Hall with 12 terms is bounded in [-6, 6]."""
        z = rng.normal12(Stream.LEM_SELECT, 0, np.arange(100000))
        assert np.all(z >= -6.0) and np.all(z <= 6.0)

    def test_normal12_scalar_matches(self, rng):
        z = rng.normal12(Stream.LEM_SELECT, 2, np.arange(20))
        for i in range(20):
            assert rng.normal12_scalar(Stream.LEM_SELECT, 2, i) == z[i]

    def test_large_lane_ids(self, rng):
        """Cell lanes on big grids exceed 2**20; draws must stay valid."""
        lanes = np.array([0, 2**31, 2**32 - 1], dtype=np.uint64)
        u = rng.uniform(Stream.MOVE_WINNER, 0, lanes)
        assert np.all((u > 0) & (u < 1))
        assert len(np.unique(u)) == 3
